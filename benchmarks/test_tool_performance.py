"""Benchmarks of the offline tools themselves: decomposition, partitioning
and ViTAL compilation wall-clock on the full-size accelerator — the numbers
behind Section 4.3's "negligible" claim — plus the functional simulator."""

import numpy as np

from repro.accel import BW_V37, CONTROL_MODULES, generate_accelerator
from repro.accel.codegen import GRUCodegen, RNNWeights, OUT_BASE
from repro.accel.functional import run_program
from repro.core import decompose, partition
from repro.vital import VitalCompiler


def test_generate_full_accelerator(benchmark):
    design = benchmark(generate_accelerator, BW_V37)
    assert design.has_module("top")


def test_decompose_full_accelerator(benchmark):
    design = generate_accelerator(BW_V37)
    result = benchmark(decompose, design, CONTROL_MODULES)
    assert len(result.data_root.children) == 21


def test_partition_full_accelerator(benchmark):
    decomposed = decompose(generate_accelerator(BW_V37), CONTROL_MODULES)
    tree = benchmark(partition, decomposed, 2)
    assert tree.max_ways() == 4


def test_vital_compile_full_accelerator(benchmark):
    decomposed = decompose(generate_accelerator(BW_V37), CONTROL_MODULES)
    tree = partition(decomposed, iterations=2)

    def compile_once():
        return VitalCompiler().compile_accelerator(decomposed, tree)

    compiled = benchmark(compile_once)
    assert compiled.mapping.options


def test_functional_simulator_gru(benchmark):
    weights = RNNWeights.random("gru", 64, seed=0)
    xs = np.random.default_rng(1).normal(0, 0.5, (8, 64))
    gen = GRUCodegen(weights, 8)
    program = gen.build()

    def run_once():
        return run_program(program, preload=lambda s: gen.preload(s, xs))

    sim = benchmark(run_once)
    assert sim.dram.read(OUT_BASE, 64).size == 64
