"""Benchmarks of the offline tools themselves: decomposition, partitioning
and ViTAL compilation wall-clock on the full-size accelerator — the numbers
behind Section 4.3's "negligible" claim — plus the functional simulator.

All random inputs are drawn from explicitly seeded generators and every
benchmark asserts its output shape, so the timings double as correctness
checks and re-runs measure identical work.
"""

import numpy as np

from repro.accel import BW_V37, CONTROL_MODULES, generate_accelerator
from repro.accel.codegen import GRUCodegen, RNNWeights, OUT_BASE
from repro.accel.functional import run_program
from repro.core import decompose, partition
from repro.vital import VitalCompiler

#: Seeds for every stochastic input, fixed so all benchmarks (and any new
#: ones) draw from the same reproducible stream family.
WEIGHTS_SEED = 0
INPUT_SEED = 1
HIDDEN = 64
TIMESTEPS = 8


def _gru_inputs() -> tuple:
    weights = RNNWeights.random("gru", HIDDEN, seed=WEIGHTS_SEED)
    xs = np.random.default_rng(INPUT_SEED).normal(0, 0.5, (TIMESTEPS, HIDDEN))
    return weights, xs


def test_generate_full_accelerator(benchmark):
    design = benchmark(generate_accelerator, BW_V37)
    assert design.has_module("top")


def test_decompose_full_accelerator(benchmark):
    design = generate_accelerator(BW_V37)
    result = benchmark(decompose, design, CONTROL_MODULES)
    assert len(result.data_root.children) == 21


def test_partition_full_accelerator(benchmark):
    decomposed = decompose(generate_accelerator(BW_V37), CONTROL_MODULES)
    tree = benchmark(partition, decomposed, 2)
    assert tree.max_ways() == 4


def test_vital_compile_full_accelerator(benchmark):
    decomposed = decompose(generate_accelerator(BW_V37), CONTROL_MODULES)
    tree = partition(decomposed, iterations=2)

    def compile_once():
        return VitalCompiler().compile_accelerator(decomposed, tree)

    compiled = benchmark(compile_once)
    assert compiled.mapping.options


def test_functional_simulator_gru(benchmark):
    weights, xs = _gru_inputs()
    assert xs.shape == (TIMESTEPS, HIDDEN)
    gen = GRUCodegen(weights, TIMESTEPS)
    program = gen.build()

    def run_once():
        return run_program(program, preload=lambda s: gen.preload(s, xs))

    sim = benchmark(run_once)
    out = sim.dram.read(OUT_BASE, HIDDEN)
    assert out.shape == (HIDDEN,)
    assert np.all(np.isfinite(out))
