"""Ablation benchmarks for the design choices DESIGN.md calls out:

* pattern-aware vs pattern-oblivious (ViTAL-style) partitioning — the
  Table 4 overhead gap;
* floorplanning on/off — the Section 4.2 methodology choice;
* best-fit vs worst-fit placement — packing quality of the runtime policy;
* scale-down-and-replicate vs naive split (exposed communication).
"""

import copy

from repro.accel import BW_V37, CycleModel
from repro.accel.timing import VirtualizationContext
from repro.cluster import ClusterSimulator, paper_cluster
from repro.experiments import run_fig11
from repro.resources import ResourceVector
from repro.runtime import Catalog, build_system
from repro.runtime.controller import PlacementPolicy
from repro.units import us
from repro.vital import VitalCompiler, XCVU37P
from repro.vital.floorplan import FloorplanQuality, achieved_frequency
from repro.workloads import TABLE1_COMPOSITIONS, generate_workload
from repro.workloads.deepbench import ModelSpec


def test_pattern_aware_partitioning_overhead(benchmark, save_result):
    """Pattern-aware partitioning keeps the virtualization overhead in the
    3-9% band; the naive partitioner pays several times more."""
    specs = [ModelSpec("gru", 1024, 100), ModelSpec("lstm", 1024, 25)]
    model = CycleModel(BW_V37)

    def measure():
        rows = []
        for spec in specs:
            program = spec.program()
            aware = model.overhead_vs_baseline(
                program, VirtualizationContext(14, pattern_aware=True)
            )
            naive = model.overhead_vs_baseline(
                program, VirtualizationContext(14, pattern_aware=False)
            )
            rows.append((spec.key, aware, naive))
        return rows

    rows = benchmark(measure)
    lines = ["Ablation: pattern-aware vs naive partitioning", ""]
    for key, aware, naive in rows:
        assert naive > 1.5 * aware
        assert aware < 0.10
        lines.append(
            f"{key}: overhead {aware * 100:.1f}% (pattern-aware) vs "
            f"{naive * 100:.1f}% (naive)"
        )
    save_result("ablation_pattern_aware", "\n".join(lines))


def test_floorplanning_frequency_gain(benchmark, save_result):
    """Floorplanning recovers the clock the congested automatic placement
    loses (Fig. 10's methodology)."""
    demand = ResourceVector(luts=610e3, ffs=659e3, dsps=7500.0)

    def measure():
        auto = achieved_frequency(XCVU37P, demand, FloorplanQuality.AUTOMATIC)
        planned = achieved_frequency(
            XCVU37P, demand, FloorplanQuality.FLOORPLANNED
        )
        return auto, planned

    auto, planned = benchmark(measure)
    assert planned > auto
    gain = planned / auto - 1.0
    save_result(
        "ablation_floorplanning",
        "Ablation: floorplanning\n\n"
        f"automatic placement: {auto / 1e6:.0f} MHz\n"
        f"floorplanned:        {planned / 1e6:.0f} MHz\n"
        f"gain:                {gain * 100:.1f}%",
    )


def test_placement_policy_packing(benchmark, save_result):
    """Best-fit packing sustains higher throughput than worst-fit spreading
    on a small-task mix (more co-resident deployments)."""
    tasks = generate_workload(
        TABLE1_COMPOSITIONS[0], 120, arrival_rate_per_s=1e5, seed=11
    )

    def run_policy(policy):
        catalog = Catalog(VitalCompiler())
        system = build_system("proposed", paper_cluster(), catalog)
        system.controller.placement = policy
        return ClusterSimulator(system, policy.value).run(
            [copy.deepcopy(t) for t in tasks]
        )

    def measure():
        best = run_policy(PlacementPolicy.BEST_FIT).throughput
        worst = run_policy(PlacementPolicy.WORST_FIT).throughput
        return best, worst

    best, worst = benchmark(measure)
    save_result(
        "ablation_placement_policy",
        "Ablation: placement policy on 100% S\n\n"
        f"best-fit:  {best:.1f} tasks/s\n"
        f"worst-fit: {worst:.1f} tasks/s",
    )
    assert best >= 0.8 * worst  # packing should not be catastrophically worse


def test_scale_down_vs_naive_split(benchmark, save_result):
    """Scale-down + reordered communication vs the baseline's manual split
    (no overlap): at the paper's 0.6 us added latency, the optimised
    deployment absorbs what the naive one exposes."""
    sweep = (0.0, us(0.6))

    def measure():
        optimised = run_fig11(sweep=sweep, reorder=True)
        naive = run_fig11(sweep=sweep, reorder=False)
        return optimised, naive

    optimised, naive = benchmark(measure)
    lines = ["Ablation: scale-down overlap vs naive split (at +0.6us)", ""]
    for good, bad in zip(optimised, naive):
        assert bad.latency_s[1] >= good.latency_s[1]
        lines.append(
            f"{good.model.key}: {good.latency_s[1] * 1e3:.4g} ms vs "
            f"{bad.latency_s[1] * 1e3:.4g} ms"
        )
    save_result("ablation_scale_down", "\n".join(lines))


def test_greedy_plan_order(benchmark, save_result):
    """The paper's greedy fewest-FPGAs-first policy vs a widest-first
    ablation: minimising allocated FPGAs minimises inter-FPGA communication
    (Section 2.3's policy argument)."""
    from repro.cluster import ClusterSimulator
    from repro.runtime.controller import PlanOrder
    from repro.workloads import generate_workload

    tasks = generate_workload(
        TABLE1_COMPOSITIONS[1], 100, arrival_rate_per_s=1e5, seed=5
    )

    def run_order(order):
        catalog = Catalog(VitalCompiler())
        system = build_system("proposed", paper_cluster(), catalog)
        system.controller.plan_order = order
        return ClusterSimulator(system, order.value).run(
            [copy.deepcopy(t) for t in tasks]
        ).throughput

    def measure():
        return (
            run_order(PlanOrder.FEWEST_FPGAS),
            run_order(PlanOrder.WIDEST_FIRST),
        )

    fewest, widest = benchmark(measure)
    save_result(
        "ablation_plan_order",
        "Ablation: runtime plan order on 100% M\n\n"
        f"fewest-FPGAs first (paper's greedy): {fewest:.1f} tasks/s\n"
        f"widest first:                        {widest:.1f} tasks/s",
    )
    assert fewest > widest
