"""Benchmark regenerating Fig. 12: aggregated system throughput of the
three systems on the ten Table-1 workload sets."""

from repro.experiments import run_fig12
from repro.experiments.fig12 import average_speedups, render


def test_fig12(benchmark, save_result):
    benchmark.pedantic_enabled = False
    rows = benchmark.pedantic(
        run_fig12,
        kwargs={"task_count": 150, "seeds": (1, 2, 3)},
        rounds=1,
        iterations=1,
    )
    save_result("fig12", render(rows))

    assert len(rows) == 10
    # Headline: the proposed framework beats the AS-ISA baseline on every
    # workload set (the paper reports 2.54x on average; our static-baseline
    # model yields a smaller but uniformly positive margin).
    for row in rows:
        assert row.speedup_vs_baseline > 1.0

    vs_baseline, vs_restricted = average_speedups(rows)
    assert vs_baseline > 1.2
    # Heterogeneous pairing matters most on the pure-L set (set 3).
    pure_l = rows[2]
    assert pure_l.speedup_vs_restricted > 1.2
