"""Benchmark regenerating Section 4.3's compilation-overhead accounting."""

from repro.experiments import run_compile_overhead
from repro.experiments.compile_overhead import render


def test_compile_overhead(benchmark, save_result):
    result = benchmark(run_compile_overhead)
    save_result("compile_overhead", render(result))

    # Decompose + partition are negligible next to HS compilation (<1%).
    assert result.tool_fraction < 0.01
    # Scale-down variants, amortised over the 10 instances via the
    # content-addressed store, land near the paper's 24.6%.
    assert 0.10 < result.overhead_fraction < 0.40
    assert result.variant_cache_hits > result.variant_compiles
