"""Benchmark: pattern-guided partitioning vs flat Kernighan-Lin bisection.

Quantifies the Section 2.2.2 claim that the extracted parallel patterns
"reduce the timing complexity of the partition process by pruning the
search space" — and the quality property that the guided tool never slices
a SIMD lane's pipeline.
"""

from repro.accel import BW_V37, CONTROL_MODULES, generate_accelerator
from repro.core import decompose
from repro.core.flat_partition import (
    compare_partitioners,
    flat_bipartition,
    pattern_guided_bipartition,
)


def _tree(tiles=21):
    config = BW_V37.with_tiles(tiles, name=f"bench-{tiles}t")
    return decompose(generate_accelerator(config), CONTROL_MODULES).data_root


def test_pattern_guided_split(benchmark):
    tree = _tree()
    cut, _ = benchmark(pattern_guided_bipartition, tree)
    assert cut > 0


def test_flat_kl_split(benchmark):
    tree = _tree()
    result = benchmark(flat_bipartition, tree)
    assert result.cut_bits > 0


def test_comparison_summary(benchmark, save_result):
    tree = _tree()
    record = benchmark(compare_partitioners, tree)
    save_result(
        "ablation_flat_partition",
        "Ablation: pattern-guided vs flat (KL) partitioning on BW-V37\n\n"
        + "\n".join(f"{key}: {value}" for key, value in record.items()),
    )
    # Speed: the guided split prunes the search space.
    assert record["guided_elapsed_s"] < record["flat_elapsed_s"]
    # Quality: the guided split never slices a SIMD lane (21 lanes is odd,
    # so the balanced flat bisection must).
    assert record["guided_pipelines_cut"] == 0
    assert record["flat_pipelines_cut"] >= 1
    # And its cut bandwidth is no worse.
    assert record["guided_cut_bits"] <= record["flat_cut_bits"]
