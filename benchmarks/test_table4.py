"""Benchmark regenerating Table 4: single-FPGA inference latency of the
seven DeepBench configurations, baseline vs virtualized, on both devices."""

from repro.experiments import run_table4
from repro.experiments.table4 import render


def test_table4(benchmark, save_result):
    rows = benchmark(run_table4)
    save_result("table4", render(rows))

    fitting = [row for row in rows if row.fits]
    # Paper's headline: marginal virtualization overhead (3.8-8.4%).
    overheads = [row.overhead for row in fitting]
    assert min(overheads) >= 0.02
    assert max(overheads) <= 0.10

    # The KU115 dash for LSTM h=1536 reproduces.
    dashes = [(r.model.key, r.device) for r in rows if not r.fits]
    assert dashes == [("lstm-h1536-t50", "XCKU115")]

    # Ordering: every model is slower on the KU115 than the VU37P.
    by_model = {}
    for row in fitting:
        by_model.setdefault(row.model.key, {})[row.device] = row.baseline_s
    for devices in by_model.values():
        if len(devices) == 2:
            assert devices["XCKU115"] > devices["XCVU37P"]
