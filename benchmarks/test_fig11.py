"""Benchmark regenerating Fig. 11: inference latency vs added inter-FPGA
communication latency on a two-FPGA scale-out deployment, plus the
instruction-reordering ablation."""

import numpy as np

from repro.experiments import run_fig11
from repro.experiments.fig11 import render
from repro.units import us


def test_fig11(benchmark, save_result):
    curves = benchmark(run_fig11)
    save_result("fig11", render(curves))

    lstm, gru_small, gru_large = curves
    # Paper shape: LSTM fully hidden over the sweep; small GRU hidden up to
    # ~0.6 us; large GRU exposed almost immediately.
    assert lstm.hideable_added_latency_s > us(0.8)
    assert us(0.35) < gru_small.hideable_added_latency_s < us(0.85)
    assert gru_large.hideable_added_latency_s < us(0.3)

    # The LSTM curve is flat across the paper's sweep range.
    lstm_rise = lstm.latency_s[-1] / lstm.latency_s[0] - 1.0
    assert lstm_rise < 0.05
    # The large GRU's curve rises.
    large_rise = gru_large.latency_s[-1] / gru_large.latency_s[0] - 1.0
    assert large_rise > 0.05


def test_fig11_reordering_ablation(benchmark, save_result):
    """Without the reordering tool the overlap window vanishes and every
    curve pays the full transfer from zero added latency."""
    sweep = tuple(us(x) for x in np.linspace(0.0, 1.2, 7))

    def run_ablation():
        return run_fig11(sweep=sweep), run_fig11(sweep=sweep, reorder=False)

    with_tool, without_tool = benchmark(run_ablation)
    lines = ["Fig. 11 ablation: instruction reordering on/off", ""]
    for curve_on, curve_off in zip(with_tool, without_tool):
        assert curve_off.overlap_window_s == 0.0
        assert curve_off.latency_s[0] >= curve_on.latency_s[0]
        lines.append(
            f"{curve_on.model.key}: latency at +0us "
            f"{curve_on.latency_s[0] * 1e3:.4g} ms (reordered) vs "
            f"{curve_off.latency_s[0] * 1e3:.4g} ms (not reordered)"
        )
    save_result("fig11_ablation_reorder", "\n".join(lines))
