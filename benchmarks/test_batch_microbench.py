"""Microbenchmarks of the batch-axis hot paths behind
:mod:`repro.accel.batched`: the vectorized sigmoid, blockwise BFP
quantisation over ``(batch, length)`` stacks and ``(rows, cols)``
matrices, the guarded one-dgemm MV_MUL against per-lane dgemv, and the
end-to-end batched-vs-scalar RNN run.

All inputs come from explicitly seeded generators and every benchmark
asserts output shapes (and, where the contract demands it, bitwise
equality), so timings double as correctness checks and re-runs measure
identical work.
"""

import numpy as np

from repro.accel.batched import BatchedFunctionalSimulator, run_batched
from repro.accel.codegen import OUT_BASE, RNNWeights, make_codegen
from repro.accel.functional import FunctionalSimulator, _sigmoid
from repro.isa.bfp import DEFAULT_FORMAT, bfp_matvec, bfp_quantize
from repro.isa.instructions import halt
from repro.isa.program import Program

SEED = 0
BATCH = 32
LENGTH = 1024
ROWS, COLS = 256, 256


def _stack(seed: int = SEED, batch: int = BATCH, length: int = LENGTH):
    return np.random.default_rng(seed).normal(0.0, 1.0, (batch, length))


def test_sigmoid_batch_axis(benchmark):
    stack = _stack()
    out = benchmark(_sigmoid, stack)
    assert out.shape == (BATCH, LENGTH)
    # The batched stack computes exactly the per-lane values.
    assert np.array_equal(out[3], _sigmoid(stack[3]))


def test_bfp_quantize_batch_axis(benchmark):
    stack = _stack(seed=1)
    out = benchmark(bfp_quantize, stack, DEFAULT_FORMAT)
    assert out.shape == (BATCH, LENGTH)
    assert np.array_equal(out[5], bfp_quantize(stack[5], DEFAULT_FORMAT))


def test_bfp_quantize_matrix(benchmark):
    matrix = np.random.default_rng(2).normal(0.0, 1.0, (ROWS, COLS))
    out = benchmark(bfp_quantize, matrix, DEFAULT_FORMAT)
    assert out.shape == (ROWS, COLS)


def test_guarded_batched_matvec(benchmark):
    """One dgemm + rounding-boundary guard for the whole batch."""
    rng = np.random.default_rng(3)
    matrix = bfp_quantize(rng.normal(0.0, 1.0, (ROWS, COLS)), DEFAULT_FORMAT)
    row_abs = np.abs(matrix).sum(axis=1)
    vecs = rng.normal(0.0, 1.0, (BATCH, COLS))
    sim = BatchedFunctionalSimulator(Program([halt()]), batch=BATCH)
    out = benchmark(sim._matvec_shared, matrix, row_abs, vecs)
    assert out.shape == (BATCH, ROWS)
    for lane in (0, BATCH // 2, BATCH - 1):
        want = bfp_matvec(matrix, vecs[lane], DEFAULT_FORMAT)
        assert np.array_equal(
            out[lane].astype(np.float16), want.astype(np.float16)
        )


def test_per_lane_matvec_reference(benchmark):
    """The N-dgemv baseline the guarded dgemm amortises."""
    rng = np.random.default_rng(3)
    matrix = bfp_quantize(rng.normal(0.0, 1.0, (ROWS, COLS)), DEFAULT_FORMAT)
    vecs = rng.normal(0.0, 1.0, (BATCH, COLS))

    def per_lane():
        return np.stack(
            [bfp_matvec(matrix, vecs[i], DEFAULT_FORMAT) for i in range(BATCH)]
        )

    out = benchmark(per_lane)
    assert out.shape == (BATCH, ROWS)


def _rnn_fixture(batch: int):
    weights = RNNWeights.random("lstm", 64, seed=SEED)
    gen = make_codegen("lstm", weights, 8)
    program = gen.build()
    rng = np.random.default_rng(4)
    payloads = [rng.normal(0.0, 0.5, (8, 64)) for _ in range(batch)]
    return gen, program, payloads


def test_batched_rnn_run(benchmark):
    gen, program, payloads = _rnn_fixture(16)

    def run():
        return run_batched(
            program,
            [
                (lambda xs: (lambda v: gen.preload_inputs(v, xs)))(xs)
                for xs in payloads
            ],
            shared_preload=gen.preload_weights,
        )

    lanes = benchmark(run)
    assert lanes.dram_read(OUT_BASE, 64).shape == (16, 64)


def test_scalar_rnn_run_reference(benchmark):
    gen, program, payloads = _rnn_fixture(16)

    def run():
        outputs = []
        for xs in payloads:
            sim = FunctionalSimulator(program)
            gen.preload(sim, xs)
            sim.run()
            outputs.append(sim.dram.read(OUT_BASE, 64))
        return np.stack(outputs)

    out = benchmark(run)
    assert out.shape == (16, 64)
