"""Benchmarks regenerating Table 2 (baseline accelerator implementations)
and Table 3 (per-virtual-block implementation results)."""

from repro.experiments import run_table2, run_table3
from repro.experiments.table2 import render as render_table2
from repro.experiments.table3 import render as render_table3


def test_table2(benchmark, save_result):
    rows = benchmark(run_table2)
    save_result("table2", render_table2(rows))
    # Shape assertions: calibration holds and V37 is the bigger instance.
    v37, k115 = rows
    assert v37.resources.luts > k115.resources.luts
    assert v37.peak_tflops > k115.peak_tflops
    for row in rows:
        assert abs(row.rel_error("dsps")) < 0.20
        assert abs(row.rel_error("tflops")) < 0.10


def test_table3(benchmark, save_result):
    rows = benchmark(run_table3)
    save_result("table3", render_table3(rows))
    v37, k115 = rows
    # The whole instance fits the device's virtual-block grid.
    assert v37.virtual_blocks <= 16
    assert k115.virtual_blocks <= 10
    # Per-block numbers track the paper within the calibration band.
    assert abs(v37.per_block.dsps / v37.paper["dsps"] - 1.0) < 0.20
