"""Benchmark regenerating Section 4.4's performance-isolation result."""

from repro.experiments import run_isolation
from repro.experiments.isolation import render


def test_isolation(benchmark, save_result):
    rows = benchmark(run_isolation)
    save_result("isolation", render(rows))

    for row in rows:
        # Premise: whole machine codes fit the instruction buffer.
        assert row.code_fits_buffer
        # Claim: sharing-environment latency comparable to non-sharing.
        assert row.sharing_penalty < 0.03
        # Ablation: without the buffer, contention bites hard.
        assert row.sharing_penalty_no_buffer > 0.10
        assert row.sharing_penalty_no_buffer > 5 * row.sharing_penalty
