"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables/figures and writes
the rendered output to ``benchmarks/results/``, so running

    pytest benchmarks/ --benchmark-only

both times the pipeline and leaves the reproduced tables on disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """``save_result(name, text)`` writes one reproduced table/figure."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _save
