#!/usr/bin/env python3
"""System-level example: serving a mixed cloud workload (Fig. 12 in small).

Builds the paper's heterogeneous cluster (3x XCVU37P + 1x XCKU115), streams
one Table-1 workload mix through the three systems under comparison, and
reports aggregated throughput plus what actually happened on the cluster
(deployments, sharing, reuse).

Run:  python examples/cloud_scheduling.py
"""

import copy

from repro.cluster import ClusterSimulator, paper_cluster
from repro.runtime import Catalog, build_system
from repro.vital import VitalCompiler
from repro.workloads import TABLE1_COMPOSITIONS, generate_workload

COMPOSITION = TABLE1_COMPOSITIONS[6]  # 33% S + 33% M + 34% L
TASKS = 120


def main() -> None:
    tasks = generate_workload(
        COMPOSITION, task_count=TASKS, arrival_rate_per_s=1e5, seed=17
    )
    print(
        f"workload set {COMPOSITION.index}: {COMPOSITION.describe()}, "
        f"{len(tasks)} tasks\n"
    )

    results = {}
    systems = {}
    for name in ("baseline", "restricted", "proposed"):
        cluster = paper_cluster()
        catalog = Catalog(VitalCompiler())
        system = build_system(name, cluster, catalog)
        result = ClusterSimulator(system, name).run(
            [copy.deepcopy(task) for task in tasks]
        )
        results[name] = result
        systems[name] = system
        print(
            f"{name:11s} throughput {result.throughput:8.1f} tasks/s, "
            f"mean latency {result.mean_latency() * 1e3:8.2f} ms"
        )

    base = results["baseline"].throughput
    print(
        f"\nproposed vs baseline:   "
        f"{results['proposed'].throughput / base:.2f}x"
    )
    print(
        f"proposed vs restricted: "
        f"{results['proposed'].throughput / results['restricted'].throughput:.2f}x"
    )

    controller = systems["proposed"].controller
    print("\nproposed system's final cluster state:")
    for deployment in controller.deployments.values():
        placements = ", ".join(
            f"{p.fpga_id}[{p.virtual_blocks} blocks]"
            for p in deployment.placements
        )
        print(
            f"  {deployment.model_key:18s} on {placements} "
            f"({deployment.tasks_served} tasks served)"
        )
    stats = controller.stats
    print(
        f"\ncontroller stats: {stats.deployments_created} deployments "
        f"created, {stats.deployments_evicted} evicted, "
        f"{stats.reuse_hits} reuse hits"
    )


if __name__ == "__main__":
    main()
