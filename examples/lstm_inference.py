#!/usr/bin/env python3
"""Application-level example: LSTM inference through the AS ISA.

Shows the paper's software programming flow: the application is an ISA
program, not Verilog.  We generate the program, inspect its assembly,
execute it on the functional simulator (validating against a float64 numpy
reference), and predict its latency on both FPGA types — bare metal vs
deployed through the virtualization framework (the Table 4 comparison for
one benchmark).

Run:  python examples/lstm_inference.py
"""

import numpy as np

from repro.accel import BW_K115, BW_V37, CycleModel
from repro.accel.codegen import OUT_BASE, LSTMCodegen, RNNWeights, reference_output
from repro.accel.functional import run_program
from repro.accel.timing import VirtualizationContext
from repro.isa import encode_program
from repro.units import to_ms

HIDDEN = 128
TIMESTEPS = 25


def main() -> None:
    weights = RNNWeights.random("lstm", HIDDEN, seed=7)
    xs = np.random.default_rng(8).normal(0.0, 0.5, (TIMESTEPS, HIDDEN))

    # -- codegen ---------------------------------------------------------
    codegen = LSTMCodegen(weights, TIMESTEPS)
    program = codegen.build()
    print(f"program {program.name}: {len(program)} static instructions, "
          f"{program.dynamic_instruction_count()} dynamic")
    print(f"binary size: {len(encode_program(program))} bytes "
          "(fits the on-chip instruction buffer)\n")
    print("loop body (first 8 instructions):")
    body = program.render().splitlines()
    loop_at = next(i for i, line in enumerate(body) if "loop" in line)
    print("\n".join(body[loop_at : loop_at + 9]))

    # -- functional execution ------------------------------------------------
    sim = run_program(program, preload=lambda s: codegen.preload(s, xs))
    result = sim.dram.read(OUT_BASE, HIDDEN)
    reference = reference_output(weights, xs)
    error = float(np.max(np.abs(result - reference)))
    print(f"\nfunctional check vs float64 reference: max |err| = {error:.4f} "
          "(BFP weights + float16 MFUs)")

    # -- latency prediction, Table 4 style ---------------------------------------
    print("\nlatency prediction (baseline vs through the framework):")
    for config in (BW_V37, BW_K115):
        model = CycleModel(config)
        base = model.latency(program)
        virt = model.latency(
            program, virtualization=VirtualizationContext(virtual_blocks=14)
        )
        overhead = virt.seconds / base.seconds - 1.0
        print(
            f"  {config.name}: {to_ms(base.seconds):.4f} ms bare metal, "
            f"{to_ms(virt.seconds):.4f} ms virtualized "
            f"(+{overhead * 100:.1f}%)"
        )


if __name__ == "__main__":
    main()
