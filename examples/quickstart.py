#!/usr/bin/env python3
"""Quickstart: the offline mapping pipeline in five steps.

Generates the BrainWave-like accelerator, decomposes it onto the soft-block
system abstraction (extracting its parallel patterns), partitions it for
multi-FPGA deployment, and compiles every deployment option for both FPGA
types of the paper's cluster.

Run:  python examples/quickstart.py
"""

from repro.accel import BW_V37, CONTROL_MODULES, generate_accelerator
from repro.core import decompose, partition, render_tree
from repro.core.visualize import render_partition
from repro.vital import VitalCompiler


def main() -> None:
    # 1. Generate the accelerator's structural RTL (21 SIMD tile-engine
    #    lanes on the XCVU37P-matched instance).
    design = generate_accelerator(BW_V37)
    print(f"generated {design.name}: {len(design.modules)} modules\n")

    # 2. Decompose onto the system abstraction.  The control path is marked
    #    by module name, exactly as the paper's system designer would.
    decomposed = decompose(design, CONTROL_MODULES)
    print("decomposed soft-block tree (depth-limited):")
    print(render_tree(decomposed.data_root, max_depth=2))
    print(
        f"\nroot pattern: {decomposed.root_pattern.value} "
        f"(scale-down optimisation applicable: "
        f"{decomposed.supports_scale_down()})\n"
    )

    # 3. Partition with two iterations -> deployable onto up to 4 FPGAs.
    tree = partition(decomposed, iterations=2)
    print("partition tree (pattern-guided cuts):")
    print(render_partition(tree))
    print(f"\nfrontier sizes: {[len(f) for f in tree.frontiers()]}\n")

    # 4. Compile every frontier for every feasible device type.
    compiled = VitalCompiler().compile_accelerator(decomposed, tree)
    print("deployment options (fewest FPGAs first — the runtime's greedy order):")
    for option in compiled.mapping.sorted_options():
        blocks = {
            cluster: {
                device: image.virtual_blocks
                for device, image in option.images[cluster].items()
            }
            for cluster in option.cluster_indices
        }
        print(
            f"  {option.option_id}: {option.num_clusters} cluster(s), "
            f"cut {option.cut_bits} bits, virtual blocks {blocks}"
        )

    # 5. The artifacts are content-addressed; recompiling is free.
    print(
        f"\nbitstreams compiled: {len(compiled.bitstreams)}, "
        f"modelled compile time {compiled.compile_seconds / 3600:.1f} h "
        f"(cache hits: {compiled.cached_artifacts})"
    )


if __name__ == "__main__":
    main()
