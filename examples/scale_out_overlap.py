#!/usr/bin/env python3
"""Scale-out example: one GRU served by two FPGAs (paper Section 2.3).

Walks the whole scale-out story:

1. scale the accelerator *down* into two replicas (row-sliced weights);
2. let the communication-insertion tool add the DRAM-mapped send/recv
   through the synchronisation template module;
3. let the reordering tool hoist the ``W x_t`` work above the receive;
4. co-simulate both replicas — the result is bitwise identical to the
   single-accelerator run;
5. sweep added network latency and watch the overlap hide it (Fig. 11).

Run:  python examples/scale_out_overlap.py
"""

import numpy as np

from repro.accel.codegen import (
    OUT_BASE,
    GRUCodegen,
    RNNWeights,
    build_scaleout_programs,
)
from repro.accel.functional import run_program, run_scaleout
from repro.accel import CycleModel
from repro.cluster.network import RingNetwork
from repro.perf import demand_sized_instance, scaleout_latency
from repro.units import us
from repro.workloads.deepbench import ModelSpec

HIDDEN = 128
TIMESTEPS = 12


def main() -> None:
    weights = RNNWeights.random("gru", HIDDEN, seed=3)
    xs = np.random.default_rng(4).normal(0.0, 0.5, (TIMESTEPS, HIDDEN))

    # -- single-accelerator reference run ---------------------------------
    single_gen = GRUCodegen(weights, TIMESTEPS)
    single = run_program(
        single_gen.build(), preload=lambda s: single_gen.preload(s, xs)
    )
    expected = single.dram.read(OUT_BASE, HIDDEN)

    # -- two scaled-down replicas with inserted + reordered communication ---
    programs = build_scaleout_programs("gru", weights, TIMESTEPS, replicas=2)
    print("replica 0 steady-state loop body (note send early, recv late):")
    body = programs[0].render().splitlines()
    loop_at = next(i for i, line in enumerate(body) if "loop" in line)
    for line in body[loop_at : loop_at + 12]:
        print(line)

    gens = [
        GRUCodegen(weights, TIMESTEPS, replicas=2, replica_index=i)
        for i in range(2)
    ]
    sims, fabric = run_scaleout(
        programs, preload=lambda sim, i: gens[i].preload(sim, xs)
    )
    combined = np.concatenate(
        [
            sim.dram.read(OUT_BASE + i * (HIDDEN // 2), HIDDEN // 2)
            for i, sim in enumerate(sims)
        ]
    )
    exact = bool(np.array_equal(combined, expected))
    print(f"\nscale-out(2) result bitwise equals single accelerator: {exact}")
    print(f"hidden-state bytes exchanged: {fabric.bytes_transferred}")

    # -- the Fig. 11 sweep for a real benchmark size ------------------------------
    spec = ModelSpec("gru", 1024, 1500)
    replicas = build_scaleout_programs(
        "gru", spec.metadata_weights(), spec.timesteps, 2
    )
    choice = demand_sized_instance(spec.weight_bits(7), "XCVU37P", replicas=2)
    model = CycleModel(choice.config)
    network = RingNetwork(["fpga-0", "fpga-1"])
    print(f"\n{spec.key} on 2x {choice.config.name}: latency vs added "
          "network latency")
    for added_us in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2):
        report = scaleout_latency(
            replicas[0], model, network, ["fpga-0", "fpga-1"],
            added_latency_s=us(added_us),
        )
        marker = "hidden" if report.fully_hidden else "exposed"
        print(
            f"  +{added_us:.1f} us -> {report.total_s * 1e3:8.3f} ms "
            f"({marker}; window {report.overlap_window_s * 1e6:.2f} us, "
            f"comm {report.comm_per_step_s * 1e6:.2f} us)"
        )


if __name__ == "__main__":
    main()
