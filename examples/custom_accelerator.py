#!/usr/bin/env python3
"""Bring-your-own-accelerator example.

The framework is not BrainWave-specific: any AS ISA-style accelerator with
a separable control path can be decomposed, partitioned and compiled.  This
example builds a small streaming FIR-filter-bank accelerator from scratch
with the RTL builder, marks its control path, and runs it through the whole
offline pipeline — including emitting/parsing the structural Verilog, as an
external HLS flow would.

Run:  python examples/custom_accelerator.py
"""

from repro.core import decompose, partition, render_tree
from repro.core.visualize import render_partition
from repro.resources import ResourceVector
from repro.rtl import emit_design, parse_design, validate_design
from repro.rtl.builder import DesignBuilder
from repro.vital import VitalCompiler

CHANNELS = 8  # parallel filter channels (the data parallelism)
TAPS = 4      # pipeline stages per channel


def build_filter_bank() -> "Design":
    db = DesignBuilder("firbank")

    # Control path: a sequencer that drives coefficients and valid signals.
    m = db.module("sequencer")
    m.inputs("clk", ("cfg", 32)).outputs(("coef", 16), ("enable", 1))
    m.attribute("resources", ResourceVector(luts=1800.0, ffs=1500.0))
    m.instance("state", "DFF", clk="clk")
    m.build()

    # One FIR tap: multiply-accumulate stage.
    m = db.module("fir_tap")
    m.inputs("clk", ("sample_in", 16), ("coef", 16))
    m.outputs(("sample_out", 16))
    m.net("product", 16)
    m.instance("mul", "FP16_MUL", clk="clk", a="sample_in", b="coef", y="product")
    m.instance("acc", "FP16_ADD", clk="clk", a="product", y="sample_out")
    m.build()

    # One channel: TAPS chained taps.
    m = db.module("channel")
    m.inputs("clk", ("sample", 16), ("coef", 16))
    m.outputs(("filtered", 16))
    previous = "sample"
    for tap in range(TAPS):
        out_net = "filtered" if tap == TAPS - 1 else f"stage{tap}"
        if out_net != "filtered":
            m.net(out_net, 16)
        m.instance(
            f"tap{tap}", "fir_tap",
            clk="clk", sample_in=previous, coef="coef", sample_out=out_net,
        )
        previous = out_net
    m.build()

    # Top: sequencer + CHANNELS parallel channels.
    m = db.module("top")
    m.inputs("clk", ("cfg", 32), ("sample", 16))
    m.outputs(("out", 16))
    m.nets(("coef", 16), ("enable", 1))
    m.instance("seq", "sequencer", clk="clk", cfg="cfg", coef="coef",
               enable="enable")
    for channel in range(CHANNELS):
        m.net(f"filtered{channel}", 16)
        m.instance(
            f"ch{channel}", "channel",
            clk="clk", sample="sample", coef="coef",
            filtered=f"filtered{channel}",
        )
    m.build()
    db.top("top")
    return db.build()


def main() -> None:
    design = build_filter_bank()
    warnings = validate_design(design)
    print(f"built {design.name}: {len(design.modules)} modules, "
          f"{len(warnings)} benign warnings")

    # Round-trip through structural Verilog, as an external flow would.
    text = emit_design(design)
    print(f"emitted {len(text.splitlines())} lines of structural Verilog")
    design = parse_design(text, name="firbank")
    design.top = "top"

    decomposed = decompose(design, control_modules={"sequencer"})
    print("\nextracted soft-block tree:")
    print(render_tree(decomposed.data_root, max_depth=2))
    print(f"\nroot pattern: {decomposed.root_pattern.value} over "
          f"{len(decomposed.data_root.children)} channels; each channel a "
          f"{len(decomposed.data_root.children[0].children)}-stage pipeline")

    tree = partition(decomposed, iterations=2)
    print("\npartition tree:")
    print(render_partition(tree))

    compiled = VitalCompiler().compile_accelerator(decomposed, tree)
    print("\ndeployment options:")
    for option in compiled.mapping.sorted_options():
        print(f"  {option.option_id}: feasible on "
              f"{sorted({d for c in option.cluster_indices for d in option.feasible_types(c)})}")


if __name__ == "__main__":
    main()
