"""Functional simulator for the AS ISA.

Executes ISA programs with numpy, reproducing the accelerator's numerical
behaviour: matrix-vector products in block floating point (weights quantised
at ``M_RD``, activations re-quantised per multiply), float16 rounding after
every multi-function-unit operation, and the inter-FPGA synchronisation
module semantics of Fig. 8b for scale-out programs.

The simulator has an explicit program counter and loop stack so execution
can *block* on a synchronisation read; :class:`ScaleOutFabric` co-simulates
several replicas in lockstep, delivering each replica the *combined* hidden
state exactly as the index-register merge in the template module does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExecutionError
from ..isa.bfp import BFPFormat, DEFAULT_FORMAT, bfp_matvec, bfp_quantize, to_float16
from ..isa.instructions import Instruction, Op
from ..isa.program import Program


def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-values))


class DRAM:
    """A flat word-addressable vector memory (one float per word)."""

    def __init__(self, initial_words: int = 1 << 16):
        self._data = np.zeros(initial_words, dtype=np.float64)

    def _ensure(self, words: int) -> None:
        # Geometric (doubling) growth: amortises incremental writes at
        # increasing addresses to O(n) total copy instead of O(n^2).
        if words > self._data.size:
            grown = np.zeros(max(words, self._data.size * 2), dtype=np.float64)
            grown[: self._data.size] = self._data
            self._data = grown

    def write(self, addr: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        self._ensure(addr + values.size)
        self._data[addr : addr + values.size] = values

    def read(self, addr: int, length: int) -> np.ndarray:
        # Reads never allocate: words beyond the written extent are zero
        # (the value they would have after _ensure) without growing the
        # backing store.
        if addr + length <= self._data.size:
            return self._data[addr : addr + length].copy()
        out = np.zeros(length, dtype=np.float64)
        have = max(0, self._data.size - addr)
        if have:
            out[:have] = self._data[addr : addr + have]
        return out


@dataclass
class SimStats:
    """Dynamic execution counters."""

    instructions: int = 0
    mv_muls: int = 0
    mfu_ops: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    sends: int = 0
    recvs: int = 0
    blocked_polls: int = 0


class ScaleOutFabric:
    """The inter-FPGA synchronisation fabric for ``k`` replicas.

    Each sync address carries one exchanged value.  Sends are FIFOs per
    replica; a receive of the *full* vector succeeds once every replica has
    sent its slice for the receiver's current round, and returns the slices
    concatenated in replica order — the index-register combine of Fig. 8b.
    """

    def __init__(self, replicas: int):
        if replicas < 2:
            raise ExecutionError("a scale-out fabric needs at least 2 replicas")
        self.replicas = replicas
        self._sends: dict = {}  # addr -> list per replica of sent slices
        self._recv_round: dict = {}  # (addr, replica) -> next round index
        self.bytes_transferred = 0

    def send(self, replica: int, addr: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        queues = self._sends.setdefault(
            addr, [[] for _ in range(self.replicas)]
        )
        queues[replica].append(values)
        self.bytes_transferred += values.size * 2  # float16 on the wire

    def try_recv(self, replica: int, addr: int, full_length: int):
        """Return the combined vector or ``None`` when not yet complete."""
        queues = self._sends.get(addr)
        if queues is None:
            return None
        round_index = self._recv_round.get((addr, replica), 0)
        if any(len(queue) <= round_index for queue in queues):
            return None
        # Last-axis concatenation handles both scalar (length,) slices and
        # batched (batch, length) slices from the batched simulator.
        combined = np.concatenate([queue[round_index] for queue in queues], axis=-1)
        if combined.shape[-1] != full_length:
            raise ExecutionError(
                f"sync combine produced {combined.shape[-1]} words, reader "
                f"expected {full_length}"
            )
        self._recv_round[(addr, replica)] = round_index + 1
        return combined

    def pending_rounds(self, addr: int) -> int:
        queues = self._sends.get(addr)
        if not queues:
            return 0
        return min(len(q) for q in queues)


class FunctionalSimulator:
    """Executes one program on one (possibly scaled-down) accelerator."""

    def __init__(
        self,
        program: Program,
        bfp_format: BFPFormat = DEFAULT_FORMAT,
        fabric: ScaleOutFabric | None = None,
        replica_index: int = 0,
        name: str = "",
    ):
        program.validate(allow_sync=fabric is not None)
        self.program = program
        self.fmt = bfp_format
        self.fabric = fabric
        self.replica_index = replica_index
        self.name = name or program.name
        self.dram = DRAM()
        self.vrf: dict[int, np.ndarray] = {}
        self.mrf: dict[int, np.ndarray] = {}
        self.pc = 0
        # Loop stack entries: [start_pc, remaining_trips, iteration_index].
        self.loop_stack: list[list] = []
        self.halted = False
        self.stats = SimStats()

    # -- state access ------------------------------------------------------------

    def vector(self, register: int) -> np.ndarray:
        """Read a vector register (raises when never written)."""
        try:
            return self.vrf[register]
        except KeyError:
            raise ExecutionError(
                f"{self.name}: read of uninitialised vector register v{register}"
            ) from None

    def load_matrix(self, register: int, matrix: np.ndarray) -> None:
        """Host-side direct matrix load (bypasses DRAM; used by tests)."""
        self.mrf[register] = bfp_quantize(np.asarray(matrix, dtype=np.float64), self.fmt)

    # -- execution ----------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.halted or self.pc >= len(self.program.instructions)

    def _iteration_index(self) -> int:
        """Innermost loop iteration (0 outside loops) — drives strides."""
        return self.loop_stack[-1][2] if self.loop_stack else 0

    def _effective_addr(self, inst: Instruction) -> int:
        stride = int(inst.imm) if inst.op in (Op.V_RD, Op.V_WR) and not inst.is_sync else 0
        return inst.addr + stride * self._iteration_index()

    def step(self) -> str:
        """Execute one instruction; returns ``"ok"``/``"blocked"``/``"halted"``."""
        if self.finished:
            return "halted"
        inst = self.program.instructions[self.pc]
        op = inst.op

        if op is Op.LOOP:
            self.loop_stack.append([self.pc + 1, int(inst.imm), 0])
            self.pc += 1
            return "ok"
        if op is Op.ENDLOOP:
            if not self.loop_stack:
                raise ExecutionError(f"{self.name}: ENDLOOP with empty loop stack")
            frame = self.loop_stack[-1]
            frame[1] -= 1
            frame[2] += 1
            if frame[1] > 0:
                self.pc = frame[0]
            else:
                self.loop_stack.pop()
                self.pc += 1
            return "ok"
        if op is Op.HALT:
            self.halted = True
            return "halted"
        if op is Op.NOP:
            self.pc += 1
            self.stats.instructions += 1
            return "ok"

        status = self._execute(inst)
        if status == "blocked":
            self.stats.blocked_polls += 1
            return "blocked"
        self.pc += 1
        self.stats.instructions += 1
        return "ok"

    def run(self, max_steps: int = 100_000_000) -> SimStats:
        """Run to completion; raises on deadlock (blocked with no fabric
        progress is only resolvable by a co-simulator, see
        :func:`run_scaleout`)."""
        for _ in range(max_steps):
            status = self.step()
            if status == "halted":
                return self.stats
            if status == "blocked":
                raise ExecutionError(
                    f"{self.name}: blocked on sync read at pc={self.pc} "
                    "(run replicas under run_scaleout)"
                )
        raise ExecutionError(f"{self.name}: exceeded {max_steps} steps")

    def run_until_blocked(self, max_steps: int = 100_000_000) -> str:
        """Run until blocked or finished; returns the final status."""
        for _ in range(max_steps):
            status = self.step()
            if status != "ok":
                return status
        raise ExecutionError(f"{self.name}: exceeded {max_steps} steps")

    # -- per-opcode semantics ------------------------------------------------------

    def _execute(self, inst: Instruction) -> str:
        op = inst.op
        if op is Op.V_RD:
            return self._exec_v_rd(inst)
        if op is Op.V_WR:
            return self._exec_v_wr(inst)
        if op is Op.M_RD:
            # M_RD: length = rows, imm = cols (total words = rows * cols).
            rows, cols = inst.length, int(inst.imm)
            if rows <= 0 or cols <= 0:
                raise ExecutionError(
                    f"{self.name}: M_RD needs positive rows ({rows}) and "
                    f"cols ({cols})"
                )
            flat = self.dram.read(inst.addr, rows * cols)
            self.mrf[inst.dst] = bfp_quantize(flat.reshape(rows, cols), self.fmt)
            self.stats.dram_reads += 1
            return "ok"
        if op is Op.MV_MUL:
            matrix = self.mrf.get(inst.ma)
            if matrix is None:
                raise ExecutionError(
                    f"{self.name}: MV_MUL from unloaded matrix m{inst.ma}"
                )
            vec = self.vector(inst.a)
            if matrix.shape[1] != vec.size:
                raise ExecutionError(
                    f"{self.name}: MV_MUL dims {matrix.shape} @ {vec.size}"
                )
            result = bfp_matvec(matrix, vec, self.fmt)
            self.vrf[inst.dst] = to_float16(result)
            self.stats.mv_muls += 1
            return "ok"

        # Multi-function unit operations (float16 rounding on the result).
        self.stats.mfu_ops += 1
        if op is Op.VV_ADD:
            result = self.vector(inst.a) + self.vector(inst.b)
        elif op is Op.VV_SUB:
            result = self.vector(inst.a) - self.vector(inst.b)
        elif op is Op.VV_MUL:
            result = self.vector(inst.a) * self.vector(inst.b)
        elif op is Op.V_SIGM:
            result = _sigmoid(self.vector(inst.a))
        elif op is Op.V_TANH:
            result = np.tanh(self.vector(inst.a))
        elif op is Op.V_RELU:
            result = np.maximum(self.vector(inst.a), 0.0)
        elif op is Op.V_COPY:
            result = self.vector(inst.a).copy()
        elif op is Op.V_FILL:
            result = np.full(inst.length, float(inst.imm))
        elif op is Op.V_SLICE:
            offset = int(inst.imm)
            source = self.vector(inst.a)
            if offset + inst.length > source.size:
                raise ExecutionError(f"{self.name}: V_SLICE out of range")
            result = source[offset : offset + inst.length].copy()
        elif op is Op.V_CONCAT:
            result = np.concatenate([self.vector(inst.a), self.vector(inst.b)])
        else:  # pragma: no cover - exhaustive over Op
            raise ExecutionError(f"{self.name}: unimplemented opcode {op}")
        self.vrf[inst.dst] = to_float16(result)
        return "ok"

    def _exec_v_rd(self, inst: Instruction) -> str:
        if inst.is_sync:
            if self.fabric is None:
                raise ExecutionError(
                    f"{self.name}: sync read without a scale-out fabric"
                )
            combined = self.fabric.try_recv(self.replica_index, inst.addr, inst.length)
            if combined is None:
                return "blocked"
            self.vrf[inst.dst] = combined
            self.stats.recvs += 1
            return "ok"
        self.vrf[inst.dst] = self.dram.read(self._effective_addr(inst), inst.length)
        self.stats.dram_reads += 1
        return "ok"

    def _exec_v_wr(self, inst: Instruction) -> str:
        values = self.vector(inst.a)
        if inst.is_sync:
            if self.fabric is None:
                raise ExecutionError(
                    f"{self.name}: sync write without a scale-out fabric"
                )
            self.fabric.send(self.replica_index, inst.addr, values[: inst.length])
            self.stats.sends += 1
            return "ok"
        self.dram.write(self._effective_addr(inst), values[: inst.length])
        self.stats.dram_writes += 1
        return "ok"


def run_program(program: Program, preload=None, **kwargs) -> FunctionalSimulator:
    """Run a single-accelerator program to completion.

    ``preload(sim)`` may populate DRAM/registers before execution.
    """
    sim = FunctionalSimulator(program, **kwargs)
    if preload is not None:
        preload(sim)
    sim.run()
    return sim


def run_scaleout(programs: list, preload=None, bfp_format: BFPFormat = DEFAULT_FORMAT):
    """Co-simulate scale-out replicas to completion.

    ``programs[i]`` runs as replica ``i``; ``preload(sim, index)`` populates
    each replica's DRAM (each FPGA has its own DRAM with its own copy of
    inputs).  Replicas run round-robin until all finish; a full round with
    no progress is a deadlock and raises :class:`ExecutionError`.
    """
    fabric = ScaleOutFabric(len(programs))
    sims = [
        FunctionalSimulator(
            program, bfp_format=bfp_format, fabric=fabric, replica_index=index
        )
        for index, program in enumerate(programs)
    ]
    if preload is not None:
        for index, sim in enumerate(sims):
            preload(sim, index)

    while not all(sim.finished for sim in sims):
        progressed = False
        for sim in sims:
            if sim.finished:
                continue
            before = sim.stats.instructions
            status = sim.run_until_blocked()
            if sim.stats.instructions > before or status == "halted":
                progressed = True
        if not progressed:
            stuck = [sim.name for sim in sims if not sim.finished]
            raise ExecutionError(f"scale-out deadlock; blocked replicas: {stuck}")
    return sims, fabric
