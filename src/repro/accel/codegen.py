"""LSTM/GRU program generators for the AS ISA.

These are the DeepBench-style workloads the paper evaluates (Section 4.1):
GRU and LSTM inference at batch size one.  The codegen emits programs in the
*slice-parallel* form the accelerator executes: every replica (one for a
full-size accelerator, ``k`` for a scale-down deployment) owns a row slice
of each weight matrix and produces the matching slice of the hidden state.

Scale-out hooks: the instruction that produces the local hidden-state slice
is tagged ``produce:h``; consumers of the *full* previous hidden state are
tagged ``consume:h``; the single-accelerator full-state update is tagged
``broadcast:h`` and is replaced by send/recv when
:func:`repro.isa.comm_insertion.insert_scaleout_communication` transforms the
program (see :func:`build_scaleout_programs`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ISAError
from ..isa import comm_insertion
from ..isa.instructions import (
    Instruction,
    endloop,
    halt,
    loop,
    m_rd,
    mv_mul,
    v_copy,
    v_fill,
    v_rd,
    v_sigm,
    v_tanh,
    v_wr,
    vv_add,
    vv_mul,
    vv_sub,
)
from ..isa.progcache import PROGRAM_CACHE, program_cache_key
from ..isa.program import Program
from ..isa.reorder import reorder_for_overlap

# -- DRAM layout (word addresses) ---------------------------------------------

MAT_BASE = 0x0010_0000
BIAS_BASE = 0x0008_0000
X_BASE = 0x0100_0000
OUT_BASE = 0x0004_0000

# -- register allocation ---------------------------------------------------------

R_X = 0        # x_t (full input vector)
R_H_FULL = 1   # h_{t-1}, full (combined across replicas)
R_T0, R_T1, R_T2, R_T3, R_T4, R_T5 = 2, 3, 4, 5, 6, 7
R_B0, R_B1, R_B2, R_B3 = 8, 9, 10, 11
R_H_SLICE = 12  # local slice of h_t
R_ONES = 13
R_C_SLICE = 14  # LSTM cell state (row-local, never exchanged)


@dataclass
class RNNWeights:
    """Weight tensors for one GRU or LSTM model (numpy, row-major).

    ``w[gate]`` maps the input (``hidden x input_dim``), ``u[gate]`` the
    recurrent state (``hidden x hidden``), ``b[gate]`` the bias.  Gate order
    is ``r, z, n`` for GRU and ``i, f, g, o`` for LSTM.
    """

    kind: str
    hidden: int
    input_dim: int
    w: list = field(default_factory=list)
    u: list = field(default_factory=list)
    b: list = field(default_factory=list)

    @property
    def gates(self) -> int:
        return len(self.w)

    @property
    def parameter_count(self) -> int:
        """Total weights (matrices only; biases are negligible)."""
        return self.gates * (self.hidden * self.input_dim + self.hidden * self.hidden)

    @classmethod
    def random(
        cls, kind: str, hidden: int, input_dim: int | None = None, seed: int = 0
    ) -> "RNNWeights":
        """Random, inference-stable weights (scaled for bounded activations)."""
        kind = kind.lower()
        gates = {"gru": 3, "lstm": 4}.get(kind)
        if gates is None:
            raise ISAError(f"unknown RNN kind {kind!r}")
        input_dim = input_dim or hidden
        rng = np.random.default_rng(seed)
        scale_w = 1.0 / np.sqrt(input_dim)
        scale_u = 1.0 / np.sqrt(hidden)
        return cls(
            kind=kind,
            hidden=hidden,
            input_dim=input_dim,
            w=[rng.normal(0, scale_w, (hidden, input_dim)) for _ in range(gates)],
            u=[rng.normal(0, scale_u, (hidden, hidden)) for _ in range(gates)],
            b=[rng.normal(0, 0.1, hidden) for _ in range(gates)],
        )


@dataclass(frozen=True)
class _Slice:
    """The row slice one replica owns."""

    start: int
    rows: int


class _RNNCodegenBase:
    """Shared machinery for GRU/LSTM codegen.

    Parameters:
        weights: the model.
        timesteps: sequence length.
        replicas / replica_index: scale-down slicing (1/0 = whole model).
    """

    GATES: int = 0

    def __init__(
        self,
        weights: RNNWeights,
        timesteps: int,
        replicas: int = 1,
        replica_index: int = 0,
    ):
        if weights.gates != self.GATES:
            raise ISAError(
                f"{type(self).__name__} expects {self.GATES} gates, weights "
                f"have {weights.gates}"
            )
        if timesteps < 1:
            raise ISAError("timesteps must be >= 1")
        if weights.hidden % replicas != 0:
            raise ISAError(
                f"hidden {weights.hidden} not divisible by {replicas} replicas"
            )
        self.weights = weights
        self.timesteps = timesteps
        self.replicas = replicas
        self.replica_index = replica_index
        rows = weights.hidden // replicas
        self.slice = _Slice(start=replica_index * rows, rows=rows)

    # -- addresses --------------------------------------------------------------

    def _matrix_addr(self, which: str, gate: int) -> int:
        """Address of this replica's row slice of matrix ``which`` (w/u).

        Per-gate layout: ``W`` (h x d) then ``U`` (h x h), back to back.
        """
        h, d = self.weights.hidden, self.weights.input_dim
        base = MAT_BASE + gate * (h * d + h * h)
        if which == "w":
            return base + self.slice.start * d
        return base + h * d + self.slice.start * h

    def _bias_addr(self, gate: int) -> int:
        return BIAS_BASE + gate * self.weights.hidden + self.slice.start

    # -- DRAM image -----------------------------------------------------------------

    def preload(self, sim, xs: np.ndarray) -> None:
        """Write weights, biases and the input stream into a simulator's DRAM.

        ``xs`` is ``(timesteps, input_dim)``.  Every replica's DRAM receives
        the full image (each FPGA has its own DRAM copy); programs address
        only their own slice.
        """
        self.preload_weights(sim)
        self.preload_inputs(sim, xs)

    def preload_weights(self, sim) -> None:
        """The request-invariant half of the DRAM image (weights + biases).

        Split out so the batched simulator can write it once through a
        broadcast view shared by every lane of a batch.
        """
        h, d = self.weights.hidden, self.weights.input_dim
        for gate in range(self.GATES):
            base = MAT_BASE + gate * (h * d + h * h)
            sim.dram.write(base, self.weights.w[gate])
            sim.dram.write(base + h * d, self.weights.u[gate])
            sim.dram.write(BIAS_BASE + gate * h, self.weights.b[gate])

    def preload_inputs(self, sim, xs: np.ndarray) -> None:
        """The per-request half of the DRAM image (the input stream)."""
        d = self.weights.input_dim
        xs = np.asarray(xs, dtype=np.float64)
        if xs.shape != (self.timesteps, d):
            raise ISAError(f"xs shape {xs.shape} != ({self.timesteps}, {d})")
        for t in range(self.timesteps):
            sim.dram.write(X_BASE + t * d, xs[t])

    # -- program assembly --------------------------------------------------------------

    def _prologue(self, prog: Program) -> None:
        h, d = self.weights.hidden, self.weights.input_dim
        rows = self.slice.rows
        for gate in range(self.GATES):
            prog.append(m_rd(self._mreg("w", gate), self._matrix_addr("w", gate),
                             rows, tag="load:w"))
            # cols ride in imm for M_RD (matrix shape) — see the ISA docs.
            prog.instructions[-1] = _with_imm(prog.instructions[-1], d)
            prog.append(m_rd(self._mreg("u", gate), self._matrix_addr("u", gate),
                             rows, tag="load:u"))
            prog.instructions[-1] = _with_imm(prog.instructions[-1], h)
            prog.append(v_rd(R_B0 + gate, self._bias_addr(gate), rows, tag="load:b"))
        prog.append(v_fill(R_ONES, 1.0, rows))
        prog.append(v_fill(R_H_FULL, 0.0, h))
        fill_slice = v_fill(R_H_SLICE, 0.0, rows, tag="produce:h")
        prog.append(fill_slice)

    def _mreg(self, which: str, gate: int) -> int:
        return gate * 2 + (0 if which == "w" else 1)

    def _load_x(self, prog: Program) -> None:
        d = self.weights.input_dim
        inst = v_rd(R_X, X_BASE, d, tag="load:x")
        # stride rides in imm for strided DRAM streams.
        prog.append(_with_imm(inst, d))

    def _mv_w(self, prog: Program, dst: int, gate: int) -> None:
        """dst <- W_gate[slice] @ x_t (independent of h — overlappable)."""
        inst = mv_mul(dst, self._mreg("w", gate), R_X, self.slice.rows,
                      tag="compute:x")
        prog.append(_with_imm(inst, self.weights.input_dim))

    def _mv_u(self, prog: Program, dst: int, gate: int) -> None:
        """dst <- U_gate[slice] @ h_{t-1} (consumes the full hidden state)."""
        inst = mv_mul(dst, self._mreg("u", gate), R_H_FULL, self.slice.rows,
                      tag="consume:h")
        prog.append(_with_imm(inst, self.weights.hidden))

    def _epilogue(self, prog: Program) -> None:
        prog.append(v_wr(R_H_SLICE, OUT_BASE + self.slice.start, self.slice.rows,
                         tag="store:h"))
        prog.append(halt())

    def _broadcast_h(self, prog: Program) -> None:
        """Single-accelerator full-state update (replaced by send/recv when
        the communication-insertion tool transforms the program)."""
        if self.replicas == 1:
            prog.append(v_copy(R_H_FULL, R_H_SLICE, self.weights.hidden,
                               tag="broadcast:h"))

    def build(self) -> Program:
        """Emit the program for this replica."""
        prog = Program(name=self._program_name())
        prog.metadata.update(
            model=self.weights.kind,
            hidden=self.weights.hidden,
            input_dim=self.weights.input_dim,
            timesteps=self.timesteps,
            replicas=self.replicas,
            replica_index=self.replica_index,
            slice_rows=self.slice.rows,
        )
        self._prologue(prog)
        prog.append(loop(self.timesteps))
        self._step_body(prog)
        self._broadcast_h(prog)
        prog.append(endloop())
        self._epilogue(prog)
        prog.validate()
        return prog

    def _program_name(self) -> str:
        h, t = self.weights.hidden, self.timesteps
        return f"{self.weights.kind}-h{h}-t{t}"

    def _step_body(self, prog: Program) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


def _with_imm(inst: Instruction, imm: float) -> Instruction:
    from dataclasses import replace

    return replace(inst, imm=float(imm))


class GRUCodegen(_RNNCodegenBase):
    """GRU inference::

        r = sigm(W_r x + U_r h + b_r)
        z = sigm(W_z x + U_z h + b_z)
        n = tanh(W_n x + r * (U_n h) + b_n)
        h = (1 - z) * n + z * h
    """

    GATES = 3

    def _step_body(self, prog: Program) -> None:
        rows = self.slice.rows
        self._load_x(prog)
        # r gate
        self._mv_w(prog, R_T0, 0)
        self._mv_u(prog, R_T1, 0)
        prog.append(vv_add(R_T0, R_T0, R_T1, rows))
        prog.append(vv_add(R_T0, R_T0, R_B0, rows))
        prog.append(v_sigm(R_T0, R_T0, rows))
        # z gate
        self._mv_w(prog, R_T2, 1)
        self._mv_u(prog, R_T3, 1)
        prog.append(vv_add(R_T2, R_T2, R_T3, rows))
        prog.append(vv_add(R_T2, R_T2, R_B1, rows))
        prog.append(v_sigm(R_T2, R_T2, rows))
        # candidate
        self._mv_w(prog, R_T4, 2)
        self._mv_u(prog, R_T5, 2)
        prog.append(vv_mul(R_T5, R_T0, R_T5, rows))
        prog.append(vv_add(R_T4, R_T4, R_T5, rows))
        prog.append(vv_add(R_T4, R_T4, R_B2, rows))
        prog.append(v_tanh(R_T4, R_T4, rows))
        # h update (slice-local elementwise)
        prog.append(vv_sub(R_T1, R_ONES, R_T2, rows))
        prog.append(vv_mul(R_T1, R_T1, R_T4, rows))
        prog.append(vv_mul(R_T3, R_T2, R_H_SLICE, rows))
        prog.append(vv_add(R_H_SLICE, R_T1, R_T3, rows).with_tag("produce:h"))


class LSTMCodegen(_RNNCodegenBase):
    """LSTM inference::

        i = sigm(W_i x + U_i h + b_i)     f = sigm(W_f x + U_f h + b_f)
        g = tanh(W_g x + U_g h + b_g)     o = sigm(W_o x + U_o h + b_o)
        c = f * c + i * g                 h = o * tanh(c)

    The cell state ``c`` is row-local (elementwise only), so scale-out
    replicas never exchange it — only ``h`` crosses FPGAs.
    """

    GATES = 4

    def _prologue(self, prog: Program) -> None:
        super()._prologue(prog)
        prog.append(v_fill(R_C_SLICE, 0.0, self.slice.rows))

    def _step_body(self, prog: Program) -> None:
        rows = self.slice.rows
        self._load_x(prog)
        gate_regs = (R_T0, R_T1, R_T2, R_T3)
        activations = (v_sigm, v_sigm, v_tanh, v_sigm)
        for gate, (reg, act) in enumerate(zip(gate_regs, activations)):
            self._mv_w(prog, reg, gate)
            self._mv_u(prog, R_T4, gate)
            prog.append(vv_add(reg, reg, R_T4, rows))
            prog.append(vv_add(reg, reg, R_B0 + gate, rows))
            prog.append(act(reg, reg, rows))
        # c = f*c + i*g
        prog.append(vv_mul(R_T5, R_T0, R_T2, rows))       # i*g
        prog.append(vv_mul(R_C_SLICE, R_T1, R_C_SLICE, rows))  # f*c
        prog.append(vv_add(R_C_SLICE, R_C_SLICE, R_T5, rows))
        # h = o * tanh(c)
        prog.append(v_tanh(R_T4, R_C_SLICE, rows))
        prog.append(vv_mul(R_H_SLICE, R_T3, R_T4, rows).with_tag("produce:h"))


def make_codegen(
    kind: str, weights: RNNWeights, timesteps: int, replicas: int = 1,
    replica_index: int = 0,
) -> _RNNCodegenBase:
    """Factory over the two model kinds."""
    cls = {"gru": GRUCodegen, "lstm": LSTMCodegen}.get(kind.lower())
    if cls is None:
        raise ISAError(f"unknown RNN kind {kind!r}")
    return cls(weights, timesteps, replicas=replicas, replica_index=replica_index)


def build_scaleout_programs(
    kind: str,
    weights: RNNWeights,
    timesteps: int,
    replicas: int,
    reorder: bool = True,
) -> list:
    """Emit the ``replicas`` programs for a scale-down deployment.

    Applies the communication-insertion tool (send after ``produce:h``,
    combining recv before ``consume:h``), strips the single-accelerator
    broadcast, and optionally runs the overlap reordering tool — exactly the
    offline pipeline of Section 2.3.

    Transformed programs are memoised in :data:`repro.isa.progcache
    .PROGRAM_CACHE` — the pipeline's output depends only on the model
    configuration and plan shape, never on the weight tensors, so repeat
    deployments of the same plan skip codegen/insertion/reordering.
    """

    def _build(index: int) -> Program:
        gen = make_codegen(kind, weights, timesteps, replicas=replicas,
                           replica_index=index)
        template = gen.build()
        plan = comm_insertion.ScaleOutPlan(
            replicas=replicas,
            replica_index=index,
            value="h",
            full_length=weights.hidden,
            slice_register=R_H_SLICE,
            combined_register=R_H_FULL,
        )
        transformed = comm_insertion.insert_scaleout_communication(template, plan)
        if reorder:
            transformed = reorder_for_overlap(transformed)
        return transformed

    programs = []
    for index in range(replicas):
        key = program_cache_key(
            kind.lower(),
            weights.hidden,
            weights.input_dim,
            timesteps,
            replicas=replicas,
            replica_index=index,
            reorder=reorder,
            stage="scaleout",
        )
        programs.append(
            PROGRAM_CACHE.get(key, lambda index=index: _build(index))
        )
    return programs


def reference_output(weights: RNNWeights, xs: np.ndarray) -> np.ndarray:
    """Float64 numpy reference (no quantisation) for end-to-end checks."""
    h = np.zeros(weights.hidden)
    xs = np.asarray(xs, dtype=np.float64)
    if weights.kind == "gru":
        for x in xs:
            r = _np_sigm(weights.w[0] @ x + weights.u[0] @ h + weights.b[0])
            z = _np_sigm(weights.w[1] @ x + weights.u[1] @ h + weights.b[1])
            n = np.tanh(weights.w[2] @ x + r * (weights.u[2] @ h) + weights.b[2])
            h = (1 - z) * n + z * h
        return h
    if weights.kind == "lstm":
        c = np.zeros(weights.hidden)
        for x in xs:
            i = _np_sigm(weights.w[0] @ x + weights.u[0] @ h + weights.b[0])
            f = _np_sigm(weights.w[1] @ x + weights.u[1] @ h + weights.b[1])
            g = np.tanh(weights.w[2] @ x + weights.u[2] @ h + weights.b[2])
            o = _np_sigm(weights.w[3] @ x + weights.u[3] @ h + weights.b[3])
            c = f * c + i * g
            h = o * np.tanh(c)
        return h
    raise ISAError(f"unknown RNN kind {weights.kind!r}")


def _np_sigm(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-values))
