"""The BrainWave-like AS ISA accelerator (paper Section 3).

A parameterised soft NPU: ``tiles`` SIMD compute lanes (matrix-vector tile
engines in block floating point, per-lane accumulation and float16
multi-function units), a shared control path (instruction decoder +
instruction buffer, FP16-to-BFP converter, vector register file, DRAM
interface), and a parameterised weight memory that uses BRAM and/or URAM
depending on the target FPGA.

* :mod:`~repro.accel.config`     — accelerator instance parameters.
* :mod:`~repro.accel.memory`     — the parameterised memory module.
* :mod:`~repro.accel.generator`  — builds the structural RTL design.
* :mod:`~repro.accel.codegen`    — emits LSTM/GRU ISA programs.
* :mod:`~repro.accel.functional` — executes ISA programs (numpy + BFP).
* :mod:`~repro.accel.batched`    — N-wide lockstep execution of identical
  deployments (leading batch axis over the architectural state).
* :mod:`~repro.accel.timing`     — the cycle-level latency model.
"""

from .config import AcceleratorConfig, MemoryPlan, BW_V37, BW_K115, scaled_config
from .generator import generate_accelerator, CONTROL_MODULES
from .codegen import GRUCodegen, LSTMCodegen, RNNWeights
from .functional import FunctionalSimulator, ScaleOutFabric, run_program
from .batched import (
    BatchedDRAM,
    BatchedFunctionalSimulator,
    run_batched,
    run_scaleout_batched,
)
from .timing import CycleModel, TimingParameters

__all__ = [
    "AcceleratorConfig",
    "BW_K115",
    "BW_V37",
    "BatchedDRAM",
    "BatchedFunctionalSimulator",
    "CONTROL_MODULES",
    "CycleModel",
    "FunctionalSimulator",
    "GRUCodegen",
    "LSTMCodegen",
    "MemoryPlan",
    "RNNWeights",
    "ScaleOutFabric",
    "TimingParameters",
    "generate_accelerator",
    "run_batched",
    "run_program",
    "run_scaleout_batched",
    "scaled_config",
]
