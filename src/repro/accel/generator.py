"""RTL generator for the BrainWave-like accelerator (paper Fig. 9).

Organisation (one instance)::

    top
    |- instr_buffer   \\
    |- instr_decoder   |  control path (kept in one soft block)
    |- dram_iface      |
    |- fp16_bfp_conv   |  moved to control per Section 3
    |- vector_regfile /
    `- lane{0..T-1}       data path: T identical SIMD compute lanes
       |- mvm_tile        tile engine: weight memory + BFP MAC array
       |- lane_acc        accumulator (BFP -> wide fixed point)
       `- mfu_slice       float16 multi-function unit for this row slice

Each lane owns a row-slice of every weight matrix, so point-wise MFU
operations are row-local and the lanes are genuinely data-parallel: the
decomposing tool extracts a DATA root over per-lane PIPELINEs, which is the
property (Section 3) that makes the scale-down optimisation applicable and
lets the partitioner keep SIMD pipelines intact.

Resource calibration: the per-lane costs below put the 21-tile instance at
~610k LUTs / ~660k FFs / ~7.5k DSPs — Table 2's BW-V37 — and scale linearly
with tiles; see the constants and `repro/accel/config.py` notes.
"""

from __future__ import annotations

from ..resources import ResourceVector
from ..rtl.builder import DesignBuilder
from ..rtl.ir import Design
from .config import AcceleratorConfig
from .memory import build_weight_memory

#: Module names forming the control path; passed to the decomposer exactly
#: as the paper's system designer would mark them.
CONTROL_MODULES = (
    "instr_buffer",
    "instr_decoder",
    "dram_iface",
    "fp16_bfp_conv",
    "vector_regfile",
)

# -- calibrated per-component costs (see module docstring) --------------------

#: MAC array: per-MAC cost in the BFP datapath.  2048 MACs/tile at these
#: rates yields ~26.6k LUTs, ~28.7k FFs and ~344 DSPs per tile.
_MAC_LUTS = 13.0
_MAC_FFS = 14.0
_MAC_DSPS = 0.168

_ACC_COST = ResourceVector(luts=600.0, ffs=900.0, dsps=2.0)
_MFU_LANE_COST = ResourceVector(luts=420.0, ffs=520.0, dsps=2.0)
_DECODER_COST = ResourceVector(luts=3200.0, ffs=2600.0)
_DRAM_IFACE_COST = ResourceVector(luts=5200.0, ffs=6800.0, bram_bits=18.0 * 1024 * 16)
_CONV_COST = ResourceVector(luts=2400.0, ffs=2100.0, dsps=8.0)
_VRF_COST_PER_KB = ResourceVector(luts=40.0, ffs=24.0, bram_bits=8.0 * 1024)


def _mac_array_resources(config: AcceleratorConfig) -> ResourceVector:
    macs = config.native_rows * config.native_lanes
    return ResourceVector(
        luts=_MAC_LUTS * macs, ffs=_MAC_FFS * macs, dsps=_MAC_DSPS * macs
    )


def _vrf_resources(config: AcceleratorConfig) -> ResourceVector:
    # Vector register file: V registers x max vector length x 16 bits.
    kilobytes = (
        config.vector_registers * config.max_vector_length * 16 / 8.0 / 1024.0
    )
    return _VRF_COST_PER_KB * kilobytes


def _instr_buffer_resources(config: AcceleratorConfig) -> ResourceVector:
    return ResourceVector(
        luts=900.0,
        ffs=1100.0,
        bram_bits=float(config.instruction_buffer_bytes * 8),
    )


def generate_accelerator(config: AcceleratorConfig) -> Design:
    """Build the structural RTL design for one accelerator instance."""
    db = DesignBuilder(config.name)

    _build_control_modules(db, config)
    _build_lane_modules(db, config)
    _build_top(db, config)
    db.top("top")
    return db.build()


# ---------------------------------------------------------------------------
# control path
# ---------------------------------------------------------------------------


def _build_control_modules(db: DesignBuilder, config: AcceleratorConfig) -> None:
    m = db.module("instr_buffer")
    m.inputs("clk", ("wr_instr", 128), ("wr_en", 1))
    m.outputs(("rd_instr", 128))
    m.attribute("resources", _instr_buffer_resources(config))
    m.net("fifo_out", 72)
    m.instance("store", "FIFO", clk="clk")
    m.build()

    m = db.module("instr_decoder")
    m.inputs("clk", ("instr", 128))
    m.outputs(("ctl", 64), ("dram_cmd", 64))
    m.attribute("resources", _DECODER_COST)
    m.net("stage_q", 1)
    m.instance("pipe0", "DFF", clk="clk")
    m.build()

    m = db.module("dram_iface")
    m.inputs("clk", ("cmd", 64), ("wr_data", 512))
    m.outputs(("rd_data", 512))
    m.attribute("resources", _DRAM_IFACE_COST)
    m.instance("rdq", "FIFO", clk="clk")
    m.build()

    m = db.module("fp16_bfp_conv")
    m.inputs("clk", ("vec_fp16", 256))
    m.outputs(("vec_bfp", 128))
    m.attribute("resources", _CONV_COST)
    m.instance("norm", "DSP_MAC", clk="clk")
    m.build()

    m = db.module("vector_regfile")
    m.inputs("clk", ("ctl", 64), ("wr_vec", 256), ("lane_in", 16 * config.tiles))
    m.outputs(("rd_vec", 256))
    m.attribute("resources", _vrf_resources(config))
    m.instance("bank", "BRAM36", clk="clk")
    m.build()


# ---------------------------------------------------------------------------
# data path: one lane = tile engine -> accumulator -> MFU slice
# ---------------------------------------------------------------------------


def _build_lane_modules(db: DesignBuilder, config: AcceleratorConfig) -> None:
    db.add(build_weight_memory(config.memory, name="weight_mem"))

    m = db.module("mac_array")
    m.inputs("clk", ("vec_bfp", 128), ("weights", 72))
    m.outputs(("partial", 48))
    m.attribute("resources", _mac_array_resources(config))
    m.net("chain0", 24)
    m.instance("mac0", "BFP_MAC", clk="clk", acc_out="chain0")
    m.instance("mac1", "BFP_MAC", clk="clk", acc_in="chain0")
    m.build()

    # The tile engine wraps weight memory + MAC array (non-basic; its two
    # basic children decompose into a pipeline inside the lane).
    m = db.module("mvm_tile")
    m.inputs("clk", ("vec_bfp", 128), ("wmem_we", 1), ("wmem_din", 72))
    m.outputs(("partial", 48))
    m.net("wdata", 72)
    m.instance(
        "wmem", "weight_mem", clk="clk", we="wmem_we", din="wmem_din", dout="wdata"
    )
    m.instance("macs", "mac_array", clk="clk", vec_bfp="vec_bfp", weights="wdata",
               partial="partial")
    m.build()

    m = db.module("lane_acc")
    m.inputs("clk", ("partial", 48))
    m.outputs(("acc_fp16", 64))
    m.attribute("resources", _ACC_COST)
    m.net("sum0", 32)
    m.instance("add0", "INT_ADD", y="sum0")
    m.instance("reg0", "DFF", clk="clk")
    m.build()

    mfu_cost = _MFU_LANE_COST * config.mfu_lanes_per_tile
    m = db.module("mfu_slice")
    m.inputs("clk", ("acc_fp16", 64), ("ctl", 64))
    m.outputs(("result", 16))
    m.attribute("resources", mfu_cost)
    m.net("mul_out", 16)
    m.instance("mul0", "FP16_MUL", clk="clk", y="mul_out")
    m.instance("add0", "FP16_ADD", clk="clk", a="mul_out")
    m.build()

    m = db.module("compute_lane")
    m.inputs(
        "clk",
        ("vec_bfp", 128),
        ("ctl", 64),
        ("wmem_we", 1),
        ("wmem_din", 72),
    )
    m.outputs(("result", 16))
    m.nets(("partial", 48), ("acc_out", 64))
    m.instance(
        "tile",
        "mvm_tile",
        clk="clk",
        vec_bfp="vec_bfp",
        wmem_we="wmem_we",
        wmem_din="wmem_din",
        partial="partial",
    )
    m.instance("acc", "lane_acc", clk="clk", partial="partial", acc_fp16="acc_out")
    m.instance("mfu", "mfu_slice", clk="clk", acc_fp16="acc_out", result="result")
    m.build()


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------


def _build_top(db: DesignBuilder, config: AcceleratorConfig) -> None:
    m = db.module("top", attributes={"accelerator": config.name})
    m.inputs(
        "clk",
        ("host_instr", 128),
        ("host_instr_en", 1),
        ("dram_wr", 512),
    )
    m.outputs(("dram_rd", 512), ("status", 16))
    m.nets(
        ("instr", 128),
        ("ctl", 64),
        ("dram_cmd", 64),
        ("vec_fp16", 256),
        ("vec_bfp", 128),
        ("lane_results", 16 * config.tiles),
        ("wmem_we", 1),
        ("wmem_din", 72),
    )
    m.instance(
        "ibuf",
        "instr_buffer",
        clk="clk",
        wr_instr="host_instr",
        wr_en="host_instr_en",
        rd_instr="instr",
    )
    m.instance("dec", "instr_decoder", clk="clk", instr="instr", ctl="ctl",
               dram_cmd="dram_cmd")
    m.instance("dram", "dram_iface", clk="clk", cmd="dram_cmd", wr_data="dram_wr",
               rd_data="dram_rd")
    m.instance("conv", "fp16_bfp_conv", clk="clk", vec_fp16="vec_fp16",
               vec_bfp="vec_bfp")
    m.instance(
        "vrf",
        "vector_regfile",
        clk="clk",
        ctl="ctl",
        wr_vec="vec_fp16",
        lane_in="lane_results",
        rd_vec="vec_fp16",
    )
    for index in range(config.tiles):
        lane_out = f"lane_out{index}"
        m.net(lane_out, 16)
        m.instance(
            f"lane{index}",
            "compute_lane",
            clk="clk",
            vec_bfp="vec_bfp",
            ctl="ctl",
            wmem_we="wmem_we",
            wmem_din="wmem_din",
            result=lane_out,
        )
    m.build()


def design_summary(design: Design) -> dict:
    """Quick inventory used by reports: module count, instance count."""
    instances = sum(len(mod.instances) for mod in design.iter_modules())
    return {
        "modules": len(design.modules),
        "instances": instances,
        "top": design.top,
    }
