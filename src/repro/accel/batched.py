"""Batched (SIMD-over-requests) functional simulation.

:class:`~repro.accel.functional.FunctionalSimulator` executes one
instruction of one request at a time — the validation style, not a serving
engine.  This module stacks the architectural state of ``N`` concurrent
requests to *identical deployments* (same decoded :class:`Program`, same
control flow) into numpy arrays with a leading batch axis and executes one
vectorized step over the whole batch: the Python dispatch, BFP
quantisation, MFU elementwise work and the matrix reads are all amortised
``N``-wide.

Bit-identity contract
---------------------

Batched execution produces *bit-identical* architectural state to running
each lane through the scalar simulator:

* Elementwise paths (MFU ops, activations, float16 rounding) and the
  blockwise BFP quantisation operate along the last axis, so a ``(N, L)``
  batch computes exactly the per-lane values.
* ``MV_MUL`` is the one place a faster algorithm (one dgemm for the batch
  instead of ``N`` dgemv calls) can legally reorder float summation.  The
  batched path runs the dgemm, then applies a *rounding-boundary guard*:
  a rigorous forward error bound ``E`` on the difference between any two
  float64 summation orders is computed per output element, and any element
  whose interval ``[v - E, v + E]`` straddles a float16 rounding boundary
  is recomputed with the exact scalar dgemv (``matrix @ lane``).  Because
  the architectural result of ``MV_MUL`` is the float16-rounded value, all
  unflagged elements provably round to the same float16 as the scalar
  path, and flagged elements (empirically ~1e-9 of outputs) are taken from
  the scalar computation verbatim.

Memory
------

Lane DRAMs are paged (:class:`BatchedDRAM`): pages written identically to
every lane (the weight/bias image of an identical deployment) are stored
once and shared; only lane-varying pages (inputs, outputs) are
materialised per lane.  A shared matrix region loads into one ``(rows,
cols)`` MRF entry consumed by the dgemm fast path — the in-simulator
analogue of amortising one compiled artifact across many requests.

Fallback
--------

:func:`run_batched` falls back to the scalar simulator for singleton
batches (``N == 1``) and on request (``force_scalar=True``, used by the
runtime when a coalescing group degenerates); divergence cannot arise
within a batch because the ISA has no data-dependent control flow — lanes
of one program execute in lockstep by construction.  Scale-out programs
run under :func:`run_scaleout_batched`, which co-simulates ``k`` replica
simulators, each ``N`` lanes wide, over one fabric.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError
from ..isa.bfp import BFPFormat, DEFAULT_FORMAT, bfp_matvec, bfp_quantize, to_float16
from ..isa.instructions import Instruction, Op
from ..isa.program import Program
from ..perf.profiling import PROFILER
from .functional import (
    FunctionalSimulator,
    ScaleOutFabric,
    SimStats,
    _sigmoid,
)

#: Words per DRAM page (64 Ki words = 512 KiB of float64 per lane-page).
PAGE_WORDS = 1 << 16

#: Float64 unit roundoff.
_UNIT = 2.0 ** -53


def _gamma(terms: int) -> float:
    """Worst-case relative error factor for a float64 sum/dot of ``terms``
    terms under *any* summation order (sequential, pairwise, blocked,
    FMA): ``gamma_n = n*u / (1 - n*u)``, padded with one extra term for
    the product roundings and doubled once more for slack — the guard is
    a correctness gate, so it is deliberately loose."""
    nu = (terms + 2) * _UNIT
    return 2.0 * nu / (1.0 - nu)


class BatchedDRAM:
    """``batch`` lane DRAMs with copy-on-diverge page sharing.

    Pages written identically to every lane (broadcast writes: the weight
    image of an identical deployment) are stored once as ``(PAGE,)``
    arrays; a lane-targeted or per-lane write promotes the page to a
    ``(batch, PAGE)`` array.  Reads return ``(batch, length)``; callers
    that can exploit sharing (``M_RD``) use :meth:`read_shared`, which
    returns ``(length,)`` when every touched page is still shared.
    """

    def __init__(self, batch: int, page_words: int = PAGE_WORDS):
        if batch < 1:
            raise ExecutionError("BatchedDRAM needs a positive batch size")
        self.batch = batch
        self.page_words = page_words
        self._shared: dict[int, np.ndarray] = {}
        self._laned: dict[int, np.ndarray] = {}

    # -- page helpers --------------------------------------------------------

    def _lane_page(self, number: int) -> np.ndarray:
        """The ``(batch, PAGE)`` array for one page, promoting as needed."""
        page = self._laned.get(number)
        if page is None:
            page = np.zeros((self.batch, self.page_words), dtype=np.float64)
            shared = self._shared.pop(number, None)
            if shared is not None:
                page[:] = shared
            self._laned[number] = page
        return page

    def _spans(self, addr: int, length: int):
        """Yield ``(page_number, page_offset, start, stop)`` chunks."""
        if addr < 0:
            raise ExecutionError(f"negative DRAM address {addr}")
        offset = 0
        while offset < length:
            at = addr + offset
            number, page_offset = divmod(at, self.page_words)
            chunk = min(length - offset, self.page_words - page_offset)
            yield number, page_offset, offset, offset + chunk
            offset += chunk

    # -- writes --------------------------------------------------------------

    def write(self, addr: int, values: np.ndarray, lane: int | None = None) -> None:
        """Write ``values`` at ``addr``.

        * ``values`` of shape ``(length,)`` with ``lane=None`` is a
          *broadcast* write: every lane sees it (stored shared unless the
          page already diverged).
        * ``values`` of shape ``(batch, length)`` writes per lane.
        * ``lane=i`` writes one lane only (promotes touched pages).
        """
        values = np.asarray(values, dtype=np.float64)
        if lane is not None:
            if values.ndim != 1:
                values = values.ravel()
            if not 0 <= lane < self.batch:
                raise ExecutionError(f"lane {lane} out of range 0..{self.batch - 1}")
            for number, page_offset, start, stop in self._spans(addr, values.size):
                page = self._lane_page(number)
                page[lane, page_offset : page_offset + (stop - start)] = values[start:stop]
            return
        if values.ndim == 1:
            for number, page_offset, start, stop in self._spans(addr, values.size):
                width = stop - start
                laned = self._laned.get(number)
                if laned is not None:
                    laned[:, page_offset : page_offset + width] = values[start:stop]
                else:
                    page = self._shared.get(number)
                    if page is None:
                        page = self._shared[number] = np.zeros(
                            self.page_words, dtype=np.float64
                        )
                    page[page_offset : page_offset + width] = values[start:stop]
            return
        if values.shape[0] != self.batch:
            raise ExecutionError(
                f"batched write of {values.shape[0]} lanes into a "
                f"{self.batch}-lane DRAM"
            )
        length = values.shape[1]
        for number, page_offset, start, stop in self._spans(addr, length):
            page = self._lane_page(number)
            page[:, page_offset : page_offset + (stop - start)] = values[:, start:stop]

    # -- reads ---------------------------------------------------------------

    def _touched_all_shared(self, addr: int, length: int) -> bool:
        return all(
            number not in self._laned
            for number, _po, _s, _e in self._spans(addr, length)
        )

    def read_shared(self, addr: int, length: int) -> np.ndarray:
        """``(length,)`` when every touched page is shared across lanes,
        else the full ``(batch, length)`` stack."""
        if self._touched_all_shared(addr, length):
            out = np.zeros(length, dtype=np.float64)
            for number, page_offset, start, stop in self._spans(addr, length):
                page = self._shared.get(number)
                if page is not None:
                    out[start:stop] = page[page_offset : page_offset + (stop - start)]
            return out
        return self.read(addr, length)

    def read(self, addr: int, length: int) -> np.ndarray:
        """The ``(batch, length)`` stack at ``addr`` (shared pages are
        broadcast; unwritten words read as zero)."""
        out = np.zeros((self.batch, length), dtype=np.float64)
        for number, page_offset, start, stop in self._spans(addr, length):
            width = stop - start
            laned = self._laned.get(number)
            if laned is not None:
                out[:, start:stop] = laned[:, page_offset : page_offset + width]
                continue
            shared = self._shared.get(number)
            if shared is not None:
                out[:, start:stop] = shared[page_offset : page_offset + width]
        return out

    def lane_read(self, lane: int, addr: int, length: int) -> np.ndarray:
        """One lane's ``(length,)`` view of ``addr`` (copy)."""
        if not 0 <= lane < self.batch:
            raise ExecutionError(f"lane {lane} out of range 0..{self.batch - 1}")
        out = np.zeros(length, dtype=np.float64)
        for number, page_offset, start, stop in self._spans(addr, length):
            width = stop - start
            laned = self._laned.get(number)
            if laned is not None:
                out[start:stop] = laned[lane, page_offset : page_offset + width]
                continue
            shared = self._shared.get(number)
            if shared is not None:
                out[start:stop] = shared[page_offset : page_offset + width]
        return out

    @property
    def resident_bytes(self) -> int:
        """Actual storage held (the sharing win is visible here)."""
        shared = len(self._shared) * self.page_words * 8
        laned = len(self._laned) * self.page_words * self.batch * 8
        return shared + laned


class LaneView:
    """A per-lane facade over a batched simulator.

    Exposes the subset of the scalar simulator surface that preload
    callables use (``.dram.write/.read`` and ``.load_matrix``), mapping
    every access to one lane — existing ``preload(sim, ...)`` functions
    work unchanged, one lane at a time.
    """

    class _LaneDRAM:
        def __init__(self, dram: BatchedDRAM, lane: int):
            self._dram = dram
            self._lane = lane

        def write(self, addr: int, values: np.ndarray) -> None:
            self._dram.write(addr, np.asarray(values, dtype=np.float64).ravel(),
                             lane=self._lane)

        def read(self, addr: int, length: int) -> np.ndarray:
            return self._dram.lane_read(self._lane, addr, length)

    def __init__(self, sim: "BatchedFunctionalSimulator", lane: int):
        self._sim = sim
        self.lane = lane
        self.dram = self._LaneDRAM(sim.dram, lane)

    def load_matrix(self, register: int, matrix: np.ndarray) -> None:
        self._sim.load_matrix(register, matrix, lane=self.lane)


class SharedView:
    """Broadcast facade: writes land identically in every lane (stored
    once).  Hand this to weight preloads of identical deployments."""

    class _SharedDRAM:
        def __init__(self, dram: BatchedDRAM):
            self._dram = dram

        def write(self, addr: int, values: np.ndarray) -> None:
            self._dram.write(addr, np.asarray(values, dtype=np.float64).ravel())

        def read(self, addr: int, length: int) -> np.ndarray:
            return self._dram.read_shared(addr, length)

    def __init__(self, sim: "BatchedFunctionalSimulator"):
        self._sim = sim
        self.dram = self._SharedDRAM(sim.dram)

    def load_matrix(self, register: int, matrix: np.ndarray) -> None:
        self._sim.load_matrix(register, matrix)


class BatchedFunctionalSimulator:
    """Executes one program over ``batch`` lanes in lockstep.

    Mirrors :class:`FunctionalSimulator` exactly, with every vector
    register a ``(batch, length)`` array.  Matrix registers stay shared
    ``(rows, cols)`` arrays while their DRAM source is lane-identical
    (the common case), unlocking the guarded-dgemm ``MV_MUL`` path; a
    lane-divergent matrix region degrades that register to ``(batch,
    rows, cols)`` with per-lane dgemv — bit-identical either way.
    """

    def __init__(
        self,
        program: Program,
        batch: int,
        bfp_format: BFPFormat = DEFAULT_FORMAT,
        fabric: ScaleOutFabric | None = None,
        replica_index: int = 0,
        name: str = "",
    ):
        if batch < 1:
            raise ExecutionError("batched simulation needs a positive batch")
        program.validate(allow_sync=fabric is not None)
        self.program = program
        self.batch = batch
        self.fmt = bfp_format
        self.fabric = fabric
        self.replica_index = replica_index
        self.name = name or f"{program.name}[x{batch}]"
        self.dram = BatchedDRAM(batch)
        self.vrf: dict[int, np.ndarray] = {}
        #: register -> (rows, cols) shared or (batch, rows, cols) per lane.
        self.mrf: dict[int, np.ndarray] = {}
        #: register -> per-row sum of |matrix| (shared matrices only) —
        #: one factor of the MV_MUL rounding-boundary guard.
        self._row_abs: dict[int, np.ndarray] = {}
        self.pc = 0
        self.loop_stack: list[list] = []
        self.halted = False
        self.stats = SimStats()
        #: Output elements the boundary guard sent to the exact scalar
        #: path (observability: expected to stay ~0).
        self.guard_recomputed = 0

    # -- state access --------------------------------------------------------

    def lane(self, index: int) -> LaneView:
        return LaneView(self, index)

    def shared(self) -> SharedView:
        return SharedView(self)

    def vector(self, register: int) -> np.ndarray:
        """The ``(batch, length)`` stack of one vector register."""
        try:
            return self.vrf[register]
        except KeyError:
            raise ExecutionError(
                f"{self.name}: read of uninitialised vector register v{register}"
            ) from None

    def lane_vector(self, lane: int, register: int) -> np.ndarray:
        return self.vector(register)[lane]

    def load_matrix(self, register: int, matrix: np.ndarray,
                    lane: int | None = None) -> None:
        """Host-side direct matrix load (bypasses DRAM; tests/tools)."""
        quantised = bfp_quantize(np.asarray(matrix, dtype=np.float64), self.fmt)
        if lane is None:
            self.mrf[register] = quantised
            self._row_abs[register] = np.abs(quantised).sum(axis=1)
            return
        current = self.mrf.get(register)
        if current is None or current.ndim == 2:
            stack = np.zeros((self.batch, *quantised.shape), dtype=np.float64)
            if current is not None and current.shape == quantised.shape:
                stack[:] = current
            self.mrf[register] = stack
            self._row_abs.pop(register, None)
        self.mrf[register][lane] = quantised

    # -- execution -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.halted or self.pc >= len(self.program.instructions)

    def _iteration_index(self) -> int:
        return self.loop_stack[-1][2] if self.loop_stack else 0

    def _effective_addr(self, inst: Instruction) -> int:
        stride = int(inst.imm) if inst.op in (Op.V_RD, Op.V_WR) and not inst.is_sync else 0
        return inst.addr + stride * self._iteration_index()

    def step(self) -> str:
        """One batched instruction; ``"ok"``/``"blocked"``/``"halted"``."""
        if self.finished:
            return "halted"
        inst = self.program.instructions[self.pc]
        op = inst.op

        if op is Op.LOOP:
            self.loop_stack.append([self.pc + 1, int(inst.imm), 0])
            self.pc += 1
            return "ok"
        if op is Op.ENDLOOP:
            if not self.loop_stack:
                raise ExecutionError(f"{self.name}: ENDLOOP with empty loop stack")
            frame = self.loop_stack[-1]
            frame[1] -= 1
            frame[2] += 1
            if frame[1] > 0:
                self.pc = frame[0]
            else:
                self.loop_stack.pop()
                self.pc += 1
            return "ok"
        if op is Op.HALT:
            self.halted = True
            return "halted"
        if op is Op.NOP:
            self.pc += 1
            self.stats.instructions += 1
            return "ok"

        status = self._execute(inst)
        if status == "blocked":
            self.stats.blocked_polls += 1
            return "blocked"
        self.pc += 1
        self.stats.instructions += 1
        return "ok"

    def run(self, max_steps: int = 100_000_000) -> SimStats:
        for _ in range(max_steps):
            status = self.step()
            if status == "halted":
                return self.stats
            if status == "blocked":
                raise ExecutionError(
                    f"{self.name}: blocked on sync read at pc={self.pc} "
                    "(run replicas under run_scaleout_batched)"
                )
        raise ExecutionError(f"{self.name}: exceeded {max_steps} steps")

    def run_until_blocked(self, max_steps: int = 100_000_000) -> str:
        for _ in range(max_steps):
            status = self.step()
            if status != "ok":
                return status
        raise ExecutionError(f"{self.name}: exceeded {max_steps} steps")

    # -- MV_MUL: guarded dgemm ----------------------------------------------

    def _matvec_shared(self, matrix: np.ndarray, row_abs: np.ndarray,
                       vecs: np.ndarray) -> np.ndarray:
        """``(batch, rows)`` batched matrix-vector product, bit-identical
        (post float16 rounding) to per-lane ``bfp_matvec``.

        One dgemm computes all lanes; the rounding-boundary guard then
        recomputes — with the *exact* scalar dgemv — every element whose
        error interval could round differently in float16.
        """
        quantised = bfp_quantize(vecs, self.fmt)
        out = quantised @ matrix.T
        # Per-element bound on |any-order dot - this dot|:
        #   E = 2 * gamma(cols) * max|x_lane| * sum_k |A[row, k]|
        bound = _gamma(matrix.shape[1]) * np.abs(quantised).max(
            axis=1, keepdims=True
        ) * row_abs[None, :]
        lo = (out - bound).astype(np.float16)
        hi = (out + bound).astype(np.float16)
        ambiguous = lo != hi
        # NaN/inf compare unequal to themselves -> recomputed exactly.
        risky = np.nonzero(ambiguous.any(axis=1))[0]
        for lane in risky:
            exact = matrix @ quantised[lane]
            mask = ambiguous[lane]
            out[lane, mask] = exact[mask]
            self.guard_recomputed += int(mask.sum())
            PROFILER.incr("batched.guard_recomputes", int(mask.sum()))
        return out

    # -- per-opcode semantics ------------------------------------------------

    def _execute(self, inst: Instruction) -> str:
        op = inst.op
        if op is Op.V_RD:
            return self._exec_v_rd(inst)
        if op is Op.V_WR:
            return self._exec_v_wr(inst)
        if op is Op.M_RD:
            rows, cols = inst.length, int(inst.imm)
            if rows <= 0 or cols <= 0:
                raise ExecutionError(
                    f"{self.name}: M_RD needs positive rows ({rows}) and "
                    f"cols ({cols})"
                )
            flat = self.dram.read_shared(inst.addr, rows * cols)
            if flat.ndim == 1:
                matrix = bfp_quantize(flat.reshape(rows, cols), self.fmt)
                self.mrf[inst.dst] = matrix
                self._row_abs[inst.dst] = np.abs(matrix).sum(axis=1)
            else:
                self.mrf[inst.dst] = bfp_quantize(
                    flat.reshape(self.batch, rows, cols), self.fmt
                )
                self._row_abs.pop(inst.dst, None)
            self.stats.dram_reads += 1
            return "ok"
        if op is Op.MV_MUL:
            matrix = self.mrf.get(inst.ma)
            if matrix is None:
                raise ExecutionError(
                    f"{self.name}: MV_MUL from unloaded matrix m{inst.ma}"
                )
            vecs = self.vector(inst.a)
            if matrix.shape[-1] != vecs.shape[-1]:
                raise ExecutionError(
                    f"{self.name}: MV_MUL dims {matrix.shape} @ {vecs.shape[-1]}"
                )
            if matrix.ndim == 2:
                result = self._matvec_shared(
                    matrix, self._row_abs[inst.ma], vecs
                )
            else:
                # Lane-divergent matrices: the exact scalar path per lane.
                result = np.stack([
                    bfp_matvec(matrix[lane], vecs[lane], self.fmt)
                    for lane in range(self.batch)
                ])
            self.vrf[inst.dst] = to_float16(result)
            self.stats.mv_muls += 1
            return "ok"

        self.stats.mfu_ops += 1
        if op is Op.VV_ADD:
            result = self.vector(inst.a) + self.vector(inst.b)
        elif op is Op.VV_SUB:
            result = self.vector(inst.a) - self.vector(inst.b)
        elif op is Op.VV_MUL:
            result = self.vector(inst.a) * self.vector(inst.b)
        elif op is Op.V_SIGM:
            result = _sigmoid(self.vector(inst.a))
        elif op is Op.V_TANH:
            result = np.tanh(self.vector(inst.a))
        elif op is Op.V_RELU:
            result = np.maximum(self.vector(inst.a), 0.0)
        elif op is Op.V_COPY:
            result = self.vector(inst.a).copy()
        elif op is Op.V_FILL:
            result = np.full((self.batch, inst.length), float(inst.imm))
        elif op is Op.V_SLICE:
            offset = int(inst.imm)
            source = self.vector(inst.a)
            if offset + inst.length > source.shape[-1]:
                raise ExecutionError(f"{self.name}: V_SLICE out of range")
            result = source[:, offset : offset + inst.length].copy()
        elif op is Op.V_CONCAT:
            result = np.concatenate(
                [self.vector(inst.a), self.vector(inst.b)], axis=-1
            )
        else:  # pragma: no cover - exhaustive over Op
            raise ExecutionError(f"{self.name}: unimplemented opcode {op}")
        self.vrf[inst.dst] = to_float16(result)
        return "ok"

    def _exec_v_rd(self, inst: Instruction) -> str:
        if inst.is_sync:
            if self.fabric is None:
                raise ExecutionError(
                    f"{self.name}: sync read without a scale-out fabric"
                )
            combined = self.fabric.try_recv(self.replica_index, inst.addr, inst.length)
            if combined is None:
                return "blocked"
            self.vrf[inst.dst] = combined
            self.stats.recvs += 1
            return "ok"
        self.vrf[inst.dst] = self.dram.read(self._effective_addr(inst), inst.length)
        self.stats.dram_reads += 1
        return "ok"

    def _exec_v_wr(self, inst: Instruction) -> str:
        values = self.vector(inst.a)
        if inst.is_sync:
            if self.fabric is None:
                raise ExecutionError(
                    f"{self.name}: sync write without a scale-out fabric"
                )
            self.fabric.send(self.replica_index, inst.addr, values[:, : inst.length])
            self.stats.sends += 1
            return "ok"
        self.dram.write(self._effective_addr(inst), values[:, : inst.length])
        self.stats.dram_writes += 1
        return "ok"


class ScalarLanes:
    """Scalar-simulator fallback behind the batched read API.

    Runs each lane through its own :class:`FunctionalSimulator` (the exact
    scalar path) and exposes the ``(batch, ...)``-shaped accessors that
    callers of :func:`run_batched` consume — singleton batches and forced
    fallbacks go through here.
    """

    fallback = True

    def __init__(self, sims: list):
        self.sims = sims
        self.batch = len(sims)

    def vector(self, register: int) -> np.ndarray:
        return np.stack([sim.vector(register) for sim in self.sims])

    def lane_vector(self, lane: int, register: int) -> np.ndarray:
        return self.sims[lane].vector(register)

    def dram_read(self, addr: int, length: int) -> np.ndarray:
        return np.stack([sim.dram.read(addr, length) for sim in self.sims])

    def lane_dram_read(self, lane: int, addr: int, length: int) -> np.ndarray:
        return self.sims[lane].dram.read(addr, length)

    @property
    def stats(self) -> SimStats:
        merged = SimStats()
        for sim in self.sims:
            merged.instructions += sim.stats.instructions
            merged.mv_muls += sim.stats.mv_muls
            merged.mfu_ops += sim.stats.mfu_ops
            merged.dram_reads += sim.stats.dram_reads
            merged.dram_writes += sim.stats.dram_writes
        return merged


class _BatchedLanes:
    """Uniform read API over a finished :class:`BatchedFunctionalSimulator`."""

    fallback = False

    def __init__(self, sim: BatchedFunctionalSimulator):
        self.sim = sim
        self.batch = sim.batch

    def vector(self, register: int) -> np.ndarray:
        return self.sim.vector(register)

    def lane_vector(self, lane: int, register: int) -> np.ndarray:
        return self.sim.vector(register)[lane]

    def dram_read(self, addr: int, length: int) -> np.ndarray:
        return self.sim.dram.read(addr, length)

    def lane_dram_read(self, lane: int, addr: int, length: int) -> np.ndarray:
        return self.sim.dram.lane_read(lane, addr, length)

    @property
    def stats(self) -> SimStats:
        return self.sim.stats


def run_batched(
    program: Program,
    lane_preloads: list,
    shared_preload=None,
    bfp_format: BFPFormat = DEFAULT_FORMAT,
    force_scalar: bool = False,
    max_steps: int = 100_000_000,
):
    """Run ``len(lane_preloads)`` requests of one program to completion.

    ``shared_preload(view)`` writes lane-identical state (weights) once;
    ``lane_preloads[i](view)`` writes lane ``i``'s inputs.  Both receive a
    view exposing ``.dram.write/.read`` and ``.load_matrix``.  Returns an
    object with ``vector``/``lane_vector``/``dram_read``/``lane_dram_read``
    and a ``fallback`` flag.

    Falls back to the scalar simulator for singleton batches and when
    ``force_scalar`` is set — the fallback executes the identical scalar
    code path, so outputs are trivially bit-identical.
    """
    batch = len(lane_preloads)
    if batch < 1:
        raise ExecutionError("run_batched needs at least one lane")
    if batch == 1 or force_scalar:
        PROFILER.incr("batched.scalar_fallbacks")
        sims = []
        for preload in lane_preloads:
            sim = FunctionalSimulator(program, bfp_format=bfp_format)
            if shared_preload is not None:
                shared_preload(sim)
            preload(sim)
            sim.run(max_steps)
            sims.append(sim)
        return ScalarLanes(sims)
    sim = BatchedFunctionalSimulator(program, batch, bfp_format=bfp_format)
    if shared_preload is not None:
        shared_preload(sim.shared())
    for lane, preload in enumerate(lane_preloads):
        preload(sim.lane(lane))
    sim.run(max_steps)
    PROFILER.incr("batched.runs")
    PROFILER.incr("batched.lanes", batch)
    return _BatchedLanes(sim)


def run_scaleout_batched(
    programs: list,
    lane_preloads: list,
    shared_preload=None,
    bfp_format: BFPFormat = DEFAULT_FORMAT,
):
    """Co-simulate ``len(programs)`` scale-out replicas, each
    ``len(lane_preloads)`` lanes wide, over one fabric.

    ``shared_preload(view, replica_index)`` and
    ``lane_preloads[lane](view, replica_index)`` populate each replica's
    DRAM (every FPGA holds its own image).  Lanes run in lockstep: the
    fabric exchanges ``(batch, length)`` slices, so the combined hidden
    state arrives per lane exactly as in the scalar co-simulation.
    Returns ``(lanes_per_replica, fabric)``.
    """
    batch = len(lane_preloads)
    if batch < 1:
        raise ExecutionError("run_scaleout_batched needs at least one lane")
    fabric = ScaleOutFabric(len(programs))
    sims = [
        BatchedFunctionalSimulator(
            program, batch, bfp_format=bfp_format, fabric=fabric,
            replica_index=index,
        )
        for index, program in enumerate(programs)
    ]
    for index, sim in enumerate(sims):
        if shared_preload is not None:
            shared_preload(sim.shared(), index)
        for lane, preload in enumerate(lane_preloads):
            preload(sim.lane(lane), index)

    while not all(sim.finished for sim in sims):
        progressed = False
        for sim in sims:
            if sim.finished:
                continue
            before = sim.stats.instructions
            status = sim.run_until_blocked()
            if sim.stats.instructions > before or status == "halted":
                progressed = True
        if not progressed:
            stuck = [sim.name for sim in sims if not sim.finished]
            raise ExecutionError(f"scale-out deadlock; blocked replicas: {stuck}")
    PROFILER.incr("batched.scaleout_runs")
    PROFILER.incr("batched.lanes", batch * len(programs))
    return [_BatchedLanes(sim) for sim in sims], fabric
