"""Cycle-level latency model for the accelerator.

Models an in-order machine: the latency of a program is the sum over dynamic
instructions of per-instruction cycles (dependent chains on a batch-1 RNN
leave essentially no overlap to exploit, which Table 4's low absolute
efficiencies confirm).

Per-instruction cost:

* ``MV_MUL`` — ``ceil(rows_per_tile / native_rows) * ceil(cols /
  native_lanes)`` streaming cycles plus the MVU pipeline depth; when the
  model's weights exceed on-chip capacity the streaming portion inflates by
  ``1 + stream_factor * (1 - resident_fraction)``.
* MFU ops — ``ceil(len / total MFU lanes)`` plus the MFU pipeline depth.
* DRAM vector ops — transfer at ``dram_bytes_per_cycle`` plus fixed latency.
* Every instruction pays a decode cost; every inference task pays a fixed
  host invocation overhead (PCIe doorbell + descriptor).

Virtualization (the "this work" rows of Table 4): deploying through the HS
abstraction adds, per instruction, ``interface_stages x crossings`` cycles
of elastic-channel latency, taxes streaming throughput by
``elastic_throughput``, and adds a small controller cost to the invocation
path.  The pattern-aware partitioner keeps each SIMD lane's pipeline inside
one virtual block, so ``crossings`` stays at 2 (enter/leave the lane); a
naive partitioner that ignores patterns cuts lane pipelines across blocks
(+3 crossings and a deeper throughput tax) — the ablation benchmark
quantifies the difference.

Calibration: the pipeline depths (``mvu_depth=120``, ``mfu_depth=40``,
``dram_latency_cycles=55``) and ``invocation_overhead_s=10us`` were fitted
once against Table 4's baseline column (see EXPERIMENTS.md for
paper-vs-model deltas); everything else follows from the architecture.

Fit rule: a model whose resident fraction falls below ``min_resident``
cannot be deployed on that instance (Table 4 reports exactly this for LSTM
h=1536 on the KU115) — splitting across two FPGAs halves each replica's
weights and can restore feasibility (why Fig. 11's GRU h=2560 runs on two
devices).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ReproError
from ..isa.instructions import Instruction, Op
from ..isa.program import Program
from ..units import us
from .config import AcceleratorConfig


class ModelDoesNotFitError(ReproError):
    """The model's weights exceed what this instance can serve."""


@dataclass(frozen=True)
class TimingParameters:
    """Calibration constants of the latency model (see module docstring)."""

    decode_cycles: int = 2
    mvu_depth: int = 120
    mfu_depth: int = 40
    dram_latency_cycles: int = 55
    dram_bytes_per_cycle: float = 64.0
    invocation_overhead_s: float = us(10.0)
    stream_factor: float = 2.0
    min_resident: float = 0.40
    # -- virtualization --
    interface_stages: int = 2
    base_crossings: int = 2
    elastic_throughput: float = 0.95
    controller_overhead_s: float = us(0.3)
    # -- shared-DRAM contention (Section 4.4) --
    #: Bytes fetched from DRAM per instruction when the program does NOT
    #: fit the on-chip instruction buffer (one encoded instruction word).
    instruction_fetch_bytes: float = 16.0
    #: Fraction of the DRAM access latency each spilled instruction fetch
    #: exposes (a simple prefetcher hides the rest).
    fetch_stall_fraction: float = 0.25
    #: Extra DRAM service time per co-resident accelerator contending for
    #: the shared interface (fractional slowdown per neighbour).
    dram_share_penalty: float = 0.6
    # -- naive (pattern-oblivious) partitioning ablation --
    naive_extra_crossings: int = 3
    naive_elastic_throughput: float = 0.88


DEFAULT_TIMING = TimingParameters()

#: Tags excluded from latency by default: weight preloading happens once at
#: deployment (persistent NN serving), not per inference request.
PRELOAD_TAGS = frozenset({"load:w", "load:u", "load:b"})


@dataclass(frozen=True)
class VirtualizationContext:
    """How a deployment is virtualized (absent => bare-metal baseline)."""

    virtual_blocks: int
    pattern_aware: bool = True

    def crossings(self, params: TimingParameters) -> int:
        extra = 0 if self.pattern_aware else params.naive_extra_crossings
        return params.base_crossings + extra

    def throughput(self, params: TimingParameters) -> float:
        return (
            params.elastic_throughput
            if self.pattern_aware
            else params.naive_elastic_throughput
        )


@dataclass
class LatencyReport:
    """Latency breakdown for one program on one instance."""

    program: str
    instance: str
    cycles: float
    seconds: float
    compute_cycles: float
    interface_cycles: float
    invocation_seconds: float
    dynamic_instructions: int
    resident_fraction: float


class CycleModel:
    """Latency model bound to one accelerator instance."""

    def __init__(
        self,
        config: AcceleratorConfig,
        params: TimingParameters = DEFAULT_TIMING,
    ):
        self.config = config
        self.params = params

    # -- model fit --------------------------------------------------------------

    def resident_fraction(self, program: Program) -> float:
        """On-chip weight residency for this program's model.

        Static: sums ``rows * cols`` over the ``M_RD`` instructions (each is
        one weight matrix slice this replica loads).
        """
        weight_words = sum(
            inst.length * max(1, int(inst.imm))
            for inst in program.instructions
            if inst.op is Op.M_RD
        )
        return self.config.weights_resident_fraction(weight_words)

    def check_fit(self, program: Program) -> float:
        """Raise :class:`ModelDoesNotFitError` when residency is below the
        deployable threshold; returns the resident fraction otherwise."""
        fraction = self.resident_fraction(program)
        if fraction < self.params.min_resident:
            raise ModelDoesNotFitError(
                f"{program.name}: resident fraction {fraction:.2f} below "
                f"{self.params.min_resident} on {self.config.name}"
            )
        return fraction

    def fits(self, program: Program) -> bool:
        """True when the program's model is deployable on this instance."""
        return self.resident_fraction(program) >= self.params.min_resident

    # -- per-instruction cost ------------------------------------------------------

    def instruction_cycles(
        self, inst: Instruction, resident_fraction: float = 1.0
    ) -> tuple:
        """``(streaming_cycles, fixed_cycles)`` for one instruction.

        Streaming cycles scale with data volume (and are taxed by elastic
        interfaces); fixed cycles are pipeline depths and decode.
        """
        params = self.params
        cfg = self.config
        op = inst.op
        if op in (Op.LOOP, Op.ENDLOOP, Op.NOP, Op.HALT):
            return 0.0, float(params.decode_cycles)
        if op is Op.MV_MUL:
            # Pool-of-tiles model: the matrix is tiled into native_rows x
            # native_lanes blocks; every cycle each tile engine consumes one
            # block, so the whole MVU drains ceil(blocks / tiles) per cycle.
            rows = max(1, inst.length)
            cols = max(1, int(inst.imm))
            row_blocks = math.ceil(rows / cfg.native_rows)
            col_blocks = math.ceil(cols / cfg.native_lanes)
            streaming = math.ceil(row_blocks * col_blocks / cfg.tiles)
            if resident_fraction < 1.0:
                streaming *= 1.0 + params.stream_factor * (1.0 - resident_fraction)
            return float(streaming), float(params.mvu_depth + params.decode_cycles)
        if op in (Op.V_RD, Op.V_WR, Op.M_RD):
            if inst.is_sync:
                # Network time is accounted by the overlap model, not here.
                return 0.0, float(params.decode_cycles)
            words = max(1, inst.length)
            if op is Op.M_RD:
                words *= max(1, int(inst.imm))  # rows x cols
            data_bytes = words * 2.0  # float16 words
            streaming = data_bytes / params.dram_bytes_per_cycle
            return streaming, float(
                params.dram_latency_cycles + params.decode_cycles
            )
        # MFU operations
        lanes = max(1, cfg.mfu_total_lanes)
        streaming = math.ceil(max(1, inst.length) / lanes)
        return float(streaming), float(params.mfu_depth + params.decode_cycles)

    # -- whole-program latency --------------------------------------------------------

    def latency(
        self,
        program: Program,
        virtualization: VirtualizationContext | None = None,
        exclude_tags=PRELOAD_TAGS,
        include_invocation: bool = True,
        sharing_neighbours: int = 0,
        instruction_buffer: bool = True,
    ) -> LatencyReport:
        """Latency of ``program`` on this instance.

        ``virtualization=None`` is the bare-metal baseline;
        a :class:`VirtualizationContext` adds the HS-abstraction overheads.

        ``sharing_neighbours`` is how many co-resident accelerators contend
        for the shared DRAM interface, and ``instruction_buffer`` whether
        the program's machine code stays on chip.  With the buffer (the
        paper's design, Section 4.4) only explicit DRAM traffic contends —
        and LSTM/GRU inference has almost none per step, which is exactly
        why the paper measures sharing-environment latency "comparable to
        that in a non-sharing environment".  Without the buffer, every
        instruction fetch crosses the contended interface.
        """
        params = self.params
        resident = self.check_fit(program)
        throughput = 1.0
        crossing_cycles = 0.0
        if virtualization is not None:
            throughput = virtualization.throughput(params)
            crossing_cycles = float(
                params.interface_stages * virtualization.crossings(params)
            )
        contention = 1.0 + params.dram_share_penalty * max(0, sharing_neighbours)
        fetch_cycles = 0.0
        if not instruction_buffer:
            # Spilled code: every instruction streams its encoding from
            # DRAM and exposes part of the access latency (a prefetcher
            # hides the rest — until contention stretches service times).
            fetch_cycles = (
                params.instruction_fetch_bytes / params.dram_bytes_per_cycle
                + params.fetch_stall_fraction * params.dram_latency_cycles
            )

        compute = 0.0
        interface = 0.0
        dynamic = 0
        multiplier = 1
        stack: list[int] = []
        for inst in program.instructions:
            if inst.op is Op.LOOP:
                stack.append(multiplier)
                multiplier *= max(1, int(inst.imm))
                continue
            if inst.op is Op.ENDLOOP:
                multiplier = stack.pop()
                continue
            if inst.tag in exclude_tags:
                continue
            streaming, fixed = self.instruction_cycles(inst, resident)
            if inst.op.unit == "dram" and not inst.is_sync:
                streaming *= contention
            streaming += fetch_cycles * contention
            compute += multiplier * (streaming + fixed)
            interface += multiplier * (
                streaming * (1.0 / throughput - 1.0) + crossing_cycles
            )
            dynamic += multiplier

        invocation = 0.0
        if include_invocation:
            invocation = params.invocation_overhead_s
            if virtualization is not None:
                invocation += params.controller_overhead_s

        total_cycles = compute + interface
        seconds = total_cycles / self.config.frequency_hz + invocation
        return LatencyReport(
            program=program.name,
            instance=self.config.name,
            cycles=total_cycles,
            seconds=seconds,
            compute_cycles=compute,
            interface_cycles=interface,
            invocation_seconds=invocation,
            dynamic_instructions=dynamic,
            resident_fraction=resident,
        )

    def overhead_vs_baseline(
        self, program: Program, virtualization: VirtualizationContext
    ) -> float:
        """Fractional latency overhead of the virtualized deployment —
        the "Overhead" column of Table 4."""
        base = self.latency(program)
        virt = self.latency(program, virtualization=virtualization)
        return virt.seconds / base.seconds - 1.0

    def program_fits_buffer(self, program: Program) -> bool:
        """Does the encoded program fit the on-chip instruction buffer?

        For the evaluated LSTM/GRU benchmarks "the entire machine codes can
        be stored in this buffer" (Section 4.4) — the premise of the
        performance-isolation result.
        """
        from ..isa.encoder import INSTRUCTION_BYTES

        code_bytes = len(program.instructions) * INSTRUCTION_BYTES
        return code_bytes <= self.config.instruction_buffer_bytes
