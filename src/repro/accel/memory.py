"""The parameterised memory module (paper Section 3).

The accelerator design includes "a parameterized memory module so that it
can leverage the unique hardware resources (e.g., URAM) when being deployed
onto heterogeneous FPGAs.  The parameter of this module will be configured
when mapping it onto the HS abstraction of a specific type of FPGA."

:func:`build_weight_memory` produces the RTL module for one tile's weight
store under a given :class:`~repro.accel.config.MemoryPlan`.  The module is
*basic* (instantiates only memory primitives) and declares its aggregated
resource cost so estimation stays exact without instantiating hundreds of
identical macros per tile.
"""

from __future__ import annotations

from ..resources import ResourceVector
from ..rtl.builder import ModuleBuilder
from ..rtl.ir import Module
from .config import MemoryPlan, BRAM36_BITS, URAM288_BITS, UNIFIED_WORDS, WORD_BITS


def memory_resources(plan: MemoryPlan) -> ResourceVector:
    """Physical resource cost of one tile's weight memory.

    Includes a small LUT/FF cost for the unified read interface mux, which
    grows with the number of banks.
    """
    banks = plan.bram_blocks_per_tile + plan.uram_blocks_per_tile
    return ResourceVector(
        luts=24.0 * banks,
        ffs=16.0 * banks,
        bram_bits=float(plan.bram_blocks_per_tile * BRAM36_BITS),
        uram_bits=float(plan.uram_blocks_per_tile * URAM288_BITS),
    )


def build_weight_memory(plan: MemoryPlan, name: str = "weight_mem") -> Module:
    """Build the weight-memory module for one tile.

    The module exposes the unified 512-word, 72-bit interface of Section 3
    regardless of the backing primitive mix.  Representative primitive
    instances are chained so the structure is visible to the tools; the
    declared ``resources`` attribute carries the exact aggregate cost.
    """
    builder = ModuleBuilder(name)
    builder.inputs(
        "clk",
        ("we", 1),
        ("addr_w", 9),
        ("addr_r", 9),
        ("din", WORD_BITS),
    )
    builder.outputs(("dout", WORD_BITS))
    builder.attribute("resources", memory_resources(plan))
    builder.attribute(
        "memory_plan",
        f"bram={plan.bram_blocks_per_tile},uram={plan.uram_blocks_per_tile}",
    )

    # Representative bank chain: one exemplar of each primitive kind used,
    # wired through the output mux path so intra-block analysis sees a
    # single connected component (not spurious data-parallel lanes).
    previous_out = None
    bank_index = 0
    if plan.bram_blocks_per_tile > 0:
        builder.net("bram_out", WORD_BITS)
        builder.instance(
            f"bank{bank_index}",
            "BRAM36",
            clk="clk",
            we="we",
            addr_w="addr_w",
            addr_r="addr_r",
            din="din",
            dout="bram_out",
        )
        previous_out = "bram_out"
        bank_index += 1
    if plan.uram_blocks_per_tile > 0:
        builder.net("uram_addr_w", 12)
        builder.net("uram_addr_r", 12)
        builder.net("uram_out", WORD_BITS)
        builder.instance(
            f"bank{bank_index}",
            "URAM288",
            clk="clk",
            we="we",
            addr_w="uram_addr_w",
            addr_r="uram_addr_r",
            din=previous_out or "din",
            dout="uram_out",
        )
        previous_out = "uram_out"
    if previous_out is None:
        # Degenerate plan with no banks: pass-through register file.
        builder.net("reg_q", WORD_BITS)
        previous_out = "reg_q"
    builder.assign("dout", previous_out)
    return builder.build()


def usable_words(plan: MemoryPlan) -> int:
    """Words addressable through the unified interface for one tile."""
    return plan.usable_bits_per_tile // WORD_BITS


def utilisation_of_uram(plan: MemoryPlan) -> float:
    """Fraction of physical URAM bits the unified interface can use —
    ``UNIFIED_WORDS / 4096`` when URAM is present (the paper's observed
    under-utilisation)."""
    if plan.uram_blocks_per_tile == 0:
        return float("nan")
    return UNIFIED_WORDS * WORD_BITS / URAM288_BITS
