"""Accelerator instance parameters.

The paper generates accelerator *instances* with different numbers of tile
engines "to account for the varying performance/cost demands" (Section 3)
and fits one instance to each FPGA type by adjusting the tile count
(Section 4.2, Table 2): 21 tiles on the XCVU37P (BW-V37), 13 tiles on the
XCKU115 (BW-K115).

Calibration notes (documented once here, used by the generator and timing
model):

* Each tile engine processes a ``native_rows x native_lanes`` block of
  matrix elements per cycle.  With the default 128x16 block, peak throughput
  is ``tiles * 128 * 16 * 2 FLOP/cycle``: 34.4 TFLOPS for 21 tiles at
  400 MHz and 16.0 TFLOPS for 13 tiles at 300 MHz — within 5% of the
  36 / 16.7 TFLOPS of Table 2 (the paper's figure also counts MFU FLOPs).
* Per-tile weight memory follows Table 2's utilisation: ~70 BRAM36 + 4
  URAM288 per tile on the VU37P, ~100 BRAM36 (no URAM) on the KU115.  The
  unified 512-word interface under-utilises URAM capacity exactly as the
  paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ReproError
from ..units import mhz

#: Bits stored per BRAM36 / URAM288 block.
BRAM36_BITS = 36 * 1024
URAM288_BITS = 288 * 1024

#: Words per block under the unified 512-word memory interface.  A URAM288
#: natively holds 4096 x 72b words but the unified interface only exposes
#: 512, wasting 7/8 of its capacity (paper Section 3).
UNIFIED_WORDS = 512
WORD_BITS = 72


@dataclass(frozen=True)
class MemoryPlan:
    """Per-tile weight-memory composition for one device mapping."""

    bram_blocks_per_tile: int
    uram_blocks_per_tile: int = 0

    @property
    def physical_bits_per_tile(self) -> int:
        """Physical memory consumed per tile (what utilisation reports)."""
        return (
            self.bram_blocks_per_tile * BRAM36_BITS
            + self.uram_blocks_per_tile * URAM288_BITS
        )

    @property
    def usable_bits_per_tile(self) -> int:
        """Bits addressable through the unified interface.

        BRAM blocks are fully usable; URAM blocks expose only
        ``UNIFIED_WORDS`` of their 4096 words.
        """
        return (
            self.bram_blocks_per_tile * BRAM36_BITS
            + self.uram_blocks_per_tile * UNIFIED_WORDS * WORD_BITS
        )


@dataclass(frozen=True)
class AcceleratorConfig:
    """One accelerator instance.

    Attributes:
        name: instance label (e.g. ``"BW-V37"``).
        tiles: number of SIMD compute lanes (MVM tile engines).
        native_rows / native_lanes: matrix block one tile consumes per cycle.
        mfu_lanes_per_tile: float16 MFU lanes attached to each tile's slice.
        memory: per-tile weight memory plan.
        weight_bits: BFP storage bits per weight (mantissa + amortised
            exponent share).
        vector_registers / matrix_registers / max_vector_length: ISA limits.
        instruction_buffer_bytes: on-chip instruction buffer size; programs
            larger than this spill to DRAM (Section 4.4's isolation argument
            relies on programs fitting).
        frequency_hz: achieved clock (device-dependent).
    """

    name: str
    tiles: int
    native_rows: int = 128
    native_lanes: int = 16
    mfu_lanes_per_tile: int = 4
    memory: MemoryPlan = MemoryPlan(bram_blocks_per_tile=70, uram_blocks_per_tile=4)
    weight_bits: int = 7
    vector_registers: int = 64
    matrix_registers: int = 64
    max_vector_length: int = 4096
    instruction_buffer_bytes: int = 32 * 1024
    frequency_hz: float = mhz(400)

    def __post_init__(self):
        if self.tiles < 1:
            raise ReproError(f"accelerator {self.name!r} needs at least one tile")
        if self.native_rows < 1 or self.native_lanes < 1:
            raise ReproError("native tile dimensions must be positive")

    # -- derived quantities -------------------------------------------------------

    @property
    def macs_per_cycle(self) -> int:
        """Multiply-accumulates per cycle across all tiles."""
        return self.tiles * self.native_rows * self.native_lanes

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s (2 FLOPs per MAC)."""
        return 2.0 * self.macs_per_cycle * self.frequency_hz

    @property
    def max_rows(self) -> int:
        """Largest output dimension processed in one pass (rows across
        tiles); larger MVMs iterate over row blocks."""
        return self.tiles * self.native_rows

    @property
    def mfu_total_lanes(self) -> int:
        """Aggregate float16 lanes across all MFU slices."""
        return self.tiles * self.mfu_lanes_per_tile

    @property
    def weight_capacity_bits(self) -> int:
        """Usable on-chip weight storage (unified interface)."""
        return self.tiles * self.memory.usable_bits_per_tile

    def weights_resident_fraction(self, weight_count: int) -> float:
        """Fraction of ``weight_count`` parameters held on chip.

        Below 1.0 the matrix-vector unit must stream weights from DRAM,
        which dominates latency for large models on memory-poor devices —
        the effect behind the larger KU115 latencies in Table 4.
        """
        need = weight_count * self.weight_bits
        if need <= 0:
            return 1.0
        return min(1.0, self.weight_capacity_bits / need)

    # -- instance derivation -----------------------------------------------------------

    def with_frequency(self, frequency_hz: float) -> "AcceleratorConfig":
        """Copy at a different achieved clock."""
        return replace(self, frequency_hz=frequency_hz)

    def with_tiles(self, tiles: int, name: str | None = None) -> "AcceleratorConfig":
        """Copy with a different tile count (scale up/down)."""
        return replace(self, tiles=tiles, name=name or f"{self.name}x{tiles}")


def scaled_config(base: AcceleratorConfig, factor: int) -> AcceleratorConfig:
    """The scale-down transformation of Section 2.3: keep the control path,
    divide the data-parallel units by ``factor``."""
    if factor < 1:
        raise ReproError("scale-down factor must be >= 1")
    tiles = max(1, base.tiles // factor)
    return base.with_tiles(tiles, name=f"{base.name}/sd{factor}")


#: The two baseline instances of Table 2.
BW_V37 = AcceleratorConfig(
    name="BW-V37",
    tiles=21,
    memory=MemoryPlan(bram_blocks_per_tile=70, uram_blocks_per_tile=4),
    frequency_hz=mhz(400),
)

BW_K115 = AcceleratorConfig(
    name="BW-K115",
    tiles=13,
    memory=MemoryPlan(bram_blocks_per_tile=100, uram_blocks_per_tile=0),
    frequency_hz=mhz(300),
)
