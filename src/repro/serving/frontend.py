"""The overload-robust serving edge (admission -> deadline -> retry -> start).

:class:`ServingFrontend` wraps a framework scheduler (:class:`~repro.
runtime.systems.ProposedSystem` or the restricted variant) and implements
the same :class:`~repro.cluster.simulator.Scheduler` protocol, so a
:class:`~repro.cluster.simulator.ClusterSimulator` drives it unchanged.
On top of the inner scheduler it layers the mechanisms that keep goodput
graceful when offered load exceeds capacity or boards fail:

* **Admission control** — per-model bounded queues plus an optional
  per-model token bucket; overflow is shed at arrival under a
  :class:`~repro.serving.policy.SheddingPolicy` (tail or head drop).
* **Deadlines** — every admitted request carries an absolute deadline;
  a request past its deadline is expired *at dequeue* (the simulator's
  ``should_drop`` hook) and never occupies a board.  Each admission also
  schedules a deadline wake via ``schedule_external`` so expiry is an
  exact DES event, not a poll artifact.
* **Retry budget** — genuine placement failures (the controller raised
  ``AllocationError``) consume a per-request budget with jittered
  exponential backoff; exhaustion abandons the request.  Waiting behind a
  busy deployment costs nothing — that is queueing, not failure.
* **Circuit breakers** — per-board failure/latency windows
  (:mod:`repro.serving.breaker`); an open breaker drains its board
  through the health machinery (``HEALTHY -> DEGRADED``, dropping it from
  the placement index), half-open probes re-admit it.
* **Brownout** — above a utilisation high watermark the frontend flips
  the controller to narrowest-plan-first dispatch and switches hot
  models' idle deployments to the narrowest catalog plan (a cross-width
  switch is a cold restart, mirroring the recovery manager's scale-down
  fallback), exiting at a low watermark with hysteresis.

Everything is opt-in: no behaviour of the wrapped system changes unless a
frontend is constructed around it, so the Fig. 12 golden path is
untouched.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field

from ..cluster.simulator import Task
from ..perf.profiling import PROFILER
from ..runtime.deployment import DeploymentState
from ..vital.virtual_block import BoardHealth
from .breaker import BreakerState, CircuitBreaker
from .policy import ServingParameters, SheddingPolicy, TokenBucket
from .request import Request, RequestOutcome, RequestRecord


@dataclass
class ServingStats:
    """Serving-edge counters for one frontend lifetime."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0
    expired: int = 0
    abandoned: int = 0
    breaker_rejections: int = 0
    started: int = 0
    completed: int = 0
    #: Completions that finished at or before their deadline.
    slo_hits: int = 0
    #: Genuine placement failures absorbed into backoff.
    placement_retries: int = 0
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    brownout_entries: int = 0
    brownout_exits: int = 0
    brownout_switches: int = 0
    #: Latency (seconds) of every completed request, in completion order.
    latencies_s: list = field(default_factory=list)

    def slo_attainment(self) -> float:
        """On-deadline fraction of completed (admitted) requests."""
        return self.slo_hits / self.completed if self.completed else 1.0

    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0


class ServingFrontend:
    """Admission/deadline/retry/breaker/brownout edge over one scheduler."""

    name = "serving"

    def __init__(self, system, params: ServingParameters | None = None):
        self.system = system
        self.controller = system.controller
        self.cluster = system.cluster
        self.params = params or ServingParameters()
        self.stats = ServingStats()
        self._rng = random.Random(self.params.seed)
        #: task_id -> RequestRecord (created at admission or first start).
        self._records: dict[int, RequestRecord] = {}
        #: model key -> FIFO of queued (admitted, not started) records.
        self._queued: dict[str, deque] = {}
        #: model key -> live queue depth (PENDING, not condemned).
        self._depth: dict[str, int] = {}
        #: tenant -> live queue depth (tenancy layer's pressure signal).
        self._tenant_depth: dict[str, int] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._breakers = {
            fpga_id: CircuitBreaker(fpga_id, self.params)
            for fpga_id in self.cluster.boards
        }
        self._boards_by_type: dict[str, list] = {}
        for board in self.cluster.boards.values():
            self._boards_by_type.setdefault(board.model.name, []).append(board)
        self._total_blocks = sum(
            len(board.blocks) for board in self.cluster.boards.values()
        )
        self._feasible_types: dict[str, list] = {}
        #: (due_s, breaker) half-open probes in synchronous mode.
        self._due: list = []
        self._clock = 0.0
        self.brownout = False
        self._simulator = None
        #: Optional elastic autoscaler (:mod:`repro.autoscale`); attached
        #: via :meth:`attach_autoscaler`, observes every offered arrival.
        self.autoscaler = None
        if self.params.breaker_enabled:
            for board in self.cluster.boards.values():
                board.subscribe_health(self._on_board_health)

    # -- simulator adoption --------------------------------------------------

    def bind_simulator(self, simulator) -> None:
        self._simulator = simulator
        self.system.bind_simulator(simulator)
        if self.autoscaler is not None:
            self.autoscaler.bind_simulator(simulator)
        # Probes queued while unbound become first-class DES events now —
        # without this hand-off a probe scheduled before binding would
        # only ever fire piggybacked on an unrelated admit/try_start call.
        if self._due:
            now = simulator.queue.now
            for due_s, breaker in self._due:
                simulator.schedule_external(
                    max(0.0, due_s - now),
                    lambda fire_now, b=breaker: self._probe(b, fire_now),
                )
            self._due = []

    def attach_autoscaler(self, autoscaler) -> None:
        """Adopt an :class:`~repro.autoscale.Autoscaler` (it calls this
        from its constructor); forwards the simulator if already bound."""
        self.autoscaler = autoscaler
        if self._simulator is not None:
            autoscaler.bind_simulator(self._simulator)

    def queue_depth(self, model_key: str | None = None) -> int:
        """Live queued (admitted, not started) requests — one model's, or
        every model's.  The autoscaler's primary pressure signal."""
        if model_key is not None:
            return self._depth.get(model_key, 0)
        return sum(self._depth.values())

    def queue_depth_by_tenant(self) -> dict:
        """Live queued requests per tenant (zero entries elided)."""
        return {
            tenant: depth
            for tenant, depth in sorted(self._tenant_depth.items())
            if depth > 0
        }

    def _bump_tenant(self, task: Task, delta: int) -> None:
        tenant = getattr(task, "tenant", "")
        self._tenant_depth[tenant] = self._tenant_depth.get(tenant, 0) + delta

    def _now(self) -> float:
        if self._simulator is not None:
            return self._simulator.queue.now
        return self._clock

    # -- record bookkeeping --------------------------------------------------

    def _record(self, task: Task, now: float) -> RequestRecord:
        record = self._records.get(task.task_id)
        if record is None:
            deadline = getattr(task, "deadline_s", 0.0)
            if deadline <= 0.0:
                deadline = task.arrival_s + self.params.default_deadline_s
                if isinstance(task, Request):
                    task.deadline_s = deadline
            record = RequestRecord(task=task, deadline_s=deadline)
            self._records[task.task_id] = record
        return record

    def record_for(self, task_id: int) -> RequestRecord | None:
        """The frontend's record for one task (tests and benches read it)."""
        return self._records.get(task_id)

    def _bucket(self, model_key: str) -> TokenBucket | None:
        if self.params.admission_rate_per_s <= 0:
            return None
        bucket = self._buckets.get(model_key)
        if bucket is None:
            bucket = TokenBucket(
                self.params.admission_rate_per_s, self.params.admission_burst
            )
            self._buckets[model_key] = bucket
        return bucket

    # -- Scheduler protocol: admission ---------------------------------------

    def admit(self, task: Task, now: float) -> bool:
        """Arrival-time admission: bounded queue + token bucket."""
        self._clock = now
        self._pump_breakers(now)
        record = self._record(task, now)
        self.stats.offered += 1
        model = task.model_key
        if self.autoscaler is not None:
            self.autoscaler.observe_arrival(model, now)
        bucket = self._bucket(model)
        if bucket is not None and not bucket.try_take(now):
            return self._shed_at_door(record)
        if self._depth.get(model, 0) >= self.params.max_queue_depth:
            if self.params.shedding is SheddingPolicy.HEAD_DROP:
                self._condemn_oldest(model)
            else:
                return self._shed_at_door(record)
        self._queued.setdefault(model, deque()).append(record)
        self._depth[model] = self._depth.get(model, 0) + 1
        self._bump_tenant(task, +1)
        self.stats.admitted += 1
        PROFILER.incr("serving.admitted")
        if self._simulator is not None:
            # Deadline wake: expiry becomes an exact DES event (the wake
            # itself is a no-op — the re-dispatch it triggers runs the
            # should_drop sweep at precisely the deadline instant).
            self._simulator.schedule_external(
                max(0.0, record.deadline_s - now), lambda _now: None
            )
        return True

    def _shed_at_door(self, record: RequestRecord) -> bool:
        record.outcome = RequestOutcome.SHED
        self.stats.shed += 1
        self.controller.stats.requests_shed += 1
        PROFILER.incr("serving.shed")
        return False

    def _condemn_oldest(self, model_key: str) -> None:
        """Head drop: mark the oldest still-pending queued request of this
        model shed; the dispatcher drops it at its next pass."""
        for record in self._queued.get(model_key, ()):
            if record.outcome is RequestOutcome.PENDING and not record.started:
                record.outcome = RequestOutcome.SHED
                self.stats.shed += 1
                self.controller.stats.requests_shed += 1
                self._depth[model_key] -= 1
                self._bump_tenant(record.task, -1)
                PROFILER.incr("serving.shed")
                return

    # -- Scheduler protocol: dequeue-time drops ------------------------------

    def should_drop(self, task: Task, now: float) -> bool:
        """Dequeue gate: condemned or expired requests leave the queue
        here, before any placement is attempted — they never hold a board."""
        self._clock = now
        record = self._records.get(task.task_id)
        if record is None:
            return False
        if record.outcome is RequestOutcome.PENDING and record.deadline_missed(now):
            record.outcome = RequestOutcome.EXPIRED
            self.stats.expired += 1
            self.controller.stats.requests_expired += 1
            self._depth[task.model_key] -= 1
            self._bump_tenant(task, -1)
            PROFILER.incr("serving.expired")
        if record.outcome is RequestOutcome.PENDING or record.started:
            return False
        queue = self._queued.get(task.model_key)
        if queue is not None:
            try:
                queue.remove(record)
            except ValueError:
                pass
        return True

    # -- Scheduler protocol: placement ---------------------------------------

    def try_start(self, task: Task, now: float) -> float | None:
        self._clock = now
        self._pump_breakers(now)
        record = self._record(task, now)
        if record.outcome is not RequestOutcome.PENDING:
            return None  # condemned; the dispatcher drops it next pass
        if now < record.next_attempt_s:
            return None  # retry backoff gate
        if self._all_breakers_open(task.model_key):
            self.stats.breaker_rejections += 1
            self.controller.stats.breaker_rejections += 1
            PROFILER.incr("serving.breaker_rejections")
            return None
        failures_before = self.controller.stats.placement_failures
        service = self.system.try_start(task, now)
        if service is None:
            if self.controller.stats.placement_failures > failures_before:
                self._placement_failed(record, now)
            return None
        # Started: leave the queue, remember the boards for breaker
        # attribution, and let brownout react to the new utilisation.
        record.started = True
        self._depth[task.model_key] -= 1
        self._bump_tenant(task, -1)
        queue = self._queued.get(task.model_key)
        if queue is not None:
            try:
                queue.remove(record)
            except ValueError:
                pass
        deployment = self.system.running_deployment(task.task_id)
        if deployment is not None:
            record.board_ids = list(deployment.member_fpgas)
        self.stats.started += 1
        self._update_brownout(now)
        return service

    def _placement_failed(self, record: RequestRecord, now: float) -> None:
        record.attempts += 1
        if record.attempts > self.params.retry_budget:
            record.outcome = RequestOutcome.ABANDONED
            self.stats.abandoned += 1
            self.controller.stats.requests_abandoned += 1
            PROFILER.incr("serving.abandoned")
            return
        self.stats.placement_retries += 1
        PROFILER.incr("serving.retries")
        jitter = self.params.retry_jitter
        delay = self.params.backoff_s(record.attempts) * (
            1.0 - jitter + 2.0 * jitter * self._rng.random()
        )
        record.next_attempt_s = now + delay
        if self._simulator is not None:
            # Wake the dispatcher when the backoff expires.
            self._simulator.schedule_external(delay, lambda _now: None)

    def requeue(self, task: Task, now: float) -> None:
        """Return a started request to its queue (tenancy preemption): the
        start bookkeeping is reversed exactly, so depth accounting and the
        deadline/drop gates govern the re-run like any queued request."""
        record = self._records.get(task.task_id)
        if record is None or not record.started:
            return
        record.started = False
        record.board_ids = []
        self._queued.setdefault(task.model_key, deque()).append(record)
        self._depth[task.model_key] = self._depth.get(task.model_key, 0) + 1
        self._bump_tenant(task, +1)
        PROFILER.incr("serving.requeued")

    # -- Scheduler protocol: completion --------------------------------------

    def on_finish(self, task: Task, now: float) -> None:
        self._clock = now
        self.system.on_finish(task, now)
        record = self._records.get(task.task_id)
        if record is None:
            return
        record.outcome = RequestOutcome.COMPLETED
        on_time = now <= record.deadline_s
        self.stats.completed += 1
        self.stats.latencies_s.append(now - task.arrival_s)
        if on_time:
            self.stats.slo_hits += 1
        if self.params.breaker_enabled:
            for fpga_id in record.board_ids:
                breaker = self._breakers.get(fpga_id)
                if breaker is None:
                    continue
                if on_time:
                    if breaker.record_success(now):
                        self.stats.breaker_closes += 1
                elif breaker.record_slow(now):
                    self._drain(breaker, now)
        self._update_brownout(now)

    # -- Scheduler protocol: hints and passthroughs --------------------------

    def has_fast_path(self, task: Task) -> bool:
        return self.system.has_fast_path(task)

    def observe_queue(self, pending_by_model: dict) -> None:
        self.system.observe_queue(pending_by_model)

    def retry_hint(self, task: Task, now: float) -> float:
        """Conservative per-model gate: the earliest moment *any* queued
        request of this model could act — its backoff expiry when backing
        off, the inner scheduler's hint otherwise.  Condemned requests
        make the model immediately actionable (the drop is progress)."""
        inner = self.system.retry_hint(task, now)
        queue = self._queued.get(task.model_key)
        if not queue:
            return inner
        hint = math.inf
        for record in queue:
            if record.outcome is not RequestOutcome.PENDING:
                return now
            gate = (
                record.next_attempt_s
                if record.next_attempt_s > now
                else inner
            )
            hint = min(hint, gate)
        return hint

    def has_pending_timers(self) -> bool:
        """True while any queued request holds a finite live time gate
        (deadline or backoff) — tells the simulator an idle cluster with a
        waiting queue is not a deadlock."""
        now = self._now()
        for queue in self._queued.values():
            for record in queue:
                if record.outcome is not RequestOutcome.PENDING:
                    return True  # droppable: the next pass makes progress
                if math.isfinite(record.deadline_s):
                    return True
                if record.next_attempt_s > now:
                    return True
        return False

    # -- circuit breakers ----------------------------------------------------

    def breaker(self, fpga_id: str) -> CircuitBreaker:
        return self._breakers[fpga_id]

    def _on_board_health(self, board, old_health) -> None:
        if board.health is not BoardHealth.FAILED:
            return
        breaker = self._breakers.get(board.fpga_id)
        if breaker is not None and breaker.record_failure(self._now()):
            self._drain(breaker, self._now())

    def _drain(self, breaker: CircuitBreaker, now: float) -> None:
        """An opened breaker drains its board via the health machinery and
        schedules the half-open probe."""
        self.stats.breaker_opens += 1
        PROFILER.incr("serving.breaker_opens")
        board = self.cluster.board(breaker.fpga_id)
        if board.health is BoardHealth.HEALTHY:
            self.controller.on_board_degraded(board, now)
            breaker.draining = True
        self._schedule_half_open(breaker, now)

    def _schedule_half_open(self, breaker: CircuitBreaker, now: float) -> None:
        delay = breaker.cooldown_s()
        if self._simulator is not None:
            self._simulator.schedule_external(
                delay, lambda fire_now, b=breaker: self._probe(b, fire_now)
            )
        else:
            self._due.append((now + delay, breaker))

    def _pump_breakers(self, now: float) -> None:
        """Synchronous mode only: fire half-open probes that have come due
        (with a DES bound they are first-class external events instead)."""
        if self._simulator is not None or not self._due:
            return
        due = [entry for entry in self._due if entry[0] <= now]
        self._due = [entry for entry in self._due if entry[0] > now]
        for _, breaker in due:
            self._probe(breaker, now)

    def _probe(self, breaker: CircuitBreaker, now: float) -> None:
        board = self.cluster.board(breaker.fpga_id)
        if board.health is BoardHealth.FAILED:
            # Still hard-down (fault injector owns it): probe again later.
            self._schedule_half_open(breaker, now)
            return
        if breaker.state is not BreakerState.OPEN:
            return
        breaker.half_open()
        self.stats.breaker_half_opens += 1
        PROFILER.incr("serving.breaker_half_opens")
        if breaker.draining and board.health is BoardHealth.DEGRADED:
            self.controller.on_board_repair(board, now)
        breaker.draining = False

    def _feasible_board_types(self, model_key: str) -> list:
        types = self._feasible_types.get(model_key)
        if types is None:
            types = self.controller.catalog.compatible_types(model_key)
            self._feasible_types[model_key] = types
        return types

    def _all_breakers_open(self, model_key: str) -> bool:
        """Fast-reject when every board the model could land on is held
        open (don't burn a placement search the breakers predetermine)."""
        if not self.params.breaker_enabled:
            return False
        saw_candidate_board = False
        for device_type in self._feasible_board_types(model_key):
            for board in self._boards_by_type.get(device_type, ()):
                saw_candidate_board = True
                breaker = self._breakers[board.fpga_id]
                if (
                    breaker.state is not BreakerState.OPEN
                    and board.health is not BoardHealth.FAILED
                ):
                    return False
        return saw_candidate_board

    # -- brownout ------------------------------------------------------------

    def utilisation(self) -> float:
        """Occupied fraction of every virtual block in the cluster."""
        if not self._total_blocks:
            return 0.0
        free = sum(board.free_blocks for board in self.cluster.boards.values())
        return 1.0 - free / self._total_blocks

    def _update_brownout(self, now: float) -> None:
        if not self.params.brownout_enabled:
            return
        util = self.utilisation()
        if not self.brownout and util >= self.params.brownout_high_watermark:
            self.brownout = True
            self.controller.prefer_narrow = True
            self.stats.brownout_entries += 1
            PROFILER.incr("serving.brownout_entries")
            self._shrink_hot_models(now)
        elif self.brownout and util <= self.params.brownout_low_watermark:
            self.brownout = False
            self.controller.prefer_narrow = False
            self.stats.brownout_exits += 1

    def _shrink_hot_models(self, now: float) -> None:
        """Switch hot models' idle deployments to the narrowest catalog
        plan (cross-width, so a cold restart — the recovery manager's
        scale-down fallback applied proactively)."""
        controller = self.controller
        for model_key in sorted(self._queued):
            if self._depth.get(model_key, 0) < self.params.brownout_hot_depth:
                continue
            plans = controller.catalog.entry_by_key(model_key).sorted_plans()
            if len(plans) < 2:
                continue
            narrow = min(plans, key=controller.plan_footprint)
            deployment = controller.find_idle_deployment(model_key)
            if deployment is None:
                continue
            if (
                controller.plan_footprint(deployment.plan)
                <= controller.plan_footprint(narrow)
            ):
                continue
            self._switch_plan(deployment, narrow, now)

    def _switch_plan(self, deployment, narrow_plan, now: float) -> None:
        controller = self.controller
        original_plan = deployment.plan
        controller.discard(deployment)
        placed = controller.place_plan(narrow_plan, now)
        if placed is None:
            # Could not shrink after all: put the original width back in
            # the space just freed (best effort; on a miss the model simply
            # re-deploys on demand).
            placed = controller.place_plan(original_plan, now)
            if placed is None:
                return
        else:
            self.stats.brownout_switches += 1
            controller.stats.brownout_switches += 1
            PROFILER.incr("serving.brownout_switches")
        new_deployment, reconfig = placed
        if self._simulator is None:
            return  # synchronous mode: usable immediately
        new_deployment.state = DeploymentState.RECOVERING

        def complete(fire_now, d=new_deployment):
            if d.deployment_id not in controller.deployments:
                return  # torn down while reconfiguring
            if d.pending_recovery:
                if controller.recovery_enabled:
                    controller.recovery.recover(d, fire_now)
                else:
                    controller.discard(d)
                return
            d.state = DeploymentState.IDLE
            d.last_used_s = fire_now
            d.checkpoint_origin_s = fire_now

        self._simulator.schedule_external(reconfig, complete)
