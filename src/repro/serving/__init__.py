"""The online serving layer: overload-robust admission over the runtime.

The paper's runtime deploys a fixed task list; a cloud service faces an
open arrival stream from millions of users, and must stay predictable when
demand exceeds capacity or boards fail.  This package is that edge,
layered on :class:`~repro.runtime.controller.SystemController` and driven
by the :class:`~repro.cluster.simulator.ClusterSimulator`:

* :mod:`~repro.serving.policy`   — the policy knobs
  (:class:`ServingParameters`), shedding policies and the token bucket;
* :mod:`~repro.serving.request`  — deadline-carrying :class:`Request`
  tasks and their terminal :class:`RequestOutcome`;
* :mod:`~repro.serving.breaker`  — per-board circuit breakers
  (open -> drain -> half-open probe -> close);
* :mod:`~repro.serving.frontend` — :class:`ServingFrontend`, the
  Scheduler-protocol wrapper that does admission control, deadline
  expiry at dequeue, retry budgets with jittered backoff, breaker-driven
  board drains and brownout scale-down switching.

Everything is opt-in: constructing no frontend changes nothing, so the
Fig. 12 goldens stay bit-identical.  ``python -m repro serve`` runs a
stream through the frontend; ``repro.experiments.bench_serving`` sweeps
offered load with and without faults into ``BENCH_serving.json``.
"""

from .breaker import BreakerState, CircuitBreaker
from .frontend import ServingFrontend, ServingStats
from .policy import ServingParameters, SheddingPolicy, TokenBucket
from .request import Request, RequestOutcome, RequestRecord

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "Request",
    "RequestOutcome",
    "RequestRecord",
    "ServingFrontend",
    "ServingParameters",
    "ServingStats",
    "SheddingPolicy",
    "TokenBucket",
]
