"""Serving-edge policy knobs: admission, deadlines, retries, brownout.

Everything the :class:`~repro.serving.frontend.ServingFrontend` decides is
parameterised here so the bench can sweep policies without code changes.
Defaults are tuned for the four-board paper cluster serving the small
benchmark models; a larger pool wants proportionally larger queue bounds
and bucket rates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ReproError
from ..units import ms


class SheddingPolicy(enum.Enum):
    """What admission control does when a model's queue is full."""

    #: Reject the arriving request (classic tail drop; FIFO fairness).
    TAIL_DROP = "tail_drop"
    #: Admit the arrival and shed the *oldest* queued request of the same
    #: model instead — under deadlines the oldest request is the likeliest
    #: to expire anyway, so head drop trades fairness for goodput.
    HEAD_DROP = "head_drop"


class TokenBucket:
    """A standard token bucket: ``rate_per_s`` sustained, ``burst`` peak.

    Time is passed in (the DES clock), never read from a wall clock, so
    admission decisions are a pure function of the arrival trace.
    """

    def __init__(self, rate_per_s: float, burst: float):
        if rate_per_s <= 0 or burst <= 0:
            raise ReproError("token bucket rate and burst must be positive")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens = burst
        self._last_s = 0.0

    def try_take(self, now: float) -> bool:
        """Take one token if available; refills lazily from elapsed time."""
        if now > self._last_s:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last_s) * self.rate_per_s
            )
            self._last_s = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


@dataclass(frozen=True)
class ServingParameters:
    """Policy knobs for the overload-robust serving edge."""

    # -- admission control ----------------------------------------------------
    #: Per-model bounded queue: arrivals past this depth are shed.
    max_queue_depth: int = 12
    #: Per-model token-bucket rate; ``0`` disables the bucket (queue-depth
    #: watermarks alone gate admission).
    admission_rate_per_s: float = 0.0
    #: Bucket size (burst tolerance) when the bucket is enabled.
    admission_burst: float = 16.0
    #: What to do with the overflow (tail drop vs head drop).
    shedding: SheddingPolicy = SheddingPolicy.TAIL_DROP

    # -- deadlines ------------------------------------------------------------
    #: Deadline granted to requests that do not carry their own: a request
    #: not *started* by ``arrival + default_deadline_s`` is expired at
    #: dequeue and never occupies a board.
    default_deadline_s: float = 0.5

    # -- retry budget ---------------------------------------------------------
    #: Genuine placement failures a request may absorb before it is
    #: abandoned (waiting for a busy deployment does not count).
    retry_budget: int = 4
    #: First retry backoff; doubles per failure, jittered.
    retry_base_s: float = ms(2.0)
    #: Ceiling on one backoff delay.
    retry_cap_s: float = ms(32.0)
    #: Jitter fraction: the delay is scaled by a uniform draw from
    #: ``[1 - jitter, 1 + jitter]`` so synchronized failures don't retry in
    #: lockstep.
    retry_jitter: float = 0.5
    #: Seed for the jitter stream (the only randomness in the frontend).
    seed: int = 0

    # -- circuit breakers -----------------------------------------------------
    breaker_enabled: bool = True
    #: Weighted failure mass inside the window that opens a breaker
    #: (a board failure counts 1.0, a deadline-missing completion 0.5).
    breaker_threshold: float = 2.0
    #: Sliding window the failure mass is counted over.
    breaker_window_s: float = 0.5
    #: Time a breaker stays open before a half-open probe; doubles per
    #: consecutive open, capped at 8x.
    breaker_cooldown_s: float = 0.2
    #: Successful completions a half-open board must serve to close.
    breaker_probe_budget: int = 2

    # -- brownout / graceful degradation --------------------------------------
    brownout_enabled: bool = True
    #: Cluster block-utilisation fraction that enters brownout.
    brownout_high_watermark: float = 0.85
    #: Utilisation at which brownout exits (hysteresis band).
    brownout_low_watermark: float = 0.60
    #: Queue depth at which a model counts as *hot* (eligible for a
    #: scale-down switch while brownout holds).
    brownout_hot_depth: int = 4

    def __post_init__(self):
        if self.max_queue_depth < 1:
            raise ReproError("max_queue_depth must be >= 1")
        if self.retry_budget < 0:
            raise ReproError("retry_budget must be >= 0")
        if not 0.0 <= self.retry_jitter < 1.0:
            raise ReproError("retry_jitter must be in [0, 1)")
        if not 0.0 < self.brownout_low_watermark <= self.brownout_high_watermark <= 1.0:
            raise ReproError(
                "brownout watermarks must satisfy 0 < low <= high <= 1"
            )

    def backoff_s(self, attempt: int) -> float:
        """The un-jittered backoff delay after failure number ``attempt``
        (1-based); the frontend applies jitter on top."""
        return min(self.retry_cap_s, self.retry_base_s * (2 ** max(0, attempt - 1)))
