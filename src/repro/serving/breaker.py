"""Per-board circuit breakers: open on failures, drain, probe, re-admit.

A breaker watches one board's recent failure/latency signal and keeps the
serving edge from routing work onto a board that keeps killing it:

* ``CLOSED``    — healthy; failures accumulate in a sliding window.
* ``OPEN``      — too much recent failure mass: the board is *drained*
  through the health machinery (``HEALTHY -> DEGRADED``), which removes it
  from every placement query via the
  :class:`~repro.runtime.controller.PlacementIndex` without the placement
  policies knowing breakers exist.  Residents keep serving.
* ``HALF_OPEN`` — after a cooldown the board is re-admitted and must serve
  a probe budget of on-deadline completions to close; any failure while
  half-open re-opens with a doubled cooldown (capped at 8x).

Signals are fed by the frontend: hard board failures (``BoardHealth``
transitions observed via ``subscribe_health``) weigh 1.0, completions that
missed their deadline weigh 0.5.  The breaker never *causes* state loss —
opening is always a drain, so a false positive costs capacity, not work.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from .policy import ServingParameters


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Hard cap on the cooldown growth (2^3 = 8x the base).
MAX_COOLDOWN_DOUBLINGS = 3

#: Signal weights.
FAILURE_WEIGHT = 1.0
SLOW_WEIGHT = 0.5


@dataclass
class CircuitBreaker:
    """Failure-mass window + state machine for one board."""

    fpga_id: str
    params: ServingParameters
    state: BreakerState = BreakerState.CLOSED
    #: (time, weight) samples inside the sliding window.
    _samples: deque = field(default_factory=deque)
    #: Successful probes served while half-open.
    probe_successes: int = 0
    #: Consecutive opens without an intervening close (cooldown doubling).
    consecutive_opens: int = 0
    #: True while this breaker holds the board DEGRADED (so it only
    #: repairs a drain it initiated, never an injector's).
    draining: bool = False

    def _prune(self, now: float) -> None:
        window = self.params.breaker_window_s
        while self._samples and self._samples[0][0] < now - window:
            self._samples.popleft()

    def failure_mass(self, now: float) -> float:
        self._prune(now)
        return sum(weight for _, weight in self._samples)

    def cooldown_s(self) -> float:
        doublings = min(
            max(0, self.consecutive_opens - 1), MAX_COOLDOWN_DOUBLINGS
        )
        return self.params.breaker_cooldown_s * (2 ** doublings)

    # -- signal intake -------------------------------------------------------

    def record_failure(self, now: float, weight: float = FAILURE_WEIGHT) -> bool:
        """Feed one failure sample; returns True when this opens the
        breaker (caller drains the board and schedules the probe)."""
        if self.state is BreakerState.OPEN:
            return False
        if self.state is BreakerState.HALF_OPEN:
            # A failed probe: straight back to OPEN, longer cooldown.
            self._open(now)
            return True
        self._samples.append((now, weight))
        if self.failure_mass(now) >= self.params.breaker_threshold:
            self._open(now)
            return True
        return False

    def record_slow(self, now: float) -> bool:
        """A completion that missed its deadline on this board."""
        return self.record_failure(now, weight=SLOW_WEIGHT)

    def record_success(self, now: float) -> bool:
        """An on-deadline completion; returns True when a half-open
        breaker closes."""
        if self.state is not BreakerState.HALF_OPEN:
            return False
        self.probe_successes += 1
        if self.probe_successes >= self.params.breaker_probe_budget:
            self.state = BreakerState.CLOSED
            self.consecutive_opens = 0
            self._samples.clear()
            return True
        return False

    # -- transitions ---------------------------------------------------------

    def _open(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self.consecutive_opens += 1
        self.probe_successes = 0
        self._samples.clear()

    def half_open(self) -> None:
        """Cooldown elapsed: re-admit the board for probing."""
        if self.state is BreakerState.OPEN:
            self.state = BreakerState.HALF_OPEN
            self.probe_successes = 0
