"""Serving requests: tasks with deadlines and a terminal outcome.

A :class:`Request` is a :class:`~repro.cluster.simulator.Task` carrying an
absolute deadline; the :class:`~repro.serving.frontend.ServingFrontend`
tracks its admission/retry state in a :class:`RequestRecord` keyed by task
id, so plain ``Task`` streams work too (they get the frontend's default
deadline).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..cluster.simulator import Task


class RequestOutcome(enum.Enum):
    """Terminal disposition of one request at the serving edge."""

    #: Still queued or running.
    PENDING = "pending"
    #: Finished service (SLO attainment is judged separately).
    COMPLETED = "completed"
    #: Rejected by admission control (queue bound or token bucket).
    SHED = "shed"
    #: Past its deadline at dequeue; dropped without occupying a board.
    EXPIRED = "expired"
    #: Exhausted its placement-retry budget.
    ABANDONED = "abandoned"


@dataclass
class Request(Task):
    """One serving request: a task with an absolute deadline.

    ``deadline_s <= 0`` means "use the frontend's default" (arrival plus
    :attr:`~repro.serving.policy.ServingParameters.default_deadline_s`).
    """

    deadline_s: float = 0.0


@dataclass
class RequestRecord:
    """Frontend-side state for one in-flight request."""

    task: Task
    #: Absolute deadline (resolved against the frontend default).
    deadline_s: float
    outcome: RequestOutcome = RequestOutcome.PENDING
    #: Genuine placement failures absorbed so far.
    attempts: int = 0
    #: Earliest time the next placement attempt may run (backoff gate).
    next_attempt_s: float = 0.0
    #: Boards the request ran on (breaker attribution), set at start.
    board_ids: list = field(default_factory=list)
    #: Whether the request ever occupied a board.
    started: bool = False

    def deadline_missed(self, now: float) -> bool:
        return now > self.deadline_s
