"""Scale benchmark for the pod-sharded control plane.

Sweeps cluster size (4 -> 1000 boards, the paper platform's 3:1
VU37P:KU115 mix) under a fully backlogged mixed task stream and emits
``BENCH_scale.json``: wall-clock, DES events/s, placement-search and
board-probe counts — for the pod-routed controller AND a single-pod
(flat) control run at every point.  The two runs must produce
bit-identical schedules (the router's equivalence contract); the gate
also checks that boards probed per placement search grow sub-linearly in
board count, which is the whole point of sharding.

Regenerate with::

    PYTHONPATH=src python -m repro.experiments.bench_scale           # full
    PYTHONPATH=src python -m repro.experiments.bench_scale --smoke   # CI
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import time

from ..cluster import ClusterSimulator, scaled_cluster
from ..perf.profiling import PROFILER
from ..runtime import Catalog, build_system
from ..vital import VitalCompiler
from ..workloads import TABLE1_COMPOSITIONS, generate_workload

#: Full sweep: the ROADMAP's 100x-and-beyond cluster sizes.
FULL_BOARDS = (4, 64, 256, 1000)
FULL_TASKS_PER_BOARD = 100
#: Hard cap on any single point's stream (the 1000-board point).
MAX_TASKS = 100_000

#: Reduced scale for CI smoke runs (largest point: 256 boards).
SMOKE_BOARDS = (4, 64, 256)
SMOKE_TASKS_PER_BOARD = 8

#: The mixed composition (33% S + 33% M + 34% L) — exercises single- and
#: multi-replica plans plus cross-type pressure.
COMPOSITION = TABLE1_COMPOSITIONS[6]
SEED = 7
#: Everything arrives essentially at once (as in the Fig. 12 runs): the
#: backlog stresses the pending-queue and placement paths at full depth.
ARRIVAL_RATE_PER_S = 1e5

#: Probe growth must stay below this fraction of board growth between the
#: smallest and largest sweep points (0.5 = "at most half as fast as
#: linear"; the router lands orders of magnitude under it).
SUBLINEAR_FRACTION = 0.5


def _schedule_digest(result) -> str:
    """Stable digest of one run's schedule (task id, start, finish)."""
    lines = sorted(
        f"{task.task_id}:{task.start_s!r}:{task.finish_s!r}"
        for task in result.completed
    )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _run_point(catalog, board_count: int, task_count: int,
               pod_size: int | None) -> dict:
    """One profiled simulation at one cluster size and pod configuration."""
    cluster = scaled_cluster(board_count)
    system = build_system("proposed", cluster, catalog, pod_size=pod_size)
    tasks = generate_workload(
        COMPOSITION,
        task_count=task_count,
        arrival_rate_per_s=ARRIVAL_RATE_PER_S,
        seed=SEED,
    )
    PROFILER.reset()
    start = time.perf_counter()
    result = ClusterSimulator(system, "proposed").run(tasks)
    wall_s = time.perf_counter() - start
    counters = PROFILER.snapshot()["counters"]
    stats = system.controller.stats
    searches = stats.placement_searches
    events = counters.get("simulator.events", 0)
    return {
        "pods": system.controller.index.pod_count(),
        "pod_size": system.controller.pod_size,
        "wall_s": wall_s,
        "events": events,
        "events_per_s": events / wall_s if wall_s > 0 else 0.0,
        "completed": len(result.completed),
        "throughput": result.throughput,
        "placement_searches": searches,
        "boards_probed": stats.boards_probed,
        "probes_per_search": (
            stats.boards_probed / searches if searches else 0.0
        ),
        "schedule_digest": _schedule_digest(result),
    }


def run_bench(
    boards=FULL_BOARDS,
    tasks_per_board: int = FULL_TASKS_PER_BOARD,
    output: str | pathlib.Path = "BENCH_scale.json",
) -> dict:
    """Run the sweep (pod-routed + flat control per point); write and
    return the report."""
    catalog = Catalog(VitalCompiler())
    points = []
    for board_count in boards:
        task_count = min(board_count * tasks_per_board, MAX_TASKS)
        pod = _run_point(catalog, board_count, task_count, pod_size=None)
        # Control: one pod spanning the whole cluster IS the flat index.
        flat = _run_point(catalog, board_count, task_count,
                          pod_size=board_count)
        points.append(
            {
                "boards": board_count,
                "tasks": task_count,
                "pod": pod,
                "flat": flat,
                "identical_to_flat": (
                    pod["schedule_digest"] == flat["schedule_digest"]
                ),
            }
        )
    smallest, largest = points[0], points[-1]
    board_growth = largest["boards"] / smallest["boards"]
    probe_growth = (
        largest["pod"]["probes_per_search"]
        / smallest["pod"]["probes_per_search"]
        if smallest["pod"]["probes_per_search"]
        else 0.0
    )
    gate = {
        "pod_flat_identical": all(p["identical_to_flat"] for p in points),
        "board_growth": board_growth,
        "probe_growth": probe_growth,
        "sublinear_fraction": SUBLINEAR_FRACTION,
        "sublinear": probe_growth <= SUBLINEAR_FRACTION * board_growth,
    }
    gate["pass"] = gate["pod_flat_identical"] and gate["sublinear"]
    report = {
        "scale": {
            "boards": list(boards),
            "tasks_per_board": tasks_per_board,
            "max_tasks": MAX_TASKS,
            "composition": COMPOSITION.describe(),
            "seed": SEED,
        },
        "points": points,
        "gate": gate,
    }
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=1) + "\n")
    return report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--boards", type=int, nargs="+", default=None)
    parser.add_argument("--tasks-per-board", type=int, default=None)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI scale: boards {SMOKE_BOARDS}, "
        f"{SMOKE_TASKS_PER_BOARD} tasks/board",
    )
    parser.add_argument("--output", default="BENCH_scale.json")
    args = parser.parse_args(argv)
    boards = tuple(args.boards) if args.boards else (
        SMOKE_BOARDS if args.smoke else FULL_BOARDS
    )
    tasks_per_board = args.tasks_per_board or (
        SMOKE_TASKS_PER_BOARD if args.smoke else FULL_TASKS_PER_BOARD
    )
    report = run_bench(
        boards=boards, tasks_per_board=tasks_per_board, output=args.output
    )
    for point in report["points"]:
        pod = point["pod"]
        print(
            f"{point['boards']:>5} boards / {point['tasks']:>6} tasks: "
            f"{pod['wall_s']:.2f}s, {pod['events_per_s']:.0f} events/s, "
            f"{pod['probes_per_search']:.1f} probes/search "
            f"({'identical' if point['identical_to_flat'] else 'DIVERGED'} "
            f"vs flat)"
        )
    gate = report["gate"]
    print(
        f"gate: {'PASS' if gate['pass'] else 'FAIL'} "
        f"(probe growth {gate['probe_growth']:.2f}x vs board growth "
        f"{gate['board_growth']:.0f}x)"
    )
    print(f"report written to {args.output}")


if __name__ == "__main__":  # pragma: no cover - manual driver
    main()
