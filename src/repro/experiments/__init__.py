"""Experiment drivers — one module per table/figure of the paper.

Each driver returns a structured result object and renders the same
rows/series the paper reports:

* :mod:`~repro.experiments.table2`  — baseline accelerator implementations.
* :mod:`~repro.experiments.table3`  — one ViTAL virtual block per device.
* :mod:`~repro.experiments.table4`  — single-FPGA inference latency and
  virtualization overhead.
* :mod:`~repro.experiments.fig11`   — inference latency vs added inter-FPGA
  communication latency on a two-FPGA deployment.
* :mod:`~repro.experiments.fig12`   — aggregated system throughput on the
  ten Table-1 workload sets.
* :mod:`~repro.experiments.compile_overhead` — Section 4.3's compilation
  cost accounting (decompose/partition share, amortised scale-down cost).
* :mod:`~repro.experiments.isolation` — Section 4.4's performance-isolation
  result (instruction buffer vs shared-DRAM contention).
* :mod:`~repro.experiments.bench_fig12` — profiled Fig. 12 benchmark driver
  (emits ``BENCH_fig12.json`` with wall-clock and placement counters).
"""

from .report import format_table
from .table2 import run_table2, Table2Row
from .table3 import run_table3, Table3Row
from .table4 import run_table4, Table4Row
from .fig11 import run_fig11, Fig11Curve
from .fig12 import run_fig12, Fig12Row
from .compile_overhead import run_compile_overhead, CompileOverheadResult
from .isolation import (
    run_isolation,
    run_tenant_isolation,
    IsolationRow,
    TenantIsolationRow,
)

# NOTE: bench_fig12 is deliberately not imported here so that
# ``python -m repro.experiments.bench_fig12`` runs without the runpy
# already-imported warning; use it as a module entry point.

__all__ = [
    "CompileOverheadResult",
    "IsolationRow",
    "TenantIsolationRow",
    "run_isolation",
    "run_tenant_isolation",
    "Fig11Curve",
    "Fig12Row",
    "Table2Row",
    "Table3Row",
    "Table4Row",
    "format_table",
    "run_compile_overhead",
    "run_fig11",
    "run_fig12",
    "run_table2",
    "run_table3",
    "run_table4",
]
