"""Section 4.3 — compilation overhead of the proposed framework.

The framework adds three offline steps to the baseline compilation flow:

1. **decomposing** and 2. **partitioning** — measured here as real wall
   clock of our tools against the modelled HS-compile time; the paper
   reports them as negligible (<1%);
3. **compiling the scaled-down accelerators** for the scale-out
   optimisation — several combinations per instance, amortised across the
   10 accelerator instances through the content-addressed bitstream store
   (the paper lands at 24.6% total overhead after amortisation).

A scaled-down variant differs from the standalone instance with the same
tile count (it embeds the inter-FPGA synchronisation template module), so
variants are distinct artifacts — but identical variants are shared across
instances, which is what the store's cache hits measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..accel import BW_K115, BW_V37, CONTROL_MODULES, generate_accelerator
from ..accel.config import scaled_config
from ..core import decompose, partition
from ..errors import CompileError
from ..vital import BitstreamStore, VitalCompiler
from ..vital.device import DEVICE_TYPES
from .report import format_table

#: Tile counts of the "10 different accelerator instances" (Section 4.3),
#: device-matched: the largest two are the Table 2 baselines.
INSTANCE_TILE_COUNTS = {
    "XCVU37P": (21, 16, 10, 8, 5, 3),
    "XCKU115": (13, 10, 6, 4),
}

#: Scale-down factors generated per instance (the paper's "2~5
#: combinations" per accelerator).
SCALE_DOWN_FACTORS = (2, 4)


@dataclass
class CompileOverheadResult:
    """Aggregate compile-cost accounting."""

    baseline_seconds: float = 0.0
    scale_down_seconds: float = 0.0
    decompose_partition_seconds: float = 0.0
    instances: int = 0
    variant_compiles: int = 0
    variant_cache_hits: int = 0
    rows: list = field(default_factory=list)

    @property
    def overhead_fraction(self) -> float:
        """Total added compile time relative to the baseline flow."""
        extra = self.scale_down_seconds + self.decompose_partition_seconds
        return extra / self.baseline_seconds if self.baseline_seconds else 0.0

    @property
    def tool_fraction(self) -> float:
        """Decompose+partition share of the baseline compile time."""
        if not self.baseline_seconds:
            return 0.0
        return self.decompose_partition_seconds / self.baseline_seconds


def _compile_once(compiler, config, device, result, accelerator_name):
    """Generate, decompose, partition and HS-compile one design; returns
    ``(bitstream, was_cached)`` and accumulates tool wall-clock."""
    started = time.perf_counter()
    design = generate_accelerator(config)
    decomposed = decompose(design, CONTROL_MODULES)
    partition(decomposed, iterations=1)
    result.decompose_partition_seconds += time.perf_counter() - started
    _image, bitstream, cached = compiler.compile_cluster(
        accelerator=accelerator_name,
        cluster_index=0,
        cluster_signature=decomposed.data_root.signature,
        demand=decomposed.total_resources(),
        device=device,
    )
    return bitstream, cached


def run_compile_overhead() -> CompileOverheadResult:
    """Compile the instance set, then every scale-down variant.

    Instances are compiled first (they are what the baseline flow needs
    anyway); variants then hit the content-addressed store whenever a
    structurally identical instance exists — a scaled-down design *is* the
    standalone small instance (the sync template lives in the static shell
    and is configured by parameters, not recompiled).
    """
    store = BitstreamStore()
    compiler = VitalCompiler(store=store)
    result = CompileOverheadResult()
    base_configs = {"XCVU37P": BW_V37, "XCKU115": BW_K115}

    # Pass 1: the instance set (= the baseline compilation flow).
    plan = []
    for device_name, tile_counts in INSTANCE_TILE_COUNTS.items():
        device = DEVICE_TYPES[device_name]
        base = base_configs[device_name]
        for tiles in tile_counts:
            config = base.with_tiles(tiles, name=f"{base.name}-t{tiles}")
            bitstream, cached = _compile_once(
                compiler, config, device, result, config.name
            )
            cost = 0.0 if cached else bitstream.compile_seconds
            result.baseline_seconds += cost
            result.instances += 1
            plan.append((config, device, device_name, cost))

    # Pass 2: the scale-down variants of every instance.
    for config, device, device_name, baseline_cost in plan:
        variant_cost = 0.0
        for factor in SCALE_DOWN_FACTORS:
            if config.tiles // factor < 2:
                continue
            variant = scaled_config(config, factor)
            try:
                bitstream, cached = _compile_once(
                    compiler, variant, device, result,
                    f"sd-{config.name}/{factor}",
                )
            except CompileError:
                continue
            if cached:
                result.variant_cache_hits += 1
            else:
                result.variant_compiles += 1
                variant_cost += bitstream.compile_seconds
        result.scale_down_seconds += variant_cost
        result.rows.append((config.name, device_name, baseline_cost, variant_cost))
    return result


def render(result: CompileOverheadResult) -> str:
    body = [
        [name, device, f"{base / 3600:.2f} h", f"{variants / 3600:.2f} h"]
        for name, device, base, variants in result.rows
    ]
    table = format_table(
        ["Instance", "Device", "Baseline compile", "Scale-down extra"],
        body,
        title="Section 4.3: compilation cost per accelerator instance",
    )
    return (
        table
        + f"\n\ninstances: {result.instances}"
        + f"\nvariant compiles: {result.variant_compiles} "
        + f"(cache hits: {result.variant_cache_hits})"
        + f"\ndecompose+partition: {result.decompose_partition_seconds:.2f} s "
        + f"= {result.tool_fraction * 100:.3f}% of baseline (paper: <1%)"
        + f"\ntotal overhead: {result.overhead_fraction * 100:.1f}% "
        + "(paper: 24.6%)"
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run_compile_overhead()))
