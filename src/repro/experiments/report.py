"""Plain-text table rendering shared by the experiment drivers."""

from __future__ import annotations


def format_table(headers: list, rows: list, title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def pct(fraction: float) -> str:
    """Render a fraction as a percentage string."""
    return f"{fraction * 100:.1f}%"
