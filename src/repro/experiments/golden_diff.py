"""Human-readable diff of the Fig. 12 output against its golden snapshot.

When ``test_fig12_golden.py`` fails, the pytest assertion shows two large
repr dicts — hard to eyeball.  CI runs this tool on failure and uploads
the result as an artifact: one line per drifted (composition, system)
cell with golden value, actual value and relative delta, so the reviewer
sees at a glance whether a change nudged one system's throughput by a few
ulps or rewrote the whole schedule.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

GOLDEN_SMALL = pathlib.Path(__file__).parents[3] / "tests" / "golden" / "fig12_small.json"


def diff_lines(golden: dict) -> list:
    """Re-run the experiment at the golden's scale; describe every drift."""
    from .fig12 import average_speedups, run_fig12

    rows = run_fig12(
        task_count=golden["task_count"], seeds=tuple(golden["seeds"])
    )
    lines: list = []
    for row, expected in zip(rows, golden["rows"]):
        for system, expected_repr in sorted(expected["throughput"].items()):
            actual = row.throughput.get(system)
            actual_repr = repr(actual)
            if actual_repr == expected_repr:
                continue
            try:
                rel = actual / float(expected_repr) - 1.0
                delta = f"{rel:+.3e}"
            except (TypeError, ValueError, ZeroDivisionError):
                delta = "n/a"
            lines.append(
                f"set {expected['index']} {system}: golden {expected_repr} "
                f"actual {actual_repr} (rel {delta})"
            )
    actual_speedups = [repr(v) for v in average_speedups(rows)]
    if actual_speedups != golden["avg_speedups"]:
        lines.append(
            f"avg speedups: golden {golden['avg_speedups']} "
            f"actual {actual_speedups}"
        )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--golden", default=str(GOLDEN_SMALL),
                        help="golden snapshot to diff against")
    parser.add_argument("--output", default="fig12_golden_diff.txt",
                        help="where to write the diff report")
    args = parser.parse_args(argv)
    golden = json.loads(pathlib.Path(args.golden).read_text())
    lines = diff_lines(golden)
    body = (
        "\n".join(lines) + "\n"
        if lines
        else "no drift: output matches the golden snapshot\n"
    )
    pathlib.Path(args.output).write_text(body)
    print(body, end="")
    print(f"diff written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CI driver
    sys.exit(main())
