"""Benchmark driver for the Fig. 12 runtime hot path.

Runs :func:`~repro.experiments.fig12.run_fig12` under the profiling
registry and emits ``BENCH_fig12.json`` — wall-clock, DES event count and
placement-attempt counters plus the throughput rows — so allocator/DES
regressions show up as numbers across PRs instead of anecdotes.

The recorded reference point is the pre-index implementation (per-event
cluster rescans, ``sum(...)``-genexpr free-block counts): 125.3 s of
wall-clock and 2.2 M ``_find_placement`` calls for the full-scale run on
the same machine class.  Regenerate with::

    PYTHONPATH=src python -m repro.experiments.bench_fig12           # full
    PYTHONPATH=src python -m repro.experiments.bench_fig12 --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from ..perf.profiling import PROFILER
from ..workloads import TABLE1_COMPOSITIONS
from .fig12 import average_speedups, run_fig12

#: Full-scale wall-clock of the pre-overhaul runtime on the dev box, kept as
#: the fixed "before" reference the JSON reports speedup against.
BASELINE_FULL_WALL_S = 125.28
#: `_find_placement` call count of the pre-overhaul runtime at full scale.
BASELINE_FIND_PLACEMENT_CALLS = 2_200_000

#: Reduced scale for CI smoke runs (same compositions, shorter streams).
SMOKE_TASK_COUNT = 30
SMOKE_SEEDS = (1,)


def run_bench(
    task_count: int = 150,
    seeds=(1, 2, 3),
    compositions=TABLE1_COMPOSITIONS,
    output: str | pathlib.Path = "BENCH_fig12.json",
) -> dict:
    """Run the Fig. 12 experiment once, profiled; write and return the report."""
    PROFILER.reset()
    start = time.perf_counter()
    rows = run_fig12(
        compositions=compositions, task_count=task_count, seeds=seeds
    )
    wall_s = time.perf_counter() - start
    snapshot = PROFILER.snapshot()
    counters = snapshot["counters"]
    full_scale = task_count == 150 and tuple(seeds) == (1, 2, 3) and len(
        compositions
    ) == len(TABLE1_COMPOSITIONS)
    vs_baseline, vs_restricted = average_speedups(rows)
    report = {
        "scale": {
            "task_count": task_count,
            "seeds": list(seeds),
            "compositions": len(compositions),
            "full_scale": full_scale,
        },
        "wall_s": {
            "before": BASELINE_FULL_WALL_S if full_scale else None,
            "after": wall_s,
            "speedup": BASELINE_FULL_WALL_S / wall_s if full_scale else None,
        },
        "events": counters.get("simulator.events", 0),
        "placement": {
            "find_placement_calls": counters.get(
                "controller.find_placement_calls", 0
            ),
            "find_placement_calls_before": (
                BASELINE_FIND_PLACEMENT_CALLS if full_scale else None
            ),
            "deploy_calls": counters.get("controller.deploy_calls", 0),
            "fast_rejects": counters.get("controller.fast_rejects", 0),
            "try_start_attempts": counters.get(
                "simulator.try_start_attempts", 0
            ),
            "watermark_skips": counters.get("simulator.watermark_skips", 0),
        },
        "throughput_rows": [
            {
                "set": row.composition.index,
                "composition": row.composition.describe(),
                "throughput": dict(row.throughput),
                "speedup_vs_baseline": row.speedup_vs_baseline,
                "speedup_vs_restricted": row.speedup_vs_restricted,
            }
            for row in rows
        ],
        "average_speedups": {
            "vs_baseline": vs_baseline,
            "vs_restricted": vs_restricted,
        },
    }
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=1) + "\n")
    return report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=150)
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI scale: {SMOKE_TASK_COUNT} tasks, seed {SMOKE_SEEDS}",
    )
    parser.add_argument("--output", default="BENCH_fig12.json")
    args = parser.parse_args(argv)
    task_count = SMOKE_TASK_COUNT if args.smoke else args.tasks
    seeds = SMOKE_SEEDS if args.smoke else tuple(args.seeds)
    report = run_bench(task_count=task_count, seeds=seeds, output=args.output)
    wall = report["wall_s"]
    print(
        f"fig12 wall-clock: {wall['after']:.2f}s"
        + (
            f" ({wall['speedup']:.1f}x vs {wall['before']:.1f}s baseline)"
            if wall["speedup"]
            else ""
        )
    )
    print(
        "placement attempts: "
        f"{report['placement']['find_placement_calls']} find_placement, "
        f"{report['placement']['watermark_skips']} watermark skips"
    )
    print(f"report written to {args.output}")


if __name__ == "__main__":  # pragma: no cover - manual driver
    main()
