"""Benchmark driver for batched functional simulation.

Sweeps batch size × model over identical-deployment request groups and
measures *requests per wall-second* through the scalar
:class:`~repro.accel.functional.FunctionalSimulator` versus the batched
:mod:`repro.accel.batched` path, verifying bit-identical outputs at every
point (the batched path's contract, not a tolerance check).  Emits
``BENCH_batch.json``.  Regenerate with::

    PYTHONPATH=src python -m repro.experiments.bench_batch           # full
    PYTHONPATH=src python -m repro.experiments.bench_batch --smoke   # CI

The acceptance gate lives in the report's ``gate`` block: at the gate
batch size (8) the batched path must clear a >= 5x speedup over the
scalar simulator on every swept model.  The CI regression gate
(:mod:`repro.experiments.bench_gate`) compares the measured *speedup
ratio* against the committed smoke baseline — a within-run ratio, so the
gate is insensitive to absolute runner speed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from ..accel.batched import run_batched
from ..accel.codegen import OUT_BASE, make_codegen
from ..accel.functional import FunctionalSimulator
from ..isa.progcache import PROGRAM_CACHE
from ..perf.profiling import PROFILER
from ..workloads.deepbench import model_by_key

#: Two model configurations (the acceptance criterion's minimum); both are
#: members of the serving stream in ``bench_serving``.
MODELS = ("lstm-h256-t150", "lstm-h512-t25")

FULL_BATCH_SIZES = (1, 2, 4, 8, 16, 32)
SMOKE_BATCH_SIZES = (1, 8)

#: Requests measured per (model, batch) point.
FULL_REQUESTS = 32
SMOKE_REQUESTS = 8

#: The gate point and its floor: >= 5x at batch 8 (target 10x).
GATE_BATCH = 8
GATE_SPEEDUP_FLOOR = 5.0

WEIGHT_SEED = 0
INPUT_SEED = 1234


def _payloads(spec, count: int) -> list:
    rng = np.random.default_rng(INPUT_SEED)
    return [
        rng.normal(0.0, 1.0, (spec.timesteps, spec.effective_input_dim))
        for _ in range(count)
    ]


def _run_scalar(spec, gen, program, payloads: list) -> tuple:
    """(outputs, wall_s): one full scalar simulation per request, DRAM
    image and all — the per-request serving cost the batched path
    amortises."""
    outputs = []
    start = time.perf_counter()
    for xs in payloads:
        sim = FunctionalSimulator(program)
        gen.preload(sim, xs)
        sim.run()
        outputs.append(sim.dram.read(OUT_BASE, spec.hidden))
    return outputs, time.perf_counter() - start


def _run_batched(spec, gen, program, payloads: list, batch: int) -> tuple:
    """(outputs, wall_s, guard_recomputes): requests in ``batch``-wide
    groups (the final group may be narrower; width 1 falls back to the
    scalar simulator)."""
    outputs = []
    guard = 0
    start = time.perf_counter()
    for begin in range(0, len(payloads), batch):
        group = payloads[begin : begin + batch]
        lanes = run_batched(
            program,
            [
                (lambda xs: (lambda view: gen.preload_inputs(view, xs)))(xs)
                for xs in group
            ],
            shared_preload=gen.preload_weights,
        )
        for index in range(len(group)):
            outputs.append(lanes.lane_dram_read(index, OUT_BASE, spec.hidden))
        guard += getattr(getattr(lanes, "sim", None), "guard_recomputed", 0)
    return outputs, time.perf_counter() - start, guard


def run_model(model_key: str, batch_sizes, requests: int) -> dict:
    """Sweep batch sizes for one model; returns its report block."""
    spec = model_by_key(model_key)
    weights = spec.real_weights(seed=WEIGHT_SEED)
    gen = make_codegen(spec.kind, weights, spec.timesteps)
    program = gen.build()
    payloads = _payloads(spec, requests)
    scalar_outputs, scalar_wall = _run_scalar(spec, gen, program, payloads)
    scalar_rate = requests / scalar_wall
    points = []
    for batch in batch_sizes:
        outputs, wall, guard = _run_batched(spec, gen, program, payloads, batch)
        identical = all(
            np.array_equal(got, want)
            for got, want in zip(outputs, scalar_outputs)
        )
        rate = requests / wall
        points.append(
            {
                "batch": batch,
                "requests": requests,
                "wall_s": wall,
                "requests_per_s": rate,
                "speedup": rate / scalar_rate,
                "bit_identical": identical,
                "guard_recomputes": guard,
            }
        )
    return {
        "model": model_key,
        "hidden": spec.hidden,
        "timesteps": spec.timesteps,
        "scalar": {
            "requests": requests,
            "wall_s": scalar_wall,
            "requests_per_s": scalar_rate,
        },
        "points": points,
    }


def run_bench(
    batch_sizes=FULL_BATCH_SIZES,
    requests: int = FULL_REQUESTS,
    output: str | pathlib.Path = "BENCH_batch.json",
) -> dict:
    """Full batch × model sweep; writes and returns the report."""
    PROFILER.reset()
    PROGRAM_CACHE.clear()
    PROGRAM_CACHE.reset_stats()
    models = [run_model(key, batch_sizes, requests) for key in MODELS]
    # Exercise the decoded-program cache the way repeat deployments do.
    for key in MODELS:
        for _ in range(3):
            model_by_key(key).program()
    gate_speedups = {}
    identical = True
    for block in models:
        point = next(
            (p for p in block["points"] if p["batch"] == GATE_BATCH), None
        )
        if point is not None:
            gate_speedups[block["model"]] = point["speedup"]
        identical = identical and all(p["bit_identical"] for p in block["points"])
    gate_pass = (
        identical
        and len(gate_speedups) == len(MODELS)
        and all(s >= GATE_SPEEDUP_FLOOR for s in gate_speedups.values())
    )
    report = {
        "scale": {
            "requests": requests,
            "batch_sizes": list(batch_sizes),
            "models": list(MODELS),
            "weight_seed": WEIGHT_SEED,
            "input_seed": INPUT_SEED,
        },
        "models": models,
        "program_cache": PROGRAM_CACHE.stats(),
        "profiler": PROFILER.snapshot()["counters"],
        "gate": {
            "batch": GATE_BATCH,
            "speedup_floor": GATE_SPEEDUP_FLOOR,
            "speedups": gate_speedups,
            "bit_identical": identical,
            "pass": gate_pass,
        },
    }
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=1) + "\n")
    return report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=FULL_REQUESTS)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI scale: {SMOKE_REQUESTS} requests, batches "
        f"{SMOKE_BATCH_SIZES}",
    )
    parser.add_argument("--output", default="BENCH_batch.json")
    args = parser.parse_args(argv)
    batch_sizes = SMOKE_BATCH_SIZES if args.smoke else FULL_BATCH_SIZES
    requests = SMOKE_REQUESTS if args.smoke else args.requests
    report = run_bench(batch_sizes=batch_sizes, requests=requests,
                       output=args.output)
    for block in report["models"]:
        scalar = block["scalar"]
        print(
            f"{block['model']}: scalar {scalar['requests_per_s']:.1f} req/s"
        )
        for point in block["points"]:
            flag = "" if point["bit_identical"] else "  OUTPUT MISMATCH"
            print(
                f"  batch {point['batch']:>3}: "
                f"{point['requests_per_s']:.1f} req/s "
                f"({point['speedup']:.2f}x){flag}"
            )
    cache = report["program_cache"]
    print(
        f"program cache: {cache['hits']} hits / {cache['misses']} misses "
        f"({cache['entries']} entries)"
    )
    gate = report["gate"]
    speedups = ", ".join(
        f"{key} {value:.2f}x" for key, value in gate["speedups"].items()
    )
    print(
        f"gate (batch {gate['batch']}, floor {gate['speedup_floor']:g}x): "
        f"{speedups} -> {'PASS' if gate['pass'] else 'FAIL'}"
    )
    print(f"report written to {args.output}")


if __name__ == "__main__":  # pragma: no cover - manual driver
    main()
