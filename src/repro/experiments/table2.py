"""Table 2 — hardware implementation results of the two baseline
accelerators.

Regenerates, per instance (BW-V37 on the XCVU37P, BW-K115 on the XCKU115):
LUT/FF/BRAM/URAM/DSP usage with device utilisation percentages, achieved
frequency (with floorplanning, per the paper's methodology), and peak
TFLOPS.  Resource numbers come from the RTL generator's estimator, not from
lookup tables; the paper's values are attached for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel import BW_K115, BW_V37, generate_accelerator
from ..accel.config import AcceleratorConfig
from ..resources import ResourceVector
from ..rtl import design_resources
from ..units import to_mbit, to_mhz, to_tflops
from ..vital.device import DEVICE_TYPES, FPGAModel
from ..vital.floorplan import FloorplanQuality, achieved_frequency
from .report import format_table

#: Table 2 as printed in the paper (usage, freq MHz, peak TFLOPS).
PAPER_TABLE2 = {
    "BW-V37": {
        "device": "XCVU37P", "tiles": 21, "luts": 610e3, "ffs": 659e3,
        "bram_mb": 51.5, "uram_mb": 22.5, "dsps": 7517, "freq_mhz": 400,
        "tflops": 36.0,
    },
    "BW-K115": {
        "device": "XCKU115", "tiles": 13, "luts": 367e3, "ffs": 386e3,
        "bram_mb": 45.4, "uram_mb": 0.0, "dsps": 5073, "freq_mhz": 300,
        "tflops": 16.7,
    },
}


@dataclass
class Table2Row:
    """One measured row plus the paper's reference values."""

    instance: str
    device: str
    tiles: int
    resources: ResourceVector
    utilisation: dict
    frequency_hz: float
    peak_tflops: float
    paper: dict

    def rel_error(self, field: str) -> float:
        """Relative deviation from the paper for one quantity."""
        ours = {
            "luts": self.resources.luts,
            "ffs": self.resources.ffs,
            "bram_mb": to_mbit(self.resources.bram_bits),
            "uram_mb": to_mbit(self.resources.uram_bits),
            "dsps": self.resources.dsps,
            "tflops": self.peak_tflops,
        }[field]
        reference = self.paper[field]
        if reference == 0:
            return 0.0 if ours == 0 else float("inf")
        return ours / reference - 1.0


def _measure(config: AcceleratorConfig, device: FPGAModel, paper: dict) -> Table2Row:
    design = generate_accelerator(config)
    demand = design_resources(design)
    return Table2Row(
        instance=config.name,
        device=device.name,
        tiles=config.tiles,
        resources=demand,
        utilisation=demand.utilisation(device.resources),
        frequency_hz=achieved_frequency(
            device, demand, FloorplanQuality.FLOORPLANNED
        ),
        peak_tflops=to_tflops(
            config.with_frequency(device.frequency_hz).peak_flops
        ),
        paper=paper,
    )


def run_table2() -> list:
    """Measure both baseline instances; returns the two rows."""
    rows = []
    for config in (BW_V37, BW_K115):
        paper = PAPER_TABLE2[config.name]
        device = DEVICE_TYPES[paper["device"]]
        rows.append(_measure(config, device, paper))
    return rows


def render(rows: list) -> str:
    """The Table 2 layout with paper values in parentheses."""
    body = []
    for row in rows:
        util = row.utilisation
        paper = row.paper

        def cell(ours: float, reference: float, util_key: str | None = None) -> str:
            text = f"{ours:,.0f}"
            if util_key is not None and util[util_key] == util[util_key]:
                text += f" ({util[util_key] * 100:.1f}%)"
            return f"{text} [paper {reference:,.0f}]"

        body.append(
            [
                row.instance,
                row.device,
                row.tiles,
                cell(row.resources.luts / 1e3, paper["luts"] / 1e3, "luts"),
                cell(row.resources.ffs / 1e3, paper["ffs"] / 1e3, "ffs"),
                cell(to_mbit(row.resources.bram_bits), paper["bram_mb"], "bram_bits"),
                cell(to_mbit(row.resources.uram_bits), paper["uram_mb"], "uram_bits"),
                cell(row.resources.dsps, paper["dsps"], "dsps"),
                f"{to_mhz(row.frequency_hz):.0f}",
                f"{row.peak_tflops:.1f} [paper {paper['tflops']}]",
            ]
        )
    return format_table(
        [
            "Instance", "Device", "#Tiles", "kLUTs", "kDFFs", "BRAM(Mb)",
            "URAM(Mb)", "DSPs", "Freq(MHz)", "Peak TFLOPS",
        ],
        body,
        title="Table 2: baseline accelerator implementation results",
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run_table2()))
