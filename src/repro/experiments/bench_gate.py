"""CI bench regression gate: compare a fresh smoke ``BENCH_fig12.json``
against the committed baseline and fail on real slowdowns.

Wall-clock is the gating metric: more than ``--tolerance`` (default 25%)
over the baseline fails the build — generous enough to absorb shared-runner
noise, tight enough to catch an accidentally re-quadratic allocator.  The
deterministic work counters (placement attempts, DES events) are compared
exactly but only *warn* on drift: a drift there is intentional behaviour
change territory, and the golden tests — not this gate — decide whether it
is correct.  Refresh the baseline when a PR legitimately changes the
counters or the smoke workload::

    PYTHONPATH=src python -m repro.experiments.bench_fig12 --smoke \
        --output benchmarks/baselines/BENCH_fig12_smoke.json

The gate also (optionally, via ``--serving-current``) checks the serving
smoke report: the overload gate point must still pass, and its
admitted-request SLO attainment may not drop more than 5 percentage
points below the committed baseline.  Refresh that baseline with::

    PYTHONPATH=src python -m repro.experiments.bench_serving --smoke \
        --output benchmarks/baselines/BENCH_serving_smoke.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_BASELINE = "benchmarks/baselines/BENCH_fig12_smoke.json"
DEFAULT_TOLERANCE = 0.25

SERVING_BASELINE = "benchmarks/baselines/BENCH_serving_smoke.json"
#: Allowed drop in admitted-request SLO attainment at the gate point
#: (5 percentage points).
SLO_DROP_TOLERANCE = 0.05

#: Deterministic work counters (exact comparison, warnings only).
COUNTER_KEYS = (
    "find_placement_calls",
    "deploy_calls",
    "fast_rejects",
    "try_start_attempts",
    "watermark_skips",
)


def compare(current: dict, baseline: dict, tolerance: float) -> tuple:
    """Returns ``(failures, warnings)`` message lists."""
    failures: list = []
    warnings: list = []
    if current["scale"] != baseline["scale"]:
        failures.append(
            f"scale mismatch: current {current['scale']} vs baseline "
            f"{baseline['scale']} — comparing different workloads"
        )
        return failures, warnings
    base_wall = baseline["wall_s"]["after"]
    cur_wall = current["wall_s"]["after"]
    ratio = cur_wall / base_wall if base_wall else float("inf")
    if ratio > 1.0 + tolerance:
        failures.append(
            f"wall-clock regression: {cur_wall:.2f}s vs baseline "
            f"{base_wall:.2f}s ({ratio:.2f}x, tolerance "
            f"{1.0 + tolerance:.2f}x)"
        )
    else:
        warnings.append(
            f"wall-clock: {cur_wall:.2f}s vs baseline {base_wall:.2f}s "
            f"({ratio:.2f}x) — within tolerance"
        )
    for key in COUNTER_KEYS:
        cur = current["placement"].get(key)
        base = baseline["placement"].get(key)
        if cur != base:
            warnings.append(
                f"counter drift: placement.{key} {base} -> {cur} "
                f"(behaviour change — the golden tests arbitrate)"
            )
    if current.get("events") != baseline.get("events"):
        warnings.append(
            f"counter drift: simulator events "
            f"{baseline.get('events')} -> {current.get('events')}"
        )
    return failures, warnings


def compare_serving(
    current: dict, baseline: dict, slo_tolerance: float = SLO_DROP_TOLERANCE
) -> tuple:
    """SLO-attainment gate on the serving smoke report: ``(failures,
    warnings)``.  Fails when the overload gate point no longer passes or
    its SLO attainment regressed more than ``slo_tolerance`` below the
    committed baseline; latency/shed drift only warns (the bench's own
    ``gate.pass`` bounds the absolutes)."""
    failures: list = []
    warnings: list = []
    cur_work = current["workload"]
    base_work = baseline["workload"]
    if cur_work["task_count"] != base_work["task_count"]:
        failures.append(
            f"serving scale mismatch: current {cur_work['task_count']} "
            f"tasks vs baseline {base_work['task_count']} — comparing "
            f"different workloads"
        )
        return failures, warnings
    cur_gate = current["gate"]
    base_gate = baseline["gate"]
    if not cur_gate["pass"]:
        failures.append(
            f"serving gate point failed outright: SLO "
            f"{cur_gate['slo_admitted']:.3f} (floor "
            f"{cur_gate['slo_floor']}), p99 "
            f"{cur_gate['p99_latency_s'] * 1e3:.1f} ms (bound "
            f"{cur_gate['p99_bound_s'] * 1e3:.0f} ms)"
        )
    drop = base_gate["slo_admitted"] - cur_gate["slo_admitted"]
    if drop > slo_tolerance:
        failures.append(
            f"serving SLO regression: attainment "
            f"{cur_gate['slo_admitted']:.3f} vs baseline "
            f"{base_gate['slo_admitted']:.3f} "
            f"({drop * 100:.1f} pp drop, tolerance "
            f"{slo_tolerance * 100:.0f} pp)"
        )
    else:
        warnings.append(
            f"serving SLO: {cur_gate['slo_admitted']:.3f} vs baseline "
            f"{base_gate['slo_admitted']:.3f} — within tolerance"
        )
    if cur_gate["p99_latency_s"] > 1.25 * base_gate["p99_latency_s"]:
        warnings.append(
            f"serving p99 drift: {cur_gate['p99_latency_s'] * 1e3:.1f} ms "
            f"vs baseline {base_gate['p99_latency_s'] * 1e3:.1f} ms "
            f"(still inside the gate's absolute bound)"
        )
    return failures, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", default="BENCH_fig12.json",
                        help="freshly produced smoke report")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed reference report")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional wall-clock slowdown "
                        "(default 0.25)")
    parser.add_argument("--serving-current", default=None,
                        help="freshly produced serving smoke report "
                        "(omit to skip the serving gate)")
    parser.add_argument("--serving-baseline", default=SERVING_BASELINE,
                        help="committed serving reference report")
    args = parser.parse_args(argv)
    current = json.loads(pathlib.Path(args.current).read_text())
    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    failures, warnings = compare(current, baseline, args.tolerance)
    if args.serving_current:
        serving_current = json.loads(
            pathlib.Path(args.serving_current).read_text()
        )
        serving_baseline = json.loads(
            pathlib.Path(args.serving_baseline).read_text()
        )
        serving_failures, serving_warnings = compare_serving(
            serving_current, serving_baseline
        )
        failures.extend(serving_failures)
        warnings.extend(serving_warnings)
    for message in warnings:
        print(f"[warn] {message}")
    for message in failures:
        print(f"[FAIL] {message}")
    if failures:
        return 1
    print("bench gate: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - CI driver
    sys.exit(main())
