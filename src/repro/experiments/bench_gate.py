"""CI bench regression gate: compare a fresh smoke ``BENCH_fig12.json``
against the committed baseline and fail on real slowdowns.

Wall-clock is the gating metric: more than ``--tolerance`` (default 25%)
over the baseline fails the build — generous enough to absorb shared-runner
noise, tight enough to catch an accidentally re-quadratic allocator.  The
deterministic work counters (placement attempts, DES events) are compared
exactly but only *warn* on drift: a drift there is intentional behaviour
change territory, and the golden tests — not this gate — decide whether it
is correct.  Refresh the baseline when a PR legitimately changes the
counters or the smoke workload::

    PYTHONPATH=src python -m repro.experiments.bench_fig12 --smoke \
        --output benchmarks/baselines/BENCH_fig12_smoke.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_BASELINE = "benchmarks/baselines/BENCH_fig12_smoke.json"
DEFAULT_TOLERANCE = 0.25

#: Deterministic work counters (exact comparison, warnings only).
COUNTER_KEYS = (
    "find_placement_calls",
    "deploy_calls",
    "fast_rejects",
    "try_start_attempts",
    "watermark_skips",
)


def compare(current: dict, baseline: dict, tolerance: float) -> tuple:
    """Returns ``(failures, warnings)`` message lists."""
    failures: list = []
    warnings: list = []
    if current["scale"] != baseline["scale"]:
        failures.append(
            f"scale mismatch: current {current['scale']} vs baseline "
            f"{baseline['scale']} — comparing different workloads"
        )
        return failures, warnings
    base_wall = baseline["wall_s"]["after"]
    cur_wall = current["wall_s"]["after"]
    ratio = cur_wall / base_wall if base_wall else float("inf")
    if ratio > 1.0 + tolerance:
        failures.append(
            f"wall-clock regression: {cur_wall:.2f}s vs baseline "
            f"{base_wall:.2f}s ({ratio:.2f}x, tolerance "
            f"{1.0 + tolerance:.2f}x)"
        )
    else:
        warnings.append(
            f"wall-clock: {cur_wall:.2f}s vs baseline {base_wall:.2f}s "
            f"({ratio:.2f}x) — within tolerance"
        )
    for key in COUNTER_KEYS:
        cur = current["placement"].get(key)
        base = baseline["placement"].get(key)
        if cur != base:
            warnings.append(
                f"counter drift: placement.{key} {base} -> {cur} "
                f"(behaviour change — the golden tests arbitrate)"
            )
    if current.get("events") != baseline.get("events"):
        warnings.append(
            f"counter drift: simulator events "
            f"{baseline.get('events')} -> {current.get('events')}"
        )
    return failures, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", default="BENCH_fig12.json",
                        help="freshly produced smoke report")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed reference report")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional wall-clock slowdown "
                        "(default 0.25)")
    args = parser.parse_args(argv)
    current = json.loads(pathlib.Path(args.current).read_text())
    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    failures, warnings = compare(current, baseline, args.tolerance)
    for message in warnings:
        print(f"[warn] {message}")
    for message in failures:
        print(f"[FAIL] {message}")
    if failures:
        return 1
    print("bench gate: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - CI driver
    sys.exit(main())
