"""CI bench regression gate: compare a fresh smoke ``BENCH_fig12.json``
against the committed baseline and fail on real slowdowns.

Wall-clock is the gating metric: more than ``--tolerance`` (default 25%)
over the baseline fails the build — generous enough to absorb shared-runner
noise, tight enough to catch an accidentally re-quadratic allocator.  The
deterministic work counters (placement attempts, DES events) are compared
exactly but only *warn* on drift: a drift there is intentional behaviour
change territory, and the golden tests — not this gate — decide whether it
is correct.  Refresh the baseline when a PR legitimately changes the
counters or the smoke workload::

    PYTHONPATH=src python -m repro.experiments.bench_fig12 --smoke \
        --output benchmarks/baselines/BENCH_fig12_smoke.json

The gate also (optionally, via ``--serving-current``) checks the serving
smoke report: the overload gate point must still pass, and its
admitted-request SLO attainment may not drop more than 5 percentage
points below the committed baseline.  Refresh that baseline with::

    PYTHONPATH=src python -m repro.experiments.bench_serving --smoke \
        --output benchmarks/baselines/BENCH_serving_smoke.json

And (optionally, via ``--batch-current``) the batched-simulation smoke
report: batched outputs must stay bit-identical to scalar, the gate
point's speedup floor must hold, and the measured batched-vs-scalar
speedup may not drop more than 25% below the committed baseline.  The
speedup is a within-run ratio, so this gate is insensitive to absolute
runner speed.  Refresh with::

    PYTHONPATH=src python -m repro.experiments.bench_batch --smoke \
        --output benchmarks/baselines/BENCH_batch_smoke.json

And (optionally, via ``--scale-current``) the cluster-scale smoke report:
the pod-routed schedules must stay bit-identical to the flat control
runs, board probes per placement search must keep growing sub-linearly
in board count, and the largest point's wall-clock gets the same
``--tolerance`` bound as the fig12 gate.  Refresh with::

    PYTHONPATH=src python -m repro.experiments.bench_scale --smoke \
        --output benchmarks/baselines/BENCH_scale_smoke.json

And (optionally, via ``--autoscale-current``) the elastic-autoscaling
smoke report: every trace's own gate must still pass (SLO within its
margin of the static-peak arm, replica-second savings at or above the
absolute floor), and the measured savings may not regress more than 25%
below the committed baseline.  Savings are a within-run ratio of the two
arms, so this gate is insensitive to absolute runner speed.  Refresh
with::

    PYTHONPATH=src python -m repro.experiments.bench_autoscale --smoke \
        --output benchmarks/baselines/BENCH_autoscale_smoke.json

And (optionally, via ``--tenancy-current``) the multi-tenancy smoke
report: the tenancy arm's own gate must still pass (zero quota
violations, premium p99 within its solo-run bound, every preempted task
recovered), and the premium tenant's mixed-arm p99 may not regress more
than 25% over the committed baseline.  Refresh with::

    PYTHONPATH=src python -m repro.experiments.bench_tenancy --smoke \
        --output benchmarks/baselines/BENCH_tenancy_smoke.json

``--all-current`` runs every gate at once against the default produced
report names (``BENCH_fig12.json``, ``BENCH_serving.json``,
``BENCH_batch.json``, ``BENCH_scale.json``, ``BENCH_autoscale.json``,
``BENCH_tenancy.json``) and the committed baselines — the single CI
entry point.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_BASELINE = "benchmarks/baselines/BENCH_fig12_smoke.json"
DEFAULT_TOLERANCE = 0.25

SERVING_BASELINE = "benchmarks/baselines/BENCH_serving_smoke.json"
#: Allowed drop in admitted-request SLO attainment at the gate point
#: (5 percentage points).
SLO_DROP_TOLERANCE = 0.05

BATCH_BASELINE = "benchmarks/baselines/BENCH_batch_smoke.json"
#: Allowed fractional drop in batched-vs-scalar speedup at the gate batch.
BATCH_SPEEDUP_DROP_TOLERANCE = 0.25

SCALE_BASELINE = "benchmarks/baselines/BENCH_scale_smoke.json"

AUTOSCALE_BASELINE = "benchmarks/baselines/BENCH_autoscale_smoke.json"
#: Allowed fractional drop in replica-second savings vs the baseline.
AUTOSCALE_SAVINGS_DROP_TOLERANCE = 0.25

TENANCY_BASELINE = "benchmarks/baselines/BENCH_tenancy_smoke.json"
#: Allowed fractional growth of the premium tenant's mixed-arm p99 over
#: the committed baseline.
TENANCY_P99_DRIFT_TOLERANCE = 0.25

#: ``--all-current`` shorthand: every gate's default produced report.
ALL_CURRENT_DEFAULTS = {
    "current": "BENCH_fig12.json",
    "serving_current": "BENCH_serving.json",
    "batch_current": "BENCH_batch.json",
    "scale_current": "BENCH_scale.json",
    "autoscale_current": "BENCH_autoscale.json",
    "tenancy_current": "BENCH_tenancy.json",
}

#: Deterministic work counters (exact comparison, warnings only).
COUNTER_KEYS = (
    "find_placement_calls",
    "deploy_calls",
    "fast_rejects",
    "try_start_attempts",
    "watermark_skips",
)


def compare(current: dict, baseline: dict, tolerance: float) -> tuple:
    """Returns ``(failures, warnings)`` message lists."""
    failures: list = []
    warnings: list = []
    if current["scale"] != baseline["scale"]:
        failures.append(
            f"scale mismatch: current {current['scale']} vs baseline "
            f"{baseline['scale']} — comparing different workloads"
        )
        return failures, warnings
    base_wall = baseline["wall_s"]["after"]
    cur_wall = current["wall_s"]["after"]
    ratio = cur_wall / base_wall if base_wall else float("inf")
    if ratio > 1.0 + tolerance:
        failures.append(
            f"wall-clock regression: {cur_wall:.2f}s vs baseline "
            f"{base_wall:.2f}s ({ratio:.2f}x, tolerance "
            f"{1.0 + tolerance:.2f}x)"
        )
    else:
        warnings.append(
            f"wall-clock: {cur_wall:.2f}s vs baseline {base_wall:.2f}s "
            f"({ratio:.2f}x) — within tolerance"
        )
    for key in COUNTER_KEYS:
        cur = current["placement"].get(key)
        base = baseline["placement"].get(key)
        if cur != base:
            warnings.append(
                f"counter drift: placement.{key} {base} -> {cur} "
                f"(behaviour change — the golden tests arbitrate)"
            )
    if current.get("events") != baseline.get("events"):
        warnings.append(
            f"counter drift: simulator events "
            f"{baseline.get('events')} -> {current.get('events')}"
        )
    return failures, warnings


def compare_serving(
    current: dict, baseline: dict, slo_tolerance: float = SLO_DROP_TOLERANCE
) -> tuple:
    """SLO-attainment gate on the serving smoke report: ``(failures,
    warnings)``.  Fails when the overload gate point no longer passes or
    its SLO attainment regressed more than ``slo_tolerance`` below the
    committed baseline; latency/shed drift only warns (the bench's own
    ``gate.pass`` bounds the absolutes)."""
    failures: list = []
    warnings: list = []
    cur_work = current["workload"]
    base_work = baseline["workload"]
    if cur_work["task_count"] != base_work["task_count"]:
        failures.append(
            f"serving scale mismatch: current {cur_work['task_count']} "
            f"tasks vs baseline {base_work['task_count']} — comparing "
            f"different workloads"
        )
        return failures, warnings
    cur_gate = current["gate"]
    base_gate = baseline["gate"]
    if not cur_gate["pass"]:
        failures.append(
            f"serving gate point failed outright: SLO "
            f"{cur_gate['slo_admitted']:.3f} (floor "
            f"{cur_gate['slo_floor']}), p99 "
            f"{cur_gate['p99_latency_s'] * 1e3:.1f} ms (bound "
            f"{cur_gate['p99_bound_s'] * 1e3:.0f} ms)"
        )
    drop = base_gate["slo_admitted"] - cur_gate["slo_admitted"]
    if drop > slo_tolerance:
        failures.append(
            f"serving SLO regression: attainment "
            f"{cur_gate['slo_admitted']:.3f} vs baseline "
            f"{base_gate['slo_admitted']:.3f} "
            f"({drop * 100:.1f} pp drop, tolerance "
            f"{slo_tolerance * 100:.0f} pp)"
        )
    else:
        warnings.append(
            f"serving SLO: {cur_gate['slo_admitted']:.3f} vs baseline "
            f"{base_gate['slo_admitted']:.3f} — within tolerance"
        )
    if cur_gate["p99_latency_s"] > 1.25 * base_gate["p99_latency_s"]:
        warnings.append(
            f"serving p99 drift: {cur_gate['p99_latency_s'] * 1e3:.1f} ms "
            f"vs baseline {base_gate['p99_latency_s'] * 1e3:.1f} ms "
            f"(still inside the gate's absolute bound)"
        )
    return failures, warnings


def compare_batch(
    current: dict,
    baseline: dict,
    drop_tolerance: float = BATCH_SPEEDUP_DROP_TOLERANCE,
) -> tuple:
    """Batched-throughput regression gate: ``(failures, warnings)``.

    Hard failures: any non-bit-identical point (the batched path's
    correctness contract), the gate point's absolute speedup floor no
    longer holding, or a per-model speedup more than ``drop_tolerance``
    below the committed baseline.
    """
    failures: list = []
    warnings: list = []
    cur_scale = current["scale"]
    base_scale = baseline["scale"]
    if (
        cur_scale["requests"] != base_scale["requests"]
        or cur_scale["models"] != base_scale["models"]
    ):
        failures.append(
            f"batch scale mismatch: current {cur_scale} vs baseline "
            f"{base_scale} — comparing different workloads"
        )
        return failures, warnings
    cur_gate = current["gate"]
    base_gate = baseline["gate"]
    if not cur_gate["bit_identical"]:
        failures.append(
            "batched outputs no longer bit-identical to the scalar "
            "simulator (see the report's per-point bit_identical flags)"
        )
    if not cur_gate["pass"]:
        failures.append(
            f"batch gate point failed outright: speedups "
            f"{cur_gate['speedups']} (floor {cur_gate['speedup_floor']}x "
            f"at batch {cur_gate['batch']})"
        )
    for model, base_speedup in base_gate["speedups"].items():
        cur_speedup = cur_gate["speedups"].get(model)
        if cur_speedup is None:
            failures.append(f"batch gate lost model {model}")
            continue
        floor = base_speedup * (1.0 - drop_tolerance)
        if cur_speedup < floor:
            failures.append(
                f"batched speedup regression on {model}: "
                f"{cur_speedup:.2f}x vs baseline {base_speedup:.2f}x "
                f"(floor {floor:.2f}x at {drop_tolerance * 100:.0f}% drop)"
            )
        else:
            warnings.append(
                f"batched speedup on {model}: {cur_speedup:.2f}x vs "
                f"baseline {base_speedup:.2f}x — within tolerance"
            )
    return failures, warnings


def compare_scale(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> tuple:
    """Cluster-scale regression gate: ``(failures, warnings)``.

    Hard failures: scale mismatch, any pod-vs-flat schedule divergence,
    a sub-linearity gate failure, or the largest point's pod wall-clock
    exceeding the baseline by more than ``tolerance``.  Per-point probe
    and event drift only warns (deterministic counters; the equivalence
    tests arbitrate behaviour changes)."""
    failures: list = []
    warnings: list = []
    if current["scale"] != baseline["scale"]:
        failures.append(
            f"scale-bench mismatch: current {current['scale']} vs baseline "
            f"{baseline['scale']} — comparing different sweeps"
        )
        return failures, warnings
    cur_gate = current["gate"]
    if not cur_gate["pod_flat_identical"]:
        diverged = [
            p["boards"]
            for p in current["points"]
            if not p["identical_to_flat"]
        ]
        failures.append(
            f"pod-routed schedules diverged from flat control at "
            f"{diverged} boards (equivalence contract broken)"
        )
    if not cur_gate["sublinear"]:
        failures.append(
            f"probe growth no longer sub-linear: {cur_gate['probe_growth']:.2f}x "
            f"probes vs {cur_gate['board_growth']:.0f}x boards (allowed "
            f"fraction {cur_gate['sublinear_fraction']})"
        )
    cur_wall = current["points"][-1]["pod"]["wall_s"]
    base_wall = baseline["points"][-1]["pod"]["wall_s"]
    ratio = cur_wall / base_wall if base_wall else float("inf")
    if ratio > 1.0 + tolerance:
        failures.append(
            f"scale wall-clock regression at "
            f"{current['points'][-1]['boards']} boards: {cur_wall:.2f}s vs "
            f"baseline {base_wall:.2f}s ({ratio:.2f}x, tolerance "
            f"{1.0 + tolerance:.2f}x)"
        )
    else:
        warnings.append(
            f"scale wall-clock: {cur_wall:.2f}s vs baseline "
            f"{base_wall:.2f}s ({ratio:.2f}x) — within tolerance"
        )
    for cur_point, base_point in zip(current["points"], baseline["points"]):
        for key in ("placement_searches", "boards_probed", "events"):
            cur = cur_point["pod"].get(key)
            base = base_point["pod"].get(key)
            if cur != base:
                warnings.append(
                    f"counter drift at {cur_point['boards']} boards: "
                    f"pod.{key} {base} -> {cur} (behaviour change — the "
                    f"equivalence tests arbitrate)"
                )
    return failures, warnings


def compare_autoscale(
    current: dict,
    baseline: dict,
    drop_tolerance: float = AUTOSCALE_SAVINGS_DROP_TOLERANCE,
) -> tuple:
    """Elastic-autoscaling regression gate: ``(failures, warnings)``.

    Hard failures: workload mismatch, any trace whose own gate no longer
    passes (SLO fell more than the bench's margin below the static-peak
    arm, or replica-second savings dipped under the absolute floor), or a
    trace's savings more than ``drop_tolerance`` below the committed
    baseline.  SLO-delta drift inside the margin only warns.
    """
    failures: list = []
    warnings: list = []
    cur_work = current["workload"]
    base_work = baseline["workload"]
    if (
        cur_work["task_count"] != base_work["task_count"]
        or cur_work["traces"] != base_work["traces"]
    ):
        failures.append(
            f"autoscale scale mismatch: current {cur_work['task_count']} "
            f"tasks over {cur_work['traces']} vs baseline "
            f"{base_work['task_count']} over {base_work['traces']} — "
            f"comparing different workloads"
        )
        return failures, warnings
    cur_gate = current["gate"]
    base_gate = baseline["gate"]
    for trace, base_point in base_gate["per_trace"].items():
        cur_point = cur_gate["per_trace"].get(trace)
        if cur_point is None:
            failures.append(f"autoscale gate lost trace {trace}")
            continue
        if not cur_point["pass"]:
            failures.append(
                f"autoscale gate failed outright on {trace}: dSLO "
                f"{cur_point['slo_delta_pp']:.2f} pp (margin "
                f"{cur_gate['slo_margin_pp']} pp), savings "
                f"{cur_point['replica_second_savings']:.1%} (floor "
                f"{cur_gate['savings_floor']:.0%})"
            )
            continue
        base_savings = base_point["replica_second_savings"]
        cur_savings = cur_point["replica_second_savings"]
        floor = base_savings * (1.0 - drop_tolerance)
        if cur_savings < floor:
            failures.append(
                f"autoscale savings regression on {trace}: "
                f"{cur_savings:.1%} vs baseline {base_savings:.1%} "
                f"(floor {floor:.1%} at {drop_tolerance * 100:.0f}% drop)"
            )
        else:
            warnings.append(
                f"autoscale savings on {trace}: {cur_savings:.1%} vs "
                f"baseline {base_savings:.1%}, dSLO "
                f"{cur_point['slo_delta_pp']:.2f} pp — within tolerance"
            )
    return failures, warnings


def compare_tenancy(
    current: dict,
    baseline: dict,
    drift_tolerance: float = TENANCY_P99_DRIFT_TOLERANCE,
) -> tuple:
    """Multi-tenancy regression gate: ``(failures, warnings)``.

    Hard failures: workload mismatch, any quota violation (the ledger's
    per-tenant peak resident usage exceeded a quota — the layer's
    zero-violation contract), the bench's own gate no longer passing
    (premium p99 out of its solo-run bound, or a preempted task never
    completing), or the premium tenant's mixed-arm p99 more than
    ``drift_tolerance`` above the committed baseline.  Preemption-count
    drift only warns (deterministic counters; the tenancy tests
    arbitrate behaviour changes).

    Unlike the other gates, a workload mismatch is not fatal: the
    zero-violation / recovery / p99-bound checks are intrinsic to the
    run (each arm carries its own solo reference), so the nightly
    full-scale report is gated on those and only the baseline-drift
    comparison is skipped, with a warning."""
    failures: list = []
    warnings: list = []
    cur_work = current["workload"]
    base_work = baseline["workload"]
    same_workload = (
        cur_work["task_count"] == base_work["task_count"]
        and cur_work["boards"] == base_work["boards"]
    )
    if not same_workload:
        warnings.append(
            f"tenancy workload differs from baseline: "
            f"{cur_work['task_count']} tasks on {cur_work['boards']} "
            f"boards vs baseline {base_work['task_count']} on "
            f"{base_work['boards']} — intrinsic checks only, baseline "
            f"drift comparison skipped"
        )
    cur_gate = current["gate"]
    base_gate = baseline["gate"]
    if cur_gate["quota_violations"]:
        failures.append(
            f"tenant quota violated: {cur_gate['quota_violations']} "
            f"(the quota guard's zero-violation contract is broken)"
        )
    if cur_gate["recovery_rate"] < 1.0:
        failures.append(
            f"preempted work lost: recovery rate "
            f"{cur_gate['recovery_rate']:.3f} < 1.0 "
            f"({cur_gate['tasks_preempted']} preemptions)"
        )
    if not cur_gate["pass"]:
        failures.append(
            f"tenancy gate point failed outright: premium p99 "
            f"{cur_gate['premium_mixed_p99_s'] * 1e3:.2f} ms vs solo "
            f"{cur_gate['premium_solo_p99_s'] * 1e3:.2f} ms "
            f"(bound {cur_gate['p99_bound_factor']:g}x)"
        )
    if not same_workload:
        return failures, warnings
    base_p99 = base_gate["premium_mixed_p99_s"]
    cur_p99 = cur_gate["premium_mixed_p99_s"]
    ceiling = base_p99 * (1.0 + drift_tolerance)
    if base_p99 and cur_p99 > ceiling:
        failures.append(
            f"premium p99 regression: {cur_p99 * 1e3:.2f} ms vs baseline "
            f"{base_p99 * 1e3:.2f} ms (ceiling {ceiling * 1e3:.2f} ms at "
            f"{drift_tolerance * 100:.0f}% drift)"
        )
    else:
        warnings.append(
            f"tenancy premium p99: {cur_p99 * 1e3:.2f} ms vs baseline "
            f"{base_p99 * 1e3:.2f} ms — within tolerance"
        )
    cur_tenancy = current["mixed_tenancy"]["tenancy"]
    base_tenancy = baseline["mixed_tenancy"]["tenancy"]
    for key in ("preemption_sweeps", "tasks_preempted", "quota_sheds"):
        if cur_tenancy.get(key) != base_tenancy.get(key):
            warnings.append(
                f"counter drift: tenancy.{key} "
                f"{base_tenancy.get(key)} -> {cur_tenancy.get(key)} "
                f"(behaviour change — the tenancy tests arbitrate)"
            )
    return failures, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", default="BENCH_fig12.json",
                        help="freshly produced smoke report (pass an empty "
                        "string to skip the fig12 gate, e.g. when gating a "
                        "full-scale report that has no smoke counterpart)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed reference report")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional wall-clock slowdown "
                        "(default 0.25)")
    parser.add_argument("--serving-current", default=None,
                        help="freshly produced serving smoke report "
                        "(omit to skip the serving gate)")
    parser.add_argument("--serving-baseline", default=SERVING_BASELINE,
                        help="committed serving reference report")
    parser.add_argument("--batch-current", default=None,
                        help="freshly produced batched-simulation smoke "
                        "report (omit to skip the batch gate)")
    parser.add_argument("--batch-baseline", default=BATCH_BASELINE,
                        help="committed batched-simulation reference report")
    parser.add_argument("--scale-current", default=None,
                        help="freshly produced cluster-scale smoke report "
                        "(omit to skip the scale gate)")
    parser.add_argument("--scale-baseline", default=SCALE_BASELINE,
                        help="committed cluster-scale reference report")
    parser.add_argument("--autoscale-current", default=None,
                        help="freshly produced autoscaling smoke report "
                        "(omit to skip the autoscale gate)")
    parser.add_argument("--autoscale-baseline", default=AUTOSCALE_BASELINE,
                        help="committed autoscaling reference report")
    parser.add_argument("--tenancy-current", default=None,
                        help="freshly produced multi-tenancy smoke report "
                        "(omit to skip the tenancy gate)")
    parser.add_argument("--tenancy-baseline", default=TENANCY_BASELINE,
                        help="committed multi-tenancy reference report")
    parser.add_argument("--all-current", action="store_true",
                        help="run every gate against the default produced "
                        "report names and committed baselines (the single "
                        "CI entry point)")
    args = parser.parse_args(argv)
    if args.all_current:
        for attr, default in ALL_CURRENT_DEFAULTS.items():
            if getattr(args, attr) in (None, parser.get_default(attr)):
                setattr(args, attr, default)
    failures: list = []
    warnings: list = []
    if args.current:
        current = json.loads(pathlib.Path(args.current).read_text())
        baseline = json.loads(pathlib.Path(args.baseline).read_text())
        failures, warnings = compare(current, baseline, args.tolerance)
    if args.serving_current:
        serving_current = json.loads(
            pathlib.Path(args.serving_current).read_text()
        )
        serving_baseline = json.loads(
            pathlib.Path(args.serving_baseline).read_text()
        )
        serving_failures, serving_warnings = compare_serving(
            serving_current, serving_baseline
        )
        failures.extend(serving_failures)
        warnings.extend(serving_warnings)
    if args.batch_current:
        batch_current = json.loads(pathlib.Path(args.batch_current).read_text())
        batch_baseline = json.loads(
            pathlib.Path(args.batch_baseline).read_text()
        )
        batch_failures, batch_warnings = compare_batch(
            batch_current, batch_baseline
        )
        failures.extend(batch_failures)
        warnings.extend(batch_warnings)
    if args.scale_current:
        scale_current = json.loads(pathlib.Path(args.scale_current).read_text())
        scale_baseline = json.loads(
            pathlib.Path(args.scale_baseline).read_text()
        )
        scale_failures, scale_warnings = compare_scale(
            scale_current, scale_baseline, args.tolerance
        )
        failures.extend(scale_failures)
        warnings.extend(scale_warnings)
    if args.autoscale_current:
        autoscale_current = json.loads(
            pathlib.Path(args.autoscale_current).read_text()
        )
        autoscale_baseline = json.loads(
            pathlib.Path(args.autoscale_baseline).read_text()
        )
        autoscale_failures, autoscale_warnings = compare_autoscale(
            autoscale_current, autoscale_baseline
        )
        failures.extend(autoscale_failures)
        warnings.extend(autoscale_warnings)
    if args.tenancy_current:
        tenancy_current = json.loads(
            pathlib.Path(args.tenancy_current).read_text()
        )
        tenancy_baseline = json.loads(
            pathlib.Path(args.tenancy_baseline).read_text()
        )
        tenancy_failures, tenancy_warnings = compare_tenancy(
            tenancy_current, tenancy_baseline
        )
        failures.extend(tenancy_failures)
        warnings.extend(tenancy_warnings)
    for message in warnings:
        print(f"[warn] {message}")
    for message in failures:
        print(f"[FAIL] {message}")
    if failures:
        return 1
    print("bench gate: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - CI driver
    sys.exit(main())
