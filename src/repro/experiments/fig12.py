"""Fig. 12 — aggregated system throughput on the ten Table-1 workload sets.

Runs the three systems (AS-ISA baseline, restricted same-type policy, the
proposed framework) on identical saturating task streams over the 3x
XCVU37P + 1x XCKU115 cluster, averaged over several seeds, and reports
tasks/second plus the ratios the paper headlines (2.54x over the baseline
on average, ~16% over the restricted policy).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..cluster import ClusterSimulator, paper_cluster
from ..perf.throughput import arithmetic_mean
from ..runtime import Catalog, build_system
from ..vital import VitalCompiler
from ..workloads import TABLE1_COMPOSITIONS, WorkloadComposition, generate_workload
from .report import format_table

SYSTEMS = ("baseline", "restricted", "proposed")


@dataclass
class Fig12Row:
    """Throughput of the three systems on one workload set."""

    composition: WorkloadComposition
    throughput: dict = field(default_factory=dict)

    @property
    def speedup_vs_baseline(self) -> float:
        return self.throughput["proposed"] / self.throughput["baseline"]

    @property
    def speedup_vs_restricted(self) -> float:
        return self.throughput["proposed"] / self.throughput["restricted"]


def run_fig12(
    compositions=TABLE1_COMPOSITIONS,
    task_count: int = 150,
    arrival_rate_per_s: float = 1e5,
    seeds=(1, 2, 3),
) -> list:
    """Run every composition under every system; average over seeds."""
    rows = []
    for composition in compositions:
        sums = {name: 0.0 for name in SYSTEMS}
        for seed in seeds:
            tasks = generate_workload(
                composition,
                task_count=task_count,
                arrival_rate_per_s=arrival_rate_per_s,
                seed=seed * 1000 + composition.index,
            )
            for name in SYSTEMS:
                cluster = paper_cluster()
                catalog = Catalog(VitalCompiler())
                system = build_system(name, cluster, catalog)
                result = ClusterSimulator(system, name).run(
                    [copy.deepcopy(task) for task in tasks]
                )
                sums[name] += result.throughput
        rows.append(
            Fig12Row(
                composition=composition,
                throughput={
                    name: total / len(seeds) for name, total in sums.items()
                },
            )
        )
    return rows


def average_speedups(rows: list) -> tuple:
    """(mean speedup vs baseline, mean speedup vs restricted)."""
    return (
        arithmetic_mean(row.speedup_vs_baseline for row in rows),
        arithmetic_mean(row.speedup_vs_restricted for row in rows),
    )


def render(rows: list) -> str:
    body = []
    for row in rows:
        body.append(
            [
                row.composition.index,
                row.composition.describe(),
                f"{row.throughput['baseline']:.1f}",
                f"{row.throughput['restricted']:.1f}",
                f"{row.throughput['proposed']:.1f}",
                f"{row.speedup_vs_baseline:.2f}x",
                f"{row.speedup_vs_restricted:.2f}x",
            ]
        )
    from .charts import grouped_bar_chart

    chart = grouped_bar_chart(
        [
            f"set {row.composition.index} ({row.composition.describe()})"
            for row in rows
        ],
        {name: [row.throughput[name] for row in rows] for name in SYSTEMS},
        y_label="throughput, tasks/s",
    )
    vs_base, vs_restricted = average_speedups(rows)
    return (
        chart
        + "\n\n"
        + format_table(
            [
                "Set", "Composition", "Baseline (t/s)", "Restricted (t/s)",
                "Proposed (t/s)", "vs baseline", "vs restricted",
            ],
            body,
            title="Fig. 12: aggregated system throughput",
        )
        + f"\n\naverage speedup vs baseline:   {vs_base:.2f}x (paper: 2.54x)"
        + f"\naverage speedup vs restricted: {vs_restricted:.2f}x (paper: ~1.16x)"
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run_fig12()))
