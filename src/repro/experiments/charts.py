"""Terminal chart rendering for the figure experiments.

Figs. 11 and 12 are plots in the paper; these helpers render them as ASCII
charts so ``python -m repro fig11``/``fig12`` reproduce the *figures*, not
just their data tables.
"""

from __future__ import annotations

from ..errors import ReproError

#: Glyphs used to distinguish series in a line chart.
SERIES_GLYPHS = "ox+*#@"


def line_chart(
    xs: list,
    series: dict,
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more y-series over shared x values.

    ``series`` maps a name to a list of y values (same length as ``xs``).
    The y axis starts at zero so relative magnitudes read correctly.
    """
    if not xs or not series:
        raise ReproError("line_chart needs x values and at least one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ReproError(
                f"series {name!r} has {len(ys)} points for {len(xs)} xs"
            )

    y_max = max(max(ys) for ys in series.values())
    if y_max <= 0:
        raise ReproError("line_chart needs positive values")
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(sorted(series.items())):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for x, y in zip(xs, ys):
            column = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int(y / y_max * (height - 1))
            grid[row][column] = glyph

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:.3g} "
        elif row_index == height - 1:
            label = f"{0:.3g} ".rjust(len(f"{y_max:.3g} "))
        else:
            label = " " * len(f"{y_max:.3g} ")
        lines.append(label + "|" + "".join(row))
    axis_pad = " " * len(f"{y_max:.3g} ")
    lines.append(axis_pad + "+" + "-" * width)
    x_axis = f"{x_min:.3g}".ljust(width - 6) + f"{x_max:.3g}"
    lines.append(axis_pad + " " + x_axis)
    if x_label:
        lines.append(axis_pad + " " + x_label)
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} = {name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append("")
    lines.append(legend)
    if y_label:
        lines.insert(0, y_label)
    return "\n".join(lines)


def grouped_bar_chart(
    labels: list,
    groups: dict,
    width: int = 40,
    y_label: str = "",
) -> str:
    """Horizontal grouped bars: one row block per label, one bar per group.

    ``groups`` maps a series name to per-label values.
    """
    if not labels or not groups:
        raise ReproError("grouped_bar_chart needs labels and groups")
    for name, values in groups.items():
        if len(values) != len(labels):
            raise ReproError(
                f"group {name!r} has {len(values)} values for "
                f"{len(labels)} labels"
            )
    peak = max(max(values) for values in groups.values())
    if peak <= 0:
        raise ReproError("grouped_bar_chart needs positive values")

    name_width = max(len(str(name)) for name in groups)
    label_width = max(len(str(label)) for label in labels)
    lines = []
    if y_label:
        lines.append(f"{y_label} (full bar = {peak:.3g})")
    for index, label in enumerate(labels):
        lines.append(str(label).ljust(label_width))
        for name in groups:
            value = groups[name][index]
            bar = "#" * max(1, int(value / peak * width)) if value > 0 else ""
            lines.append(
                f"  {str(name).ljust(name_width)} |{bar} {value:.3g}"
            )
    return "\n".join(lines)
