"""Benchmark driver for the defragmentation subsystem.

Runs one fragmented-arrival workload twice through the proposed system —
defrag off, then defrag on — and emits ``BENCH_defrag.json`` comparing
placement-failure rate, throughput, eviction/migration counts and host
wall-clock, with the migration profiling counters attached.

The workload models the steady state that motivates compaction: a cluster
carrying long-lived small tenants whose neighbours have departed, leaving
every board with free blocks but none with a hole large enough for a big
model.  A mixed arrival stream then interleaves small-model traffic (which
keeps the resident tenants hot) with periodic large-model arrivals that
cannot place without either destructive eviction (defrag off) or live
compaction (defrag on).  Regenerate with::

    PYTHONPATH=src python -m repro.experiments.bench_defrag           # full
    PYTHONPATH=src python -m repro.experiments.bench_defrag --smoke   # CI
"""

from __future__ import annotations

import argparse
import copy
import json
import pathlib
import time

from ..cluster import ClusterSimulator, Task, paper_cluster
from ..perf.profiling import PROFILER
from ..runtime import Catalog, build_system
from ..vital import VitalCompiler

#: The small tenant whose shattered residents fragment the VU37P boards.
SMALL_MODEL = "gru-h512-t1"
#: The large arrival that needs a compacted hole (14 VU37P blocks).
LARGE_MODEL = "gru-h1536-t375"
#: A second small model for background traffic variety.
FILLER_MODEL = "lstm-h256-t150"

SMOKE_SMALL_TASKS = 30
FULL_SMALL_TASKS = 120
#: One large arrival per this many small ones.
LARGE_EVERY = 15
#: Background arrival spacing (seconds of simulated time).
ARRIVAL_GAP_S = 0.004


def _fragment_cluster(controller) -> None:
    """Shatter the cluster's free space before the measured stream.

    Pins the KU115 (modelling a tenant outside this experiment's control),
    fills the VU37P boards with 4-block small-model deployments, then
    evicts half of them in alternating positions: every board ends with 8
    free blocks — 24 free in aggregate, no 14-block hole anywhere.
    """
    ku115 = controller.cluster.board("ku115-0")
    ku115.allocate("external-tenant", ku115.free_blocks)
    deployments = [controller.deploy(SMALL_MODEL)[0] for _ in range(12)]
    by_board: dict[str, list] = {}
    for deployment in deployments:
        by_board.setdefault(deployment.placements[0].fpga_id, []).append(
            deployment
        )
    for residents in by_board.values():
        controller.evict(residents[0])
        controller.evict(residents[2])


def _build_tasks(small_tasks: int) -> list:
    """Deterministic mixed stream: small traffic with periodic large jobs."""
    tasks = []
    task_id = 0
    now = 0.0
    for index in range(small_tasks):
        key = SMALL_MODEL if index % 3 else FILLER_MODEL
        tasks.append(
            Task(task_id=task_id, model_key=key, arrival_s=now, size_class="S")
        )
        task_id += 1
        now += ARRIVAL_GAP_S
        if index % LARGE_EVERY == LARGE_EVERY - 1:
            tasks.append(
                Task(
                    task_id=task_id,
                    model_key=LARGE_MODEL,
                    arrival_s=now,
                    size_class="L",
                )
            )
            task_id += 1
            now += ARRIVAL_GAP_S
    return tasks


def _run_once(defrag: bool, tasks: list) -> dict:
    """One full run; returns the per-config metrics block."""
    PROFILER.reset()
    system = build_system(
        "proposed", paper_cluster(), Catalog(VitalCompiler()), defrag=defrag
    )
    controller = system.controller
    _fragment_cluster(controller)
    simulator = ClusterSimulator(system, f"proposed-defrag-{'on' if defrag else 'off'}")
    start = time.perf_counter()
    result = simulator.run(copy.deepcopy(tasks))
    wall_s = time.perf_counter() - start
    stats = controller.stats
    counters = PROFILER.snapshot()["counters"]
    deploys = max(1, counters.get("controller.deploy_calls", 0))
    return {
        "defrag": defrag,
        "completed": len(result.completed),
        "makespan_s": result.makespan_s,
        "throughput_tasks_per_s": result.throughput,
        "mean_latency_s": result.mean_latency(),
        "wall_clock_s": wall_s,
        "placement_failures": stats.placement_failures,
        "deploy_calls": counters.get("controller.deploy_calls", 0),
        "placement_failure_rate": stats.placement_failures / deploys,
        "evictions": stats.deployments_evicted,
        "reuse_hits": stats.reuse_hits,
        "defrag_plans": stats.defrag_plans,
        "migrations_completed": stats.migrations_completed,
        "migration_counters": {
            name: value
            for name, value in counters.items()
            if name.startswith("migration.")
            or name == "simulator.external_events"
        },
    }


def run_bench(
    small_tasks: int = FULL_SMALL_TASKS,
    output: str | pathlib.Path = "BENCH_defrag.json",
) -> dict:
    """Run the fragmented workload with defrag off and on; write the report."""
    tasks = _build_tasks(small_tasks)
    off = _run_once(defrag=False, tasks=tasks)
    on = _run_once(defrag=True, tasks=tasks)
    report = {
        "workload": {
            "small_tasks": small_tasks,
            "large_tasks": small_tasks // LARGE_EVERY,
            "total_tasks": len(tasks),
            "small_model": SMALL_MODEL,
            "filler_model": FILLER_MODEL,
            "large_model": LARGE_MODEL,
            "arrival_gap_s": ARRIVAL_GAP_S,
        },
        "defrag_off": off,
        "defrag_on": on,
        "comparison": {
            "failure_rate_off": off["placement_failure_rate"],
            "failure_rate_on": on["placement_failure_rate"],
            "failure_rate_reduction": (
                off["placement_failure_rate"] - on["placement_failure_rate"]
            ),
            "throughput_gain": (
                on["throughput_tasks_per_s"] / off["throughput_tasks_per_s"]
                if off["throughput_tasks_per_s"]
                else None
            ),
            "evictions_avoided": off["evictions"] - on["evictions"],
        },
    }
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=1) + "\n")
    return report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--small-tasks", type=int, default=FULL_SMALL_TASKS)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI scale: {SMOKE_SMALL_TASKS} small tasks",
    )
    parser.add_argument("--output", default="BENCH_defrag.json")
    args = parser.parse_args(argv)
    small_tasks = SMOKE_SMALL_TASKS if args.smoke else args.small_tasks
    report = run_bench(small_tasks=small_tasks, output=args.output)
    off, on = report["defrag_off"], report["defrag_on"]
    print(
        f"placement-failure rate: {off['placement_failure_rate']:.3f} off -> "
        f"{on['placement_failure_rate']:.3f} on"
    )
    print(
        f"throughput: {off['throughput_tasks_per_s']:.1f} off -> "
        f"{on['throughput_tasks_per_s']:.1f} on tasks/s"
    )
    print(
        f"migrations: {on['migrations_completed']} "
        f"({on['migration_counters'].get('migration.bytes', 0)} state bytes)"
    )
    print(f"report written to {args.output}")


if __name__ == "__main__":  # pragma: no cover - manual driver
    main()
