"""Benchmark driver for the overload-robust serving layer.

Sweeps offered load (as multiples of the reference serving rate) over a
bursty MMPP request stream through the :class:`~repro.serving.frontend.
ServingFrontend`, with and without an armed
:class:`~repro.faults.FaultInjector`, and emits ``BENCH_serving.json``:
per point the admission/shed/expiry/abandonment split, SLO attainment
(overall and per admitted request), goodput, latency percentiles and the
breaker/brownout activity — plus one *no-frontend* reference run at the
highest load showing what unbounded queueing does to the tail.  The same
seeded arrival and fault timelines drive every sweep point, so results
are reproducible bit for bit.  Regenerate with::

    PYTHONPATH=src python -m repro.experiments.bench_serving           # full
    PYTHONPATH=src python -m repro.experiments.bench_serving --smoke   # CI

The acceptance gate lives in the report's ``gate`` block: at 2x offered
load with faults armed (MTBF 1 s) the admitted-request SLO attainment
must stay >= 0.9 with a bounded p99.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from ..cluster import ClusterSimulator, Task, paper_cluster
from ..faults import FaultInjector, FaultModelParameters
from ..perf.profiling import PROFILER
from ..runtime import Catalog, build_system
from ..serving import Request, ServingFrontend, ServingParameters
from ..vital import VitalCompiler
from ..workloads import ARRIVAL_PROCESSES, arrival_process

#: Small serving models (one of each per round-robin turn).
STREAM_MODELS = ("gru-h512-t1", "lstm-h256-t150", "lstm-h512-t25")
#: Measured saturating rate of this stream on the paper cluster: goodput
#: plateaus near 900 req/s, so sweep factors are multiples of saturation
#: and the x2 gate point is genuine 2x overload.
BASE_RATE_PER_S = 900.0
LOAD_FACTORS = (0.5, 1.0, 2.0, 6.0)
#: The acceptance gate runs at this overload factor (with faults armed).
GATE_LOAD_FACTOR = 2.0

SMOKE_TASK_COUNT = 60
FULL_TASK_COUNT = 600

#: Fault process at the gate point (matches the fault bench's mid sweep).
MTBF_S = 1.0
MTTR_S = 0.08
FAULT_SEED = 7
ARRIVAL_SEED = 11

#: Relative SLO: each request must finish this long after its arrival.
DEADLINE_S = 0.25

#: Acceptance floor on admitted-request SLO attainment at the gate point.
GATE_SLO_FLOOR = 0.9


def serving_parameters() -> ServingParameters:
    """The bench's frontend configuration (shared with the CLI)."""
    return ServingParameters(default_deadline_s=DEADLINE_S)


def build_requests(
    task_count: int,
    rate_per_s: float,
    seed: int = ARRIVAL_SEED,
    arrival: str = "mmpp",
) -> list:
    """Deadline-carrying request stream (default bursty/MMPP gaps),
    round-robin over the serving models."""
    arrivals = arrival_process(arrival)(task_count, rate_per_s, seed=seed)
    return [
        Request(
            task_id=index,
            model_key=STREAM_MODELS[index % len(STREAM_MODELS)],
            arrival_s=arrival_s,
            size_class="S",
        )
        for index, arrival_s in enumerate(arrivals)
    ]


def _percentile(values: list, fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[int(fraction * (len(ordered) - 1))]


def run_point(
    task_count: int,
    load_factor: float,
    mtbf_s: float | None,
    params: ServingParameters | None = None,
    mttr_s: float = MTTR_S,
    fault_seed: int = FAULT_SEED,
    arrival: str = "mmpp",
    autoscale: bool = False,
    autoscale_params=None,
) -> dict:
    """One full serving run at one offered load; returns the metrics
    block.  ``mtbf_s=None`` runs fault-free.  ``autoscale=True`` arms an
    elastic :class:`~repro.autoscale.Autoscaler` over the frontend.
    Shared with ``repro serve``.
    """
    PROFILER.reset()
    rate = BASE_RATE_PER_S * load_factor
    tasks = build_requests(task_count, rate, arrival=arrival)
    system = build_system(
        "proposed", paper_cluster(), Catalog(VitalCompiler()), recovery=True
    )
    frontend = ServingFrontend(system, params or serving_parameters())
    label = "none" if mtbf_s is None else f"{mtbf_s:g}"
    simulator = ClusterSimulator(
        frontend, f"serving-x{load_factor:g}-mtbf-{label}"
    )
    autoscaler = None
    if autoscale:
        from ..autoscale import Autoscaler

        autoscaler = Autoscaler(frontend, autoscale_params)
        autoscaler.bind_simulator(simulator)
        arrival_horizon = tasks[-1].arrival_s if tasks else 0.0
        autoscaler.arm(arrival_horizon)
    injector = None
    if mtbf_s is not None:
        injector = FaultInjector(
            simulator,
            system.controller,
            FaultModelParameters(
                mtbf_s=mtbf_s, mttr_s=mttr_s, seed=fault_seed
            ),
        )
        # Cover the whole run, not just the arrival window: at high load
        # the backlog drains well past the last arrival.
        arrival_horizon = tasks[-1].arrival_s if tasks else 0.0
        injector.arm(max(arrival_horizon, task_count / BASE_RATE_PER_S))
    start = time.perf_counter()
    result = simulator.run(tasks)
    wall_s = time.perf_counter() - start
    stats = frontend.stats
    makespan = result.makespan_s
    point = {
        "load_factor": load_factor,
        "offered_rate_per_s": rate,
        "arrival": arrival,
        "mtbf_s": mtbf_s,
        "offered": stats.offered,
        "admitted": stats.admitted,
        "shed": stats.shed,
        "expired": stats.expired,
        "abandoned": stats.abandoned,
        "breaker_rejections": stats.breaker_rejections,
        "completed": stats.completed,
        "dropped": len(result.dropped),
        "slo_hits": stats.slo_hits,
        "slo_attainment": stats.slo_attainment(),
        "slo_admitted": (
            stats.slo_hits / stats.admitted if stats.admitted else 1.0
        ),
        "shed_rate": stats.shed_rate(),
        "goodput_per_s": stats.slo_hits / makespan if makespan else 0.0,
        "p50_latency_s": _percentile(stats.latencies_s, 0.50),
        "p99_latency_s": _percentile(stats.latencies_s, 0.99),
        "makespan_s": makespan,
        "wall_clock_s": wall_s,
        "placement_retries": stats.placement_retries,
        "breaker_opens": stats.breaker_opens,
        "breaker_half_opens": stats.breaker_half_opens,
        "breaker_closes": stats.breaker_closes,
        "brownout_entries": stats.brownout_entries,
        "brownout_switches": stats.brownout_switches,
        "boards_failed": system.controller.stats.boards_failed,
        "recoveries": system.controller.stats.recoveries,
        "recovery_backoff_s": system.controller.stats.recovery_backoff_s,
    }
    if autoscaler is not None:
        a = autoscaler.stats
        point["autoscale"] = {
            "ticks": a.ticks,
            "scale_ups": a.scale_ups,
            "scale_downs": a.scale_downs,
            "widenings": a.widenings,
            "additions": a.additions,
            "retirements": a.retirements,
            "narrowings": a.narrowings,
            "suppressed": a.suppressed,
            "blocked_by_capacity": a.blocked_by_capacity,
            "peak_units": dict(sorted(a.peak_units.items())),
        }
    return point


def run_reference(
    task_count: int, load_factor: float, arrival: str = "mmpp"
) -> dict:
    """The same stream with *no* serving edge: every request is accepted
    and queued forever — the tail the frontend exists to prevent."""
    PROFILER.reset()
    rate = BASE_RATE_PER_S * load_factor
    tasks = [
        Task(
            task_id=request.task_id,
            model_key=request.model_key,
            arrival_s=request.arrival_s,
            size_class=request.size_class,
        )
        for request in build_requests(task_count, rate, arrival=arrival)
    ]
    system = build_system(
        "proposed", paper_cluster(), Catalog(VitalCompiler()), recovery=True
    )
    simulator = ClusterSimulator(system, f"no-frontend-x{load_factor:g}")
    result = simulator.run(tasks)
    latencies = [task.latency_s for task in result.completed]
    on_time = sum(1 for latency in latencies if latency <= DEADLINE_S)
    return {
        "load_factor": load_factor,
        "offered_rate_per_s": rate,
        "completed": len(result.completed),
        "slo_attainment": on_time / len(latencies) if latencies else 1.0,
        "p50_latency_s": _percentile(latencies, 0.50),
        "p99_latency_s": _percentile(latencies, 0.99),
        "makespan_s": result.makespan_s,
    }


def run_bench(
    task_count: int = FULL_TASK_COUNT,
    output: str | pathlib.Path = "BENCH_serving.json",
    arrival: str = "mmpp",
) -> dict:
    """Sweep offered load with and without faults; write the report."""
    sweep = []
    for mtbf_s in (None, MTBF_S):
        for load_factor in LOAD_FACTORS:
            sweep.append(
                run_point(task_count, load_factor, mtbf_s, arrival=arrival)
            )
    gate_point = next(
        p
        for p in sweep
        if p["mtbf_s"] == MTBF_S and p["load_factor"] == GATE_LOAD_FACTOR
    )
    reference = run_reference(task_count, max(LOAD_FACTORS), arrival=arrival)
    report = {
        "workload": {
            "task_count": task_count,
            "models": list(STREAM_MODELS),
            "base_rate_per_s": BASE_RATE_PER_S,
            "load_factors": list(LOAD_FACTORS),
            "arrival_process": arrival,
            "arrival_seed": ARRIVAL_SEED,
            "deadline_s": DEADLINE_S,
            "mtbf_s": MTBF_S,
            "mttr_s": MTTR_S,
            "fault_seed": FAULT_SEED,
        },
        "sweep": sweep,
        "no_frontend_reference": reference,
        "gate": {
            "load_factor": gate_point["load_factor"],
            "mtbf_s": gate_point["mtbf_s"],
            "slo_admitted": gate_point["slo_admitted"],
            "slo_floor": GATE_SLO_FLOOR,
            "p99_latency_s": gate_point["p99_latency_s"],
            "p99_bound_s": DEADLINE_S,
            "pass": (
                gate_point["slo_admitted"] >= GATE_SLO_FLOOR
                and gate_point["p99_latency_s"] <= DEADLINE_S
            ),
        },
    }
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=1) + "\n")
    return report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=FULL_TASK_COUNT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI scale: {SMOKE_TASK_COUNT} tasks",
    )
    parser.add_argument("--output", default="BENCH_serving.json")
    parser.add_argument(
        "--arrival",
        choices=sorted(ARRIVAL_PROCESSES),
        default="mmpp",
        help="inter-arrival process shaping the request stream",
    )
    args = parser.parse_args(argv)
    task_count = SMOKE_TASK_COUNT if args.smoke else args.tasks
    report = run_bench(
        task_count=task_count, output=args.output, arrival=args.arrival
    )
    for point in report["sweep"]:
        faults = "faults" if point["mtbf_s"] else "clean "
        print(
            f"x{point['load_factor']:<3g} {faults}: "
            f"{point['admitted']}/{point['offered']} admitted, "
            f"{point['shed']} shed, {point['expired']} expired, "
            f"SLO {point['slo_admitted']:.3f}, "
            f"p99 {point['p99_latency_s'] * 1e3:.1f} ms, "
            f"goodput {point['goodput_per_s']:.0f}/s"
        )
    gate = report["gate"]
    print(
        f"gate (x{gate['load_factor']:g} + faults): "
        f"SLO {gate['slo_admitted']:.3f} >= {gate['slo_floor']} "
        f"and p99 {gate['p99_latency_s'] * 1e3:.1f} ms <= "
        f"{gate['p99_bound_s'] * 1e3:.0f} ms -> "
        f"{'PASS' if gate['pass'] else 'FAIL'}"
    )
    print(f"report written to {args.output}")


if __name__ == "__main__":  # pragma: no cover - manual driver
    main()
