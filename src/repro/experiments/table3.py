"""Table 3 — implementation results of one virtual block when mapping the
decomposed accelerator onto the ViTAL-style HS abstraction.

For each device type, the matching baseline accelerator is decomposed and
compiled onto virtual blocks; the row reports the per-block share of the
design's resources, the per-block utilisation (against the virtual block's
capacity), achieved frequency, and per-block peak TFLOPS.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel import BW_K115, BW_V37, CONTROL_MODULES, generate_accelerator
from ..core import decompose, partition
from ..resources import ResourceVector
from ..units import to_mbit, to_mhz, to_tflops
from ..vital import VitalCompiler
from ..vital.device import DEVICE_TYPES
from .report import format_table

#: Table 3 as printed (per-block usage, freq, peak TFLOPS).
PAPER_TABLE3 = {
    "XCVU37P": {
        "luts": 44.9e3, "ffs": 48.8e3, "bram_mb": 3.9, "uram_mb": 2.1,
        "dsps": 576, "freq_mhz": 400, "tflops": 3.69,
    },
    "XCKU115": {
        "luts": 39.9e3, "ffs": 34.9e3, "bram_mb": 4.5, "uram_mb": 0.0,
        "dsps": 552, "freq_mhz": 300, "tflops": 2.07,
    },
}


@dataclass
class Table3Row:
    """Per-virtual-block implementation results on one device type."""

    device: str
    virtual_blocks: int
    per_block: ResourceVector
    utilisation: dict
    frequency_hz: float
    per_block_tflops: float
    paper: dict


def run_table3() -> list:
    """Compile each baseline instance for its device; report per-block."""
    rows = []
    for config, device_name in ((BW_V37, "XCVU37P"), (BW_K115, "XCKU115")):
        device = DEVICE_TYPES[device_name]
        decomposed = decompose(generate_accelerator(config), CONTROL_MODULES)
        tree = partition(decomposed, iterations=0)
        compiler = VitalCompiler(devices={device_name: device})
        compiled = compiler.compile_accelerator(decomposed, tree)
        option = compiled.mapping.sorted_options()[0]
        image = option.images[option.cluster_indices[0]][device_name]
        blocks = image.virtual_blocks
        per_block = image.resources * (1.0 / blocks)
        peak = to_tflops(
            config.with_frequency(image.frequency_hz).peak_flops
        ) / blocks
        rows.append(
            Table3Row(
                device=device_name,
                virtual_blocks=blocks,
                per_block=per_block,
                utilisation=per_block.utilisation(device.block_capacity),
                frequency_hz=image.frequency_hz,
                per_block_tflops=peak,
                paper=PAPER_TABLE3[device_name],
            )
        )
    return rows


def render(rows: list) -> str:
    body = []
    for row in rows:
        util = row.utilisation
        paper = row.paper

        def cell(ours: float, reference: float, util_key: str) -> str:
            text = f"{ours:,.1f}"
            if util[util_key] == util[util_key]:  # not NaN
                text += f" ({util[util_key] * 100:.1f}%)"
            return f"{text} [paper {reference:,.1f}]"

        body.append(
            [
                row.device,
                row.virtual_blocks,
                cell(row.per_block.luts / 1e3, paper["luts"] / 1e3, "luts"),
                cell(row.per_block.ffs / 1e3, paper["ffs"] / 1e3, "ffs"),
                cell(to_mbit(row.per_block.bram_bits), paper["bram_mb"], "bram_bits"),
                cell(to_mbit(row.per_block.uram_bits), paper["uram_mb"], "uram_bits"),
                cell(row.per_block.dsps, paper["dsps"], "dsps"),
                f"{to_mhz(row.frequency_hz):.0f}",
                f"{row.per_block_tflops:.2f} [paper {paper['tflops']}]",
            ]
        )
    return format_table(
        [
            "Device", "#Blocks", "kLUTs", "kDFFs", "BRAM(Mb)", "URAM(Mb)",
            "DSPs", "Freq(MHz)", "TFLOPS/block",
        ],
        body,
        title="Table 3: one virtual block of the decomposed accelerator",
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run_table3()))
