"""Fig. 11 — impact of inter-FPGA communication latency on inference
latency when one accelerator is deployed onto two FPGA devices.

The paper inserts a programmable counter+FIFO module to add latency to the
ring network and plots inference latency against the added latency for an
LSTM, a small GRU (h=1024) and a large GRU (h=2560).  Observed shape: the
optimisation technique fully hides the communication for the LSTM, hides it
for the small GRU up to ~0.6 us of added latency, and cannot hide it for
the large GRU (bigger accelerator => less compute to overlap; longer vector
=> more data to move).

This driver rebuilds the whole offline pipeline per point: replica programs
with communication inserted and reordered, demand-sized replica instances,
and the ring model's exchange time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..accel.codegen import build_scaleout_programs
from ..accel.timing import CycleModel, VirtualizationContext
from ..cluster.network import RingNetwork
from ..perf.latency import demand_sized_instance
from ..perf.overlap import scaleout_latency
from ..units import us
from ..workloads.deepbench import ModelSpec
from .report import format_table

#: The three curves of Fig. 11.
FIG11_MODELS = (
    ModelSpec("lstm", 1024, 25),
    ModelSpec("gru", 1024, 1500),
    ModelSpec("gru", 2560, 375),
)

#: Added-latency sweep (seconds), matching the paper's 0-1.2 us x-axis.
DEFAULT_SWEEP = tuple(us(x) for x in np.linspace(0.0, 1.2, 13))


@dataclass
class Fig11Curve:
    """One model's latency curve over the added-latency sweep."""

    model: ModelSpec
    added_latency_s: list = field(default_factory=list)
    latency_s: list = field(default_factory=list)
    overlap_window_s: float = 0.0
    comm_at_zero_s: float = 0.0

    @property
    def hideable_added_latency_s(self) -> float:
        """Largest added latency fully absorbed by the overlap window."""
        return max(0.0, self.overlap_window_s - self.comm_at_zero_s)

    def normalised(self) -> list:
        """Latency relative to the zero-added-latency point."""
        base = self.latency_s[0]
        return [value / base for value in self.latency_s]


def run_fig11(
    sweep=DEFAULT_SWEEP,
    models=FIG11_MODELS,
    reorder: bool = True,
    device_type: str = "XCVU37P",
) -> list:
    """Sweep added network latency for each model on a 2-FPGA deployment.

    ``reorder=False`` disables the instruction-reordering tool (the
    ablation: the receive stays at the top of the loop body, the overlap
    window is empty, and every curve climbs from zero added latency).
    """
    network = RingNetwork(["fpga-0", "fpga-1"])
    members = ["fpga-0", "fpga-1"]
    curves = []
    for spec in models:
        programs = build_scaleout_programs(
            spec.kind, spec.metadata_weights(), spec.timesteps, 2, reorder=reorder
        )
        choice = demand_sized_instance(spec.weight_bits(7), device_type, replicas=2)
        model = CycleModel(choice.config)
        virt = VirtualizationContext(virtual_blocks=8)
        curve = Fig11Curve(model=spec)
        for added in sweep:
            report = scaleout_latency(
                programs[0], model, network, members,
                added_latency_s=added, virtualization=virt,
            )
            curve.added_latency_s.append(added)
            curve.latency_s.append(report.total_s)
            curve.overlap_window_s = report.overlap_window_s
            if added == sweep[0]:
                curve.comm_at_zero_s = report.comm_per_step_s
        curves.append(curve)
    return curves


def render(curves: list) -> str:
    headers = ["Added latency (us)"] + [c.model.key + " (ms)" for c in curves]
    body = []
    for index, added in enumerate(curves[0].added_latency_s):
        row = [f"{added * 1e6:.2f}"]
        for curve in curves:
            row.append(f"{curve.latency_s[index] * 1e3:.4g}")
        body.append(row)
    summary = "\n".join(
        f"{curve.model.key}: overlap window {curve.overlap_window_s * 1e6:.2f} us, "
        f"comm at zero {curve.comm_at_zero_s * 1e6:.2f} us, "
        f"hides up to {curve.hideable_added_latency_s * 1e6:.2f} us of added latency"
        for curve in curves
    )
    from .charts import line_chart

    chart = line_chart(
        [added * 1e6 for added in curves[0].added_latency_s],
        {
            curve.model.key: [
                (value - 1.0) * 100.0 + 1e-6 for value in curve.normalised()
            ]
            for curve in curves
        },
        x_label="added inter-FPGA latency (us)",
        y_label="latency increase over +0 us (%)",
    )
    return (
        format_table(headers, body, title="Fig. 11: latency vs added inter-FPGA latency")
        + "\n\n"
        + chart
        + "\n\n"
        + summary
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run_fig11()))
