"""Table 4 — single-FPGA LSTM/GRU inference latency: baseline vs this work.

For each of the paper's seven DeepBench configurations and each device, the
driver measures:

* the *baseline* latency — the model's program on the device-matched
  bare-metal accelerator instance;
* *this work* — the same instance deployed through the HS abstraction (the
  decomposed design compiled onto virtual blocks, paying the
  latency-insensitive interface and controller costs);
* the overhead percentage (the paper reports 3.8%-8.4%).

The LSTM h=1536 row on the XCKU115 reproduces the paper's dash: the model's
weights exceed what the instance can serve on that device.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel import BW_K115, BW_V37, CONTROL_MODULES, CycleModel, generate_accelerator
from ..accel.timing import ModelDoesNotFitError, VirtualizationContext
from ..core import decompose, partition
from ..units import to_ms
from ..vital import VitalCompiler
from ..vital.device import DEVICE_TYPES
from ..workloads.deepbench import TABLE4_BENCHMARKS, ModelSpec
from .report import format_table

#: The paper's Table 4 (latency in ms; None = cannot fit).
PAPER_TABLE4 = {
    ("gru-h512-t1", "XCVU37P"): (0.0131, 0.0136, 0.038),
    ("gru-h512-t1", "XCKU115"): (0.0227, 0.0236, 0.039),
    ("gru-h1024-t1500", "XCVU37P"): (5.01, 5.4, 0.078),
    ("gru-h1024-t1500", "XCKU115"): (18.5, 19.9, 0.078),
    ("gru-h1536-t375", "XCVU37P"): (1.83, 1.96, 0.075),
    ("gru-h1536-t375", "XCKU115"): (6.91, 7.43, 0.075),
    ("lstm-h256-t150", "XCVU37P"): (0.726, 0.767, 0.057),
    ("lstm-h256-t150", "XCKU115"): (1.31, 1.38, 0.056),
    ("lstm-h512-t25", "XCVU37P"): (0.129, 0.136, 0.053),
    ("lstm-h512-t25", "XCKU115"): (0.232, 0.245, 0.053),
    ("lstm-h1024-t25", "XCVU37P"): (0.146, 0.157, 0.070),
    ("lstm-h1024-t25", "XCKU115"): (0.263, 0.282, 0.071),
    ("lstm-h1536-t50", "XCVU37P"): (0.238, 0.258, 0.084),
    ("lstm-h1536-t50", "XCKU115"): None,
}

_INSTANCES = {"XCVU37P": BW_V37, "XCKU115": BW_K115}


@dataclass
class Table4Row:
    """Latency of one benchmark on one device, both deployments."""

    model: ModelSpec
    device: str
    baseline_s: float | None
    virtualized_s: float | None
    overhead: float | None
    paper: tuple | None

    @property
    def fits(self) -> bool:
        return self.baseline_s is not None


def _virtual_blocks_for(config) -> int:
    """Compile the instance through the framework to get its block count."""
    decomposed = decompose(generate_accelerator(config), CONTROL_MODULES)
    tree = partition(decomposed, iterations=0)
    device_name = {"BW-V37": "XCVU37P", "BW-K115": "XCKU115"}[config.name]
    compiler = VitalCompiler(devices={device_name: DEVICE_TYPES[device_name]})
    compiled = compiler.compile_accelerator(decomposed, tree)
    option = compiled.mapping.sorted_options()[0]
    return option.images[option.cluster_indices[0]][device_name].virtual_blocks


def run_table4(benchmarks=TABLE4_BENCHMARKS) -> list:
    """Measure every benchmark on both devices."""
    blocks = {name: _virtual_blocks_for(cfg) for name, cfg in _INSTANCES.items()}
    rows = []
    for spec in benchmarks:
        program = spec.program()
        for device_name, config in _INSTANCES.items():
            instance = config.with_frequency(DEVICE_TYPES[device_name].frequency_hz)
            model = CycleModel(instance)
            paper = PAPER_TABLE4.get((spec.key, device_name))
            try:
                base = model.latency(program)
                virt = model.latency(
                    program,
                    virtualization=VirtualizationContext(blocks[device_name]),
                )
                rows.append(
                    Table4Row(
                        model=spec,
                        device=device_name,
                        baseline_s=base.seconds,
                        virtualized_s=virt.seconds,
                        overhead=virt.seconds / base.seconds - 1.0,
                        paper=paper,
                    )
                )
            except ModelDoesNotFitError:
                rows.append(
                    Table4Row(
                        model=spec,
                        device=device_name,
                        baseline_s=None,
                        virtualized_s=None,
                        overhead=None,
                        paper=paper,
                    )
                )
    return rows


def render(rows: list) -> str:
    body = []
    for row in rows:
        if not row.fits:
            paper_note = "(paper: -)" if row.paper is None else "(paper had a value!)"
            body.append(
                [row.model.key, row.device, "-", "-", "-", paper_note]
            )
            continue
        paper_text = (
            f"paper {row.paper[0]}/{row.paper[1]} ms, {row.paper[2] * 100:.1f}%"
            if row.paper
            else ""
        )
        body.append(
            [
                row.model.key,
                row.device,
                f"{to_ms(row.baseline_s):.4g}",
                f"{to_ms(row.virtualized_s):.4g}",
                f"{row.overhead * 100:.1f}%",
                paper_text,
            ]
        )
    return format_table(
        ["Benchmark", "Device", "Baseline(ms)", "This work(ms)", "Overhead", "Reference"],
        body,
        title="Table 4: LSTM/GRU inference latency",
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run_table4()))
