"""Section 4.4's performance-isolation result.

"For evaluated LSTM/GRU benchmarks, the entire machine codes can be stored
in this buffer to largely minimize the number of DRAM accesses, thereby
avoiding contention on the shared DRAM interface.  This enables a
sufficient performance isolation and the inference latency in this
resource-sharing environment is comparable to that in a non-sharing
environment."

The driver measures each benchmark's virtualized latency alone vs sharing
an FPGA with two co-resident accelerators, twice: with the on-chip
instruction buffer (the paper's design) and with the buffer ablated (every
instruction fetch crosses the shared DRAM interface).

The cluster-level companion, :func:`run_tenant_isolation`, lifts the same
question to the multi-tenancy layer: each *tenant* (a labelled request
stream) runs once **solo** — the whole cluster to itself — and once
**shared** with every other tenant under a
:class:`~repro.tenancy.TenantScheduler`; the per-tenant interference
metric is the latency degradation (shared / solo) of its mean and p99.
The arrival shape is pluggable through the ``--trace`` flag (any name in
:data:`~repro.workloads.ARRIVAL_PROCESSES`), so the same experiment runs
under Poisson, bursty MMPP or heavy-tailed gaps.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..accel import BW_V37, CycleModel
from ..accel.timing import VirtualizationContext
from ..workloads.deepbench import TABLE4_BENCHMARKS, ModelSpec
from .report import format_table

#: Co-resident accelerators in the sharing scenario.
NEIGHBOURS = 2


@dataclass
class IsolationRow:
    """Sharing impact for one benchmark, with and without the buffer."""

    model: ModelSpec
    alone_s: float
    shared_s: float
    shared_no_buffer_s: float
    code_fits_buffer: bool

    @property
    def sharing_penalty(self) -> float:
        """Relative slowdown from sharing, with the instruction buffer."""
        return self.shared_s / self.alone_s - 1.0

    @property
    def sharing_penalty_no_buffer(self) -> float:
        """Relative slowdown from sharing when code spills to DRAM."""
        return self.shared_no_buffer_s / self.alone_s - 1.0


def run_isolation(benchmarks=TABLE4_BENCHMARKS) -> list:
    """Measure the isolation table on the VU37P instance."""
    model = CycleModel(BW_V37)
    virt = VirtualizationContext(virtual_blocks=14)
    rows = []
    for spec in benchmarks:
        program = spec.program()
        if not model.fits(program):
            continue
        alone = model.latency(program, virtualization=virt)
        shared = model.latency(
            program, virtualization=virt, sharing_neighbours=NEIGHBOURS
        )
        spilled = model.latency(
            program,
            virtualization=virt,
            sharing_neighbours=NEIGHBOURS,
            instruction_buffer=False,
        )
        rows.append(
            IsolationRow(
                model=spec,
                alone_s=alone.seconds,
                shared_s=shared.seconds,
                shared_no_buffer_s=spilled.seconds,
                code_fits_buffer=model.program_fits_buffer(program),
            )
        )
    return rows


def render(rows: list) -> str:
    body = [
        [
            row.model.key,
            "yes" if row.code_fits_buffer else "NO",
            f"{row.alone_s * 1e3:.4g}",
            f"{row.shared_s * 1e3:.4g}",
            f"{row.sharing_penalty * 100:.2f}%",
            f"{row.sharing_penalty_no_buffer * 100:.2f}%",
        ]
        for row in rows
    ]
    return format_table(
        [
            "Benchmark", "Code in buffer", "Alone (ms)", "Shared (ms)",
            "Sharing penalty", "Penalty w/o buffer",
        ],
        body,
        title=(
            "Section 4.4: performance isolation under FPGA sharing "
            f"({NEIGHBOURS} co-resident accelerators)"
        ),
    )


# -- cluster-level tenant isolation ------------------------------------------

#: Default tenant mix: a premium interactive stream and a best-effort
#: batch stream over disjoint model sets.
DEFAULT_TENANT_MODELS = {
    "premium": ("gru-h512-t1",),
    "batch": ("lstm-h256-t150", "lstm-h512-t25"),
}
TENANT_RATE_PER_S = 400.0
TENANT_TASKS = 120
TENANT_SEED = 23


@dataclass
class TenantIsolationRow:
    """Interference one tenant suffers from sharing the cluster."""

    tenant: str
    solo_mean_s: float
    solo_p99_s: float
    shared_mean_s: float
    shared_p99_s: float
    completed_solo: int
    completed_shared: int

    @property
    def mean_degradation(self) -> float:
        """Shared / solo mean latency (1.0 = perfect isolation)."""
        return self.shared_mean_s / self.solo_mean_s if self.solo_mean_s else 1.0

    @property
    def p99_degradation(self) -> float:
        return self.shared_p99_s / self.solo_p99_s if self.solo_p99_s else 1.0


def _percentile(values: list, fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[int(fraction * (len(ordered) - 1))]


def _tenant_tasks(
    name: str,
    models: tuple,
    task_count: int,
    rate_per_s: float,
    trace: str,
    seed: int,
    id_base: int,
) -> list:
    from ..cluster import Task
    from ..workloads import arrival_process

    arrivals = arrival_process(trace)(task_count, rate_per_s, seed=seed)
    return [
        Task(
            task_id=id_base + index,
            model_key=models[index % len(models)],
            arrival_s=arrival_s,
            size_class="S",
            tenant=name,
        )
        for index, arrival_s in enumerate(arrivals)
    ]


def _run_tenant_arm(tasks: list, tenants: list, label: str):
    """One simulated arm; returns the bound :class:`TenantScheduler`."""
    from ..cluster import ClusterSimulator, paper_cluster
    from ..runtime import Catalog, build_system
    from ..tenancy import TenantScheduler
    from ..vital import VitalCompiler

    system = build_system("proposed", paper_cluster(), Catalog(VitalCompiler()))
    scheduler = TenantScheduler(system, tenants)
    ClusterSimulator(scheduler, label).run(sorted(tasks, key=lambda t: (t.arrival_s, t.task_id)))
    return scheduler


def run_tenant_isolation(
    tenants: list | None = None,
    tenant_models: dict | None = None,
    task_count: int = TENANT_TASKS,
    rate_per_s: float = TENANT_RATE_PER_S,
    trace: str = "poisson",
    seed: int = TENANT_SEED,
) -> list:
    """Per-tenant interference: each labelled stream solo vs shared.

    ``tenants`` is a list of :class:`~repro.tenancy.TenantParameters`
    (defaults to equal-priority tenants named by ``tenant_models``);
    ``trace`` names any registered arrival process.  Returns one
    :class:`TenantIsolationRow` per tenant.
    """
    from ..tenancy import TenantParameters

    models = tenant_models or DEFAULT_TENANT_MODELS
    if tenants is None:
        tenants = [TenantParameters(name=name) for name in sorted(models)]
    by_name = {t.name: t for t in tenants}
    if set(by_name) != set(models):
        raise ValueError(
            f"tenant labels {sorted(by_name)} != model map {sorted(models)}"
        )
    # Streams are rebuilt (seed-identical) per arm: the simulator stamps
    # start/finish state into Task objects, so arms must not share them.
    def streams():
        return {
            name: _tenant_tasks(
                name,
                tuple(models[name]),
                task_count,
                rate_per_s,
                trace,
                seed + offset,
                id_base=offset * task_count,
            )
            for offset, name in enumerate(sorted(models))
        }

    solo = {}
    for name, tasks in streams().items():
        scheduler = _run_tenant_arm(
            tasks, [by_name[name]], f"isolation-solo-{name}"
        )
        solo[name] = list(scheduler.tenant(name).latencies_s)
    mixed = [task for tasks in streams().values() for task in tasks]
    shared_scheduler = _run_tenant_arm(
        mixed, list(by_name.values()), "isolation-shared"
    )
    rows = []
    for name in sorted(models):
        shared = list(shared_scheduler.tenant(name).latencies_s)
        rows.append(
            TenantIsolationRow(
                tenant=name,
                solo_mean_s=sum(solo[name]) / len(solo[name]) if solo[name] else 0.0,
                solo_p99_s=_percentile(solo[name], 0.99),
                shared_mean_s=sum(shared) / len(shared) if shared else 0.0,
                shared_p99_s=_percentile(shared, 0.99),
                completed_solo=len(solo[name]),
                completed_shared=len(shared),
            )
        )
    return rows


def render_tenants(rows: list, trace: str = "poisson") -> str:
    body = [
        [
            row.tenant,
            str(row.completed_solo),
            str(row.completed_shared),
            f"{row.solo_mean_s * 1e3:.4g}",
            f"{row.shared_mean_s * 1e3:.4g}",
            f"{row.mean_degradation:.3f}x",
            f"{row.p99_degradation:.3f}x",
        ]
        for row in rows
    ]
    return format_table(
        [
            "Tenant", "Done solo", "Done shared", "Solo mean (ms)",
            "Shared mean (ms)", "Mean degradation", "p99 degradation",
        ],
        body,
        title=f"Cluster-level tenant interference ({trace} arrivals)",
    )


def main(argv=None) -> None:
    from ..workloads import ARRIVAL_PROCESSES

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tenants",
        action="store_true",
        help="run the cluster-level per-tenant interference experiment",
    )
    parser.add_argument(
        "--trace",
        choices=sorted(ARRIVAL_PROCESSES),
        default="poisson",
        help="arrival process shaping every tenant's stream",
    )
    parser.add_argument("--tasks", type=int, default=TENANT_TASKS)
    parser.add_argument("--rate", type=float, default=TENANT_RATE_PER_S)
    parser.add_argument("--seed", type=int, default=TENANT_SEED)
    args = parser.parse_args(argv)
    print(render(run_isolation()))
    if args.tenants:
        rows = run_tenant_isolation(
            task_count=args.tasks,
            rate_per_s=args.rate,
            trace=args.trace,
            seed=args.seed,
        )
        print(render_tenants(rows, trace=args.trace))


if __name__ == "__main__":  # pragma: no cover - manual driver
    main()
