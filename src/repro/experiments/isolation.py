"""Section 4.4's performance-isolation result.

"For evaluated LSTM/GRU benchmarks, the entire machine codes can be stored
in this buffer to largely minimize the number of DRAM accesses, thereby
avoiding contention on the shared DRAM interface.  This enables a
sufficient performance isolation and the inference latency in this
resource-sharing environment is comparable to that in a non-sharing
environment."

The driver measures each benchmark's virtualized latency alone vs sharing
an FPGA with two co-resident accelerators, twice: with the on-chip
instruction buffer (the paper's design) and with the buffer ablated (every
instruction fetch crosses the shared DRAM interface).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel import BW_V37, CycleModel
from ..accel.timing import VirtualizationContext
from ..workloads.deepbench import TABLE4_BENCHMARKS, ModelSpec
from .report import format_table

#: Co-resident accelerators in the sharing scenario.
NEIGHBOURS = 2


@dataclass
class IsolationRow:
    """Sharing impact for one benchmark, with and without the buffer."""

    model: ModelSpec
    alone_s: float
    shared_s: float
    shared_no_buffer_s: float
    code_fits_buffer: bool

    @property
    def sharing_penalty(self) -> float:
        """Relative slowdown from sharing, with the instruction buffer."""
        return self.shared_s / self.alone_s - 1.0

    @property
    def sharing_penalty_no_buffer(self) -> float:
        """Relative slowdown from sharing when code spills to DRAM."""
        return self.shared_no_buffer_s / self.alone_s - 1.0


def run_isolation(benchmarks=TABLE4_BENCHMARKS) -> list:
    """Measure the isolation table on the VU37P instance."""
    model = CycleModel(BW_V37)
    virt = VirtualizationContext(virtual_blocks=14)
    rows = []
    for spec in benchmarks:
        program = spec.program()
        if not model.fits(program):
            continue
        alone = model.latency(program, virtualization=virt)
        shared = model.latency(
            program, virtualization=virt, sharing_neighbours=NEIGHBOURS
        )
        spilled = model.latency(
            program,
            virtualization=virt,
            sharing_neighbours=NEIGHBOURS,
            instruction_buffer=False,
        )
        rows.append(
            IsolationRow(
                model=spec,
                alone_s=alone.seconds,
                shared_s=shared.seconds,
                shared_no_buffer_s=spilled.seconds,
                code_fits_buffer=model.program_fits_buffer(program),
            )
        )
    return rows


def render(rows: list) -> str:
    body = [
        [
            row.model.key,
            "yes" if row.code_fits_buffer else "NO",
            f"{row.alone_s * 1e3:.4g}",
            f"{row.shared_s * 1e3:.4g}",
            f"{row.sharing_penalty * 100:.2f}%",
            f"{row.sharing_penalty_no_buffer * 100:.2f}%",
        ]
        for row in rows
    ]
    return format_table(
        [
            "Benchmark", "Code in buffer", "Alone (ms)", "Shared (ms)",
            "Sharing penalty", "Penalty w/o buffer",
        ],
        body,
        title=(
            "Section 4.4: performance isolation under FPGA sharing "
            f"({NEIGHBOURS} co-resident accelerators)"
        ),
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run_isolation()))
