"""Benchmark driver for fault injection + automatic failure recovery.

Sweeps per-board MTBF over a mixed serving stream on the proposed system
(recovery armed) and emits ``BENCH_faults.json``: per MTBF point the board
failures injected, deployments lost, recoveries completed (and how many
had to scale down), lost work, placement availability and the tail latency
the fault process inflicts — plus a no-fault baseline run for reference.
The same seeded timeline drives every sweep point, so results are
reproducible bit for bit.  Regenerate with::

    PYTHONPATH=src python -m repro.experiments.bench_faults           # full
    PYTHONPATH=src python -m repro.experiments.bench_faults --smoke   # CI
"""

from __future__ import annotations

import argparse
import copy
import json
import pathlib
import time

from ..cluster import ClusterSimulator, Task, paper_cluster
from ..faults import FaultInjector, FaultModelParameters
from ..perf.profiling import PROFILER
from ..runtime import Catalog, build_system
from ..vital import VitalCompiler

#: Small serving models (one of each per round-robin turn).
STREAM_MODELS = ("gru-h512-t1", "lstm-h256-t150", "lstm-h512-t25")
#: Arrival spacing (seconds of simulated time).
ARRIVAL_GAP_S = 0.004

SMOKE_TASK_COUNT = 45
FULL_TASK_COUNT = 240

#: Per-board mean time between failures, swept worst-to-best.  ``None``
#: is the fault-free reference point.
MTBF_SWEEP_S = (0.5, 1.0, 2.0, None)
MTTR_S = 0.08
FAULT_SEED = 7


def _build_tasks(task_count: int) -> list:
    """Deterministic round-robin stream over the small serving models."""
    return [
        Task(
            task_id=index,
            model_key=STREAM_MODELS[index % len(STREAM_MODELS)],
            arrival_s=index * ARRIVAL_GAP_S,
            size_class="S",
        )
        for index in range(task_count)
    ]


def _p99_latency(completed: list) -> float:
    if not completed:
        return 0.0
    latencies = sorted(task.latency_s for task in completed)
    return latencies[int(0.99 * (len(latencies) - 1))]


def run_point(
    tasks: list,
    mtbf_s: float | None,
    mttr_s: float = MTTR_S,
    seed: int = FAULT_SEED,
    degraded_fraction: float = 0.0,
) -> dict:
    """One full run at one fault rate; returns the metrics block.

    ``mtbf_s=None`` runs fault-free (the availability/latency reference).
    Shared with the ``inject-faults`` CLI command.
    """
    PROFILER.reset()
    system = build_system(
        "proposed", paper_cluster(), Catalog(VitalCompiler()), recovery=True
    )
    controller = system.controller
    label = "none" if mtbf_s is None else f"{mtbf_s:g}"
    simulator = ClusterSimulator(system, f"proposed-mtbf-{label}")
    horizon_s = tasks[-1].arrival_s if tasks else 0.0
    injector = None
    if mtbf_s is not None:
        injector = FaultInjector(
            simulator,
            controller,
            FaultModelParameters(
                mtbf_s=mtbf_s,
                mttr_s=mttr_s,
                seed=seed,
                degraded_fraction=degraded_fraction,
            ),
        )
        injector.arm(horizon_s)
    start = time.perf_counter()
    result = simulator.run(copy.deepcopy(tasks))
    wall_s = time.perf_counter() - start
    stats = controller.stats
    counters = PROFILER.snapshot()["counters"]
    recovery_rate = (
        stats.recoveries / stats.deployments_failed
        if stats.deployments_failed
        else 1.0
    )
    return {
        "mtbf_s": mtbf_s,
        "mttr_s": mttr_s if mtbf_s is not None else None,
        "completed": len(result.completed),
        "makespan_s": result.makespan_s,
        "throughput_tasks_per_s": result.throughput,
        "mean_latency_s": result.mean_latency(),
        "p99_latency_s": _p99_latency(result.completed),
        "wall_clock_s": wall_s,
        "availability": (
            injector.availability(result.makespan_s) if injector else 1.0
        ),
        "boards_failed": stats.boards_failed,
        "boards_repaired": stats.boards_repaired,
        "deployments_failed": stats.deployments_failed,
        "recoveries": stats.recoveries,
        "scale_down_recoveries": stats.scale_down_recoveries,
        "recovery_retries": stats.recovery_retries,
        "recovery_failures": stats.recovery_failures,
        "recovery_rate": recovery_rate,
        "lost_work_s": stats.lost_work_s,
        "fault_counters": {
            name: value
            for name, value in counters.items()
            if name.startswith("faults.")
            or name == "simulator.external_events"
        },
    }


def run_bench(
    task_count: int = FULL_TASK_COUNT,
    output: str | pathlib.Path = "BENCH_faults.json",
) -> dict:
    """Sweep MTBF over the serving stream; write the report."""
    tasks = _build_tasks(task_count)
    points = [run_point(tasks, mtbf_s) for mtbf_s in MTBF_SWEEP_S]
    baseline = next(p for p in points if p["mtbf_s"] is None)
    faulty = [p for p in points if p["mtbf_s"] is not None]
    report = {
        "workload": {
            "task_count": task_count,
            "models": list(STREAM_MODELS),
            "arrival_gap_s": ARRIVAL_GAP_S,
            "mttr_s": MTTR_S,
            "fault_seed": FAULT_SEED,
        },
        "baseline": baseline,
        "sweep": faulty,
        "comparison": {
            "worst_availability": min(p["availability"] for p in faulty),
            "min_recovery_rate": min(p["recovery_rate"] for p in faulty),
            "total_recoveries": sum(p["recoveries"] for p in faulty),
            "total_lost_work_s": sum(p["lost_work_s"] for p in faulty),
            "p99_inflation_worst": (
                max(p["p99_latency_s"] for p in faulty)
                / baseline["p99_latency_s"]
                if baseline["p99_latency_s"]
                else None
            ),
        },
    }
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=1) + "\n")
    return report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=FULL_TASK_COUNT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI scale: {SMOKE_TASK_COUNT} tasks",
    )
    parser.add_argument("--output", default="BENCH_faults.json")
    args = parser.parse_args(argv)
    task_count = SMOKE_TASK_COUNT if args.smoke else args.tasks
    report = run_bench(task_count=task_count, output=args.output)
    for point in report["sweep"]:
        print(
            f"mtbf={point['mtbf_s']:>4}s: {point['boards_failed']} board "
            f"failures, {point['deployments_failed']} deployments lost, "
            f"{point['recoveries']} recovered "
            f"(rate {point['recovery_rate']:.2f}), "
            f"availability {point['availability']:.3f}, "
            f"p99 {point['p99_latency_s'] * 1e3:.1f} ms"
        )
    print(f"report written to {args.output}")


if __name__ == "__main__":  # pragma: no cover - manual driver
    main()
