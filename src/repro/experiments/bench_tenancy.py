"""Benchmark driver for the multi-tenant fairness layer.

Runs a premium (high-priority, non-preemptible) and a best-effort
(low-priority, preemptible, block-quota-bounded) tenant together on a
pod-sharded cluster at 2x the measured saturating rate, with the
best-effort stream alone saturating the machine, and emits
``BENCH_tenancy.json`` with three arms:

* ``premium_solo``       — the premium stream with the cluster to itself:
  the interference-free reference its p99 bound is measured against;
* ``mixed_untenanted``   — both streams through the plain scheduler (no
  tenancy layer): the headline interference the layer exists to remove;
* ``mixed_tenancy``      — both streams under the
  :class:`~repro.tenancy.TenantScheduler` with quotas, weighted
  fair-share, strict priority and checkpoint + requeue preemption.

The acceptance gate (the report's ``gate`` block): **zero quota
violations** (the ledger's per-tenant peak resident blocks/replicas never
exceeded a quota — exact, not sampled), the premium tenant's p99 latency
in the tenancy arm within ``P99_BOUND_FACTOR`` (2x) of its solo p99, and
every preempted best-effort task eventually completing (recovery rate
1.0).  Regenerate with::

    PYTHONPATH=src python -m repro.experiments.bench_tenancy           # full
    PYTHONPATH=src python -m repro.experiments.bench_tenancy --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from ..cluster import ClusterSimulator, Task, scaled_cluster
from ..perf.profiling import PROFILER
from ..runtime import Catalog, build_system
from ..tenancy import TenancyParameters, TenantParameters, TenantScheduler
from ..vital import VitalCompiler
from ..workloads import ARRIVAL_PROCESSES, arrival_process

#: Pod-sharded bench cluster: 16 boards in 4 pods (the paper mix 3:1).
BOARD_COUNT = 16
POD_SIZE = 4

PREMIUM = "premium"
BEST_EFFORT = "besteffort"

#: Disjoint model sets: contention is for *blocks*, not deployments.
TENANT_MODELS = {
    PREMIUM: ("gru-h512-t1",),
    BEST_EFFORT: ("lstm-h256-t150", "lstm-h512-t25"),
}

#: Measured saturating rate of the combined stream on this cluster (the
#: mixed arms run at OVERLOAD_FACTOR times this, split 1:3
#: premium:best-effort so the best-effort stream alone saturates).
BASE_RATE_PER_S = 6400.0
OVERLOAD_FACTOR = 2.0
PREMIUM_SHARE = 0.25

#: Block quotas as fractions of the cluster's total virtual blocks: the
#: best-effort tenant may fill most of the machine (so the premium tenant
#: must *preempt* to get in), but never all of it.
BEST_EFFORT_BLOCK_FRACTION = 0.8
PREMIUM_BLOCK_FRACTION = 0.3

#: Premium p99 in the tenancy arm must stay within this factor of solo.
P99_BOUND_FACTOR = 2.0

SMOKE_TASK_COUNT = 160
FULL_TASK_COUNT = 640
ARRIVAL_SEED = 17


def build_tenants(total_blocks: int) -> list:
    """The bench's two tenant contracts, quotas sized to the cluster."""
    return [
        TenantParameters(
            name=PREMIUM,
            priority=1,
            weight=2.0,
            block_quota=max(1, int(total_blocks * PREMIUM_BLOCK_FRACTION)),
            preemptible=False,
        ),
        TenantParameters(
            name=BEST_EFFORT,
            priority=0,
            weight=1.0,
            block_quota=max(1, int(total_blocks * BEST_EFFORT_BLOCK_FRACTION)),
            preemptible=True,
        ),
    ]


def build_streams(
    task_count: int, rate_per_s: float, trace: str, seed: int = ARRIVAL_SEED
) -> dict:
    """Per-tenant task streams; the premium tenant gets PREMIUM_SHARE of
    the tasks and of the rate, so per-stream mean gaps match."""
    premium_count = max(1, int(task_count * PREMIUM_SHARE))
    counts = {PREMIUM: premium_count, BEST_EFFORT: task_count - premium_count}
    rates = {
        PREMIUM: rate_per_s * PREMIUM_SHARE,
        BEST_EFFORT: rate_per_s * (1.0 - PREMIUM_SHARE),
    }
    streams = {}
    for offset, name in enumerate(sorted(counts)):
        models = TENANT_MODELS[name]
        arrivals = arrival_process(trace)(
            counts[name], rates[name], seed=seed + offset
        )
        streams[name] = [
            Task(
                task_id=offset * task_count + index,
                model_key=models[index % len(models)],
                arrival_s=arrival_s,
                size_class="S",
                tenant=name,
            )
            for index, arrival_s in enumerate(arrivals)
        ]
    return streams


def _percentile(values: list, fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[int(fraction * (len(ordered) - 1))]


def _tenant_latencies(result) -> dict:
    latencies: dict = {}
    for task in result.completed:
        latencies.setdefault(task.tenant, []).append(task.latency_s)
    return latencies


def _latency_block(latencies: dict) -> dict:
    return {
        name: {
            "completed": len(values),
            "mean_s": sum(values) / len(values) if values else 0.0,
            "p50_s": _percentile(values, 0.50),
            "p99_s": _percentile(values, 0.99),
        }
        for name, values in sorted(latencies.items())
    }


def run_arm(streams: dict, tenants: list | None, label: str) -> dict:
    """One simulated arm; ``tenants=None`` runs the plain scheduler.

    ``streams`` must be freshly built for this arm — the simulator
    mutates task state (start/finish stamps, run epochs), so arms must
    never share :class:`Task` objects.
    """
    PROFILER.reset()
    cluster = scaled_cluster(BOARD_COUNT, pod_size=POD_SIZE)
    system = build_system("proposed", cluster, Catalog(VitalCompiler()))
    scheduler = system
    tenancy = None
    if tenants is not None:
        tenancy = TenantScheduler(system, tenants, TenancyParameters())
        scheduler = tenancy
    tasks = sorted(
        (task for stream in streams.values() for task in stream),
        key=lambda task: (task.arrival_s, task.task_id),
    )
    start = time.perf_counter()
    result = ClusterSimulator(scheduler, label).run(tasks)
    wall_s = time.perf_counter() - start
    latencies = _tenant_latencies(result)
    arm = {
        "label": label,
        "offered": len(tasks),
        "completed": len(result.completed),
        "dropped": len(result.dropped),
        "makespan_s": result.makespan_s,
        "wall_clock_s": wall_s,
        "tenants": _latency_block(latencies),
        "placement_failures": system.controller.stats.placement_failures,
        "quota_rejections": system.controller.stats.quota_rejections,
    }
    if tenancy is not None:
        stats = tenancy.stats
        arm["tenancy"] = {
            "preemption_sweeps": stats.preemption_sweeps,
            "deployments_preempted": stats.deployments_preempted,
            "tasks_preempted": stats.tasks_preempted,
            "preempted_distinct": stats.preempted_distinct,
            "preempted_completed": stats.preempted_completed,
            "recovery_rate": (
                stats.preempted_completed / stats.preempted_distinct
                if stats.preempted_distinct
                else 1.0
            ),
            "quota_sheds": stats.quota_sheds,
            "checkpoint_s": stats.checkpoint_s,
            "restore_s": stats.restore_s,
            "quota_violations": tenancy.quota_violations(),
            "report": tenancy.tenant_report(),
        }
    return arm


def run_bench(
    task_count: int = FULL_TASK_COUNT,
    output: str | pathlib.Path | None = "BENCH_tenancy.json",
    trace: str = "poisson",
) -> dict:
    """Run the three arms at 2x overload; write (unless ``output`` is
    None) and return the report."""
    cluster = scaled_cluster(BOARD_COUNT, pod_size=POD_SIZE)
    total_blocks = sum(len(board.blocks) for board in cluster.boards.values())
    tenants = build_tenants(total_blocks)
    rate = BASE_RATE_PER_S * OVERLOAD_FACTOR
    # Each arm gets its own freshly built (seed-identical) Task objects:
    # the simulator stamps start/finish state into tasks, so sharing them
    # across arms would leak one run's state into the next.
    solo = run_arm(
        {PREMIUM: build_streams(task_count, rate, trace)[PREMIUM]},
        [t for t in tenants if t.name == PREMIUM],
        "tenancy-premium-solo",
    )
    untenanted = run_arm(
        build_streams(task_count, rate, trace), None,
        "tenancy-mixed-untenanted",
    )
    tenanted = run_arm(
        build_streams(task_count, rate, trace), tenants, "tenancy-mixed"
    )
    solo_p99 = solo["tenants"][PREMIUM]["p99_s"]
    mixed_p99 = tenanted["tenants"][PREMIUM]["p99_s"]
    tenancy = tenanted["tenancy"]
    gate = {
        "overload_factor": OVERLOAD_FACTOR,
        "quota_violations": tenancy["quota_violations"],
        "premium_solo_p99_s": solo_p99,
        "premium_mixed_p99_s": mixed_p99,
        "p99_bound_factor": P99_BOUND_FACTOR,
        "p99_ratio": mixed_p99 / solo_p99 if solo_p99 else 0.0,
        "tasks_preempted": tenancy["tasks_preempted"],
        "recovery_rate": tenancy["recovery_rate"],
        "pass": (
            not tenancy["quota_violations"]
            and (solo_p99 == 0.0 or mixed_p99 <= P99_BOUND_FACTOR * solo_p99)
            and tenancy["recovery_rate"] >= 1.0
        ),
    }
    report = {
        "workload": {
            "task_count": task_count,
            "boards": BOARD_COUNT,
            "pod_size": POD_SIZE,
            "total_blocks": total_blocks,
            "base_rate_per_s": BASE_RATE_PER_S,
            "overload_factor": OVERLOAD_FACTOR,
            "premium_share": PREMIUM_SHARE,
            "trace": trace,
            "arrival_seed": ARRIVAL_SEED,
            "tenant_models": {k: list(v) for k, v in TENANT_MODELS.items()},
            "tenants": [
                {
                    "name": t.name,
                    "priority": t.priority,
                    "weight": t.weight,
                    "block_quota": t.block_quota,
                    "preemptible": t.preemptible,
                }
                for t in tenants
            ],
        },
        "premium_solo": solo,
        "mixed_untenanted": untenanted,
        "mixed_tenancy": tenanted,
        "gate": gate,
    }
    if output is not None:
        path = pathlib.Path(output)
        path.write_text(json.dumps(report, indent=1) + "\n")
    return report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=FULL_TASK_COUNT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI scale: {SMOKE_TASK_COUNT} tasks",
    )
    parser.add_argument("--output", default="BENCH_tenancy.json")
    parser.add_argument(
        "--trace",
        choices=sorted(ARRIVAL_PROCESSES),
        default="poisson",
        help="inter-arrival process shaping both tenants' streams",
    )
    args = parser.parse_args(argv)
    task_count = SMOKE_TASK_COUNT if args.smoke else args.tasks
    report = run_bench(
        task_count=task_count, output=args.output, trace=args.trace
    )
    for key in ("premium_solo", "mixed_untenanted", "mixed_tenancy"):
        arm = report[key]
        premium = arm["tenants"].get(PREMIUM, {})
        print(
            f"{key}: {arm['completed']}/{arm['offered']} completed, "
            f"premium p99 {premium.get('p99_s', 0.0) * 1e3:.2f} ms, "
            f"makespan {arm['makespan_s'] * 1e3:.1f} ms"
        )
    tenancy = report["mixed_tenancy"]["tenancy"]
    print(
        f"tenancy: {tenancy['preemption_sweeps']} sweeps preempted "
        f"{tenancy['deployments_preempted']} deployments / "
        f"{tenancy['tasks_preempted']} tasks "
        f"(recovery {tenancy['recovery_rate']:.3f}), "
        f"{report['mixed_tenancy']['quota_rejections']} quota rejections, "
        f"violations {tenancy['quota_violations']}"
    )
    gate = report["gate"]
    print(
        f"gate (x{gate['overload_factor']:g} overload): p99 ratio "
        f"{gate['p99_ratio']:.2f} <= {gate['p99_bound_factor']:g}, "
        f"violations {gate['quota_violations']}, recovery "
        f"{gate['recovery_rate']:.3f} -> "
        f"{'PASS' if gate['pass'] else 'FAIL'}"
    )
    print(f"report written to {args.output}")


if __name__ == "__main__":  # pragma: no cover - manual driver
    main()
