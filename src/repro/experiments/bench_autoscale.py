"""Benchmark driver for elastic replica autoscaling.

Static peak provisioning vs. the :class:`~repro.autoscale.Autoscaler`,
on trace-driven load (diurnal day/night cycle and bursty MMPP by
default), emitting ``BENCH_autoscale.json``.  Both arms run the same
serving frontend over the same seeded request stream on the paper
cluster; the only difference is provisioning:

* **static-peak** pre-places, per model, enough single-replica
  deployments to carry the trace's *windowed peak* arrival rate at the
  shared utilisation target — the classic fleet sized for the worst
  moment, resident for the whole run;
* **autoscale** pre-places the minimum (one deployment per model) and
  arms the autoscaler to track demand between ``min_replicas`` and
  ``max_replicas``.

The two metrics that matter: **SLO attainment** of admitted requests
(quality — elasticity must not cost deadlines) and **replica-seconds**
(cost — integrated exactly by a :class:`~repro.autoscale.ReplicaLedger`
on controller instantiate/discard hooks, both arms charged to one common
evaluation horizon).  The acceptance gate requires, on every trace, SLO
within 5 points of static peak while spending >= 30% fewer
replica-seconds.  Regenerate with::

    PYTHONPATH=src python -m repro.experiments.bench_autoscale           # full
    PYTHONPATH=src python -m repro.experiments.bench_autoscale --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import time

from ..autoscale import Autoscaler, AutoscaleParameters, ReplicaLedger
from ..cluster import ClusterSimulator, paper_cluster
from ..perf.profiling import PROFILER
from ..runtime import Catalog, build_system
from ..serving import Request, ServingFrontend, ServingParameters
from ..units import ms
from ..vital import VitalCompiler
from ..workloads import ARRIVAL_PROCESSES, arrival_process

#: Weighted round-robin model pattern: the stream leans on the slowest
#: model (lstm-h256-t150, ~1200 req/s per single deployment) so its
#: demand genuinely spans one-to-several deployments across the trace.
STREAM_PATTERN = (
    "lstm-h256-t150",
    "gru-h512-t1",
    "lstm-h256-t150",
    "lstm-h512-t25",
    "lstm-h256-t150",
    "lstm-h256-t150",
)
#: Mean offered rate over the whole stream (requests/s, all models).
TOTAL_RATE_PER_S = 2400.0
#: The canonical trace pair the gate runs on.
TRACES = ("diurnal", "mmpp")

FULL_TASK_COUNT = 12000
SMOKE_TASK_COUNT = 3000
ARRIVAL_SEED = 17

#: Relative SLO for every request.
DEADLINE_S = 0.25
#: Shared provisioning headroom: static sizes for peak demand at this
#: utilisation, the autoscaler's scale-down gate targets the same number
#: — identical headroom policy, applied once vs. continuously.
UTIL_TARGET = 0.6
#: Diurnal shape: deep troughs, and a period chosen so every run length
#: sees the same number of day/night cycles.
DIURNAL_AMPLITUDE = 0.9
DIURNAL_PERIODS = 2.5
#: Sliding window for the static arm's peak-rate measurement.
PEAK_WINDOW_S = 0.05
#: Replica-unit ceiling per model, shared by both arms (the static fleet
#: is clamped to the same ceiling the autoscaler honours).
MAX_UNITS = 6

#: Acceptance gate: autoscaled SLO within this many points of static
#: peak, with at least this fraction of replica-seconds saved.
GATE_SLO_MARGIN_PP = 5.0
GATE_SAVINGS_FLOOR = 0.30


def serving_parameters() -> ServingParameters:
    """Deep queues (the autoscaler's pressure signal needs headroom
    before shedding) and brownout off so elasticity is isolated."""
    return ServingParameters(
        default_deadline_s=DEADLINE_S,
        max_queue_depth=64,
        brownout_enabled=False,
    )


def autoscale_parameters() -> AutoscaleParameters:
    return AutoscaleParameters(
        max_replicas=MAX_UNITS,
        down_target_util=UTIL_TARGET,
        up_cooldown_s=ms(10.0),
        down_cooldown_s=ms(50.0),
    )


def build_trace(trace: str, task_count: int, seed: int = ARRIVAL_SEED) -> list:
    """Deadline-carrying request stream under one arrival shape, models
    assigned by the weighted round-robin pattern."""
    generator = arrival_process(trace)
    if trace == "diurnal":
        duration = task_count / TOTAL_RATE_PER_S
        arrivals = generator(
            task_count,
            TOTAL_RATE_PER_S,
            seed=seed,
            period_s=duration / DIURNAL_PERIODS,
            amplitude=DIURNAL_AMPLITUDE,
        )
    else:
        arrivals = generator(task_count, TOTAL_RATE_PER_S, seed=seed)
    return [
        Request(
            task_id=index,
            model_key=STREAM_PATTERN[index % len(STREAM_PATTERN)],
            arrival_s=arrival_s,
            size_class="S",
        )
        for index, arrival_s in enumerate(arrivals)
    ]


def _single_plan(controller, model_key: str):
    """The narrowest single-replica plan of one model."""
    plans = [
        plan
        for plan in controller.catalog.entry_by_key(model_key).sorted_plans()
        if plan.replicas == 1
    ]
    return min(plans, key=controller.plan_footprint)


def _probe_service_rate(model_key: str) -> float:
    """Requests/s of one single-replica deployment (a throwaway probe
    placement on a fresh cluster; deterministic)."""
    system = build_system("proposed", paper_cluster(), Catalog(VitalCompiler()))
    controller = system.controller
    plan = _single_plan(controller, model_key)
    deployment, _ = controller.place_plan(plan, 0.0)
    rate = 1.0 / deployment.service_s
    controller.discard(deployment)
    return rate


def peak_window_rates(tasks: list, window_s: float = PEAK_WINDOW_S) -> dict:
    """Per-model peak arrival rate over any ``window_s`` sliding window —
    what a static provisioner sizing for the worst moment would read off
    the trace."""
    by_model: dict[str, list] = {}
    for task in tasks:
        by_model.setdefault(task.model_key, []).append(task.arrival_s)
    peaks = {}
    for model_key, times in by_model.items():
        best = 1
        lo = 0
        for hi in range(len(times)):
            while times[hi] - times[lo] > window_s:
                lo += 1
            best = max(best, hi - lo + 1)
        peaks[model_key] = best / window_s
    return peaks


def static_fleet(tasks: list) -> dict:
    """Model -> replica units the static-peak arm pre-places: windowed
    peak rate over the utilisation target, clamped to the shared unit
    ceiling."""
    peaks = peak_window_rates(tasks)
    fleet = {}
    for model_key, peak_rate in peaks.items():
        need = math.ceil(peak_rate / (UTIL_TARGET * _probe_service_rate(model_key)))
        fleet[model_key] = max(1, min(MAX_UNITS, need))
    return fleet


def minimum_fleet(tasks: list) -> dict:
    """One deployment per model — the autoscale arm's starting point."""
    return {task.model_key: 1 for task in tasks}


def run_arm(
    trace: str, tasks: list, fleet: dict, autoscale: bool
) -> tuple[dict, ReplicaLedger]:
    """One full run; returns the metrics block and the (unfinalised)
    replica ledger, so both arms can be charged to a common horizon."""
    PROFILER.reset()
    system = build_system(
        "proposed", paper_cluster(), Catalog(VitalCompiler()), recovery=True
    )
    controller = system.controller
    frontend = ServingFrontend(system, serving_parameters())
    ledger = ReplicaLedger()
    controller.ledger = ledger
    arm = "autoscale" if autoscale else "static"
    simulator = ClusterSimulator(frontend, f"autoscale-{trace}-{arm}")
    for model_key in sorted(fleet):
        plan = _single_plan(controller, model_key)
        for _ in range(fleet[model_key]):
            placed = controller.place_plan(plan, 0.0)
            if placed is None:
                raise RuntimeError(
                    f"pre-placement of {model_key} x{fleet[model_key]} "
                    f"does not fit the cluster"
                )
    autoscaler = None
    if autoscale:
        autoscaler = Autoscaler(frontend, autoscale_parameters())
        autoscaler.arm(tasks[-1].arrival_s)
    start = time.perf_counter()
    result = simulator.run(tasks)
    wall_s = time.perf_counter() - start
    stats = frontend.stats
    metrics = {
        "arm": arm,
        "trace": trace,
        "preplaced_units": dict(sorted(fleet.items())),
        "offered": stats.offered,
        "admitted": stats.admitted,
        "shed": stats.shed,
        "expired": stats.expired,
        "abandoned": stats.abandoned,
        "completed": stats.completed,
        "dropped": len(result.dropped),
        "slo_attainment": stats.slo_attainment(),
        "slo_admitted": (
            stats.slo_hits / stats.admitted if stats.admitted else 1.0
        ),
        "goodput_per_s": (
            stats.slo_hits / result.makespan_s if result.makespan_s else 0.0
        ),
        "p50_latency_s": _percentile(stats.latencies_s, 0.50),
        "p99_latency_s": _percentile(stats.latencies_s, 0.99),
        "makespan_s": result.makespan_s,
        "wall_clock_s": wall_s,
        "deployments_created": controller.stats.deployments_created,
    }
    if autoscaler is not None:
        a = autoscaler.stats
        metrics["autoscale"] = {
            "ticks": a.ticks,
            "scale_ups": a.scale_ups,
            "scale_downs": a.scale_downs,
            "widenings": a.widenings,
            "additions": a.additions,
            "retirements": a.retirements,
            "narrowings": a.narrowings,
            "suppressed": a.suppressed,
            "blocked_by_capacity": a.blocked_by_capacity,
            "peak_units": dict(sorted(a.peak_units.items())),
        }
    return metrics, ledger


def _percentile(values: list, fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[int(fraction * (len(ordered) - 1))]


def run_trace(trace: str, task_count: int) -> dict:
    """Both arms on one trace, charged to one evaluation horizon."""
    tasks = build_trace(trace, task_count)
    static_metrics, static_ledger = run_arm(
        trace, tasks, static_fleet(tasks), autoscale=False
    )
    auto_metrics, auto_ledger = run_arm(
        trace, tasks, minimum_fleet(tasks), autoscale=True
    )
    horizon = max(static_metrics["makespan_s"], auto_metrics["makespan_s"])
    static_cost = static_ledger.totals(horizon)
    auto_cost = auto_ledger.totals(horizon)
    static_metrics["replica_seconds"] = static_cost["replica_seconds"]
    static_metrics["block_seconds"] = static_cost["block_seconds"]
    auto_metrics["replica_seconds"] = auto_cost["replica_seconds"]
    auto_metrics["block_seconds"] = auto_cost["block_seconds"]
    savings = (
        1.0 - auto_cost["replica_seconds"] / static_cost["replica_seconds"]
        if static_cost["replica_seconds"]
        else 0.0
    )
    slo_delta_pp = 100.0 * (
        static_metrics["slo_admitted"] - auto_metrics["slo_admitted"]
    )
    return {
        "trace": trace,
        "eval_horizon_s": horizon,
        "static": static_metrics,
        "autoscale": auto_metrics,
        "replica_second_savings": savings,
        "slo_delta_pp": slo_delta_pp,
        "pass": (
            slo_delta_pp <= GATE_SLO_MARGIN_PP
            and savings >= GATE_SAVINGS_FLOOR
        ),
    }


def run_bench(
    task_count: int = FULL_TASK_COUNT,
    output: str | pathlib.Path = "BENCH_autoscale.json",
    traces: tuple = TRACES,
) -> dict:
    results = [run_trace(trace, task_count) for trace in traces]
    report = {
        "workload": {
            "task_count": task_count,
            "pattern": list(STREAM_PATTERN),
            "total_rate_per_s": TOTAL_RATE_PER_S,
            "traces": list(traces),
            "arrival_seed": ARRIVAL_SEED,
            "deadline_s": DEADLINE_S,
            "util_target": UTIL_TARGET,
            "max_units": MAX_UNITS,
        },
        "traces": results,
        "gate": {
            "slo_margin_pp": GATE_SLO_MARGIN_PP,
            "savings_floor": GATE_SAVINGS_FLOOR,
            "per_trace": {
                r["trace"]: {
                    "slo_delta_pp": r["slo_delta_pp"],
                    "replica_second_savings": r["replica_second_savings"],
                    "pass": r["pass"],
                }
                for r in results
            },
            "pass": all(r["pass"] for r in results),
        },
    }
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=1) + "\n")
    return report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=FULL_TASK_COUNT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI scale: {SMOKE_TASK_COUNT} tasks",
    )
    parser.add_argument("--output", default="BENCH_autoscale.json")
    parser.add_argument(
        "--arrival",
        choices=sorted(ARRIVAL_PROCESSES),
        default=None,
        help="run a single arrival shape instead of the canonical pair",
    )
    args = parser.parse_args(argv)
    task_count = SMOKE_TASK_COUNT if args.smoke else args.tasks
    traces = (args.arrival,) if args.arrival else TRACES
    report = run_bench(
        task_count=task_count, output=args.output, traces=traces
    )
    for result in report["traces"]:
        static, auto = result["static"], result["autoscale"]
        print(
            f"{result['trace']:8s} static : units {static['preplaced_units']} "
            f"SLO {static['slo_admitted']:.3f} "
            f"replica-s {static['replica_seconds']:.2f}"
        )
        print(
            f"{result['trace']:8s} auto   : "
            f"ups {auto['autoscale']['scale_ups']} "
            f"downs {auto['autoscale']['scale_downs']} "
            f"SLO {auto['slo_admitted']:.3f} "
            f"replica-s {auto['replica_seconds']:.2f} "
            f"(savings {result['replica_second_savings']:.1%}, "
            f"dSLO {result['slo_delta_pp']:.2f} pp) -> "
            f"{'PASS' if result['pass'] else 'FAIL'}"
        )
    print(f"gate: {'PASS' if report['gate']['pass'] else 'FAIL'}")
    print(f"report written to {args.output}")


if __name__ == "__main__":  # pragma: no cover - manual driver
    main()
