"""Physical FPGA instances and their virtual-block occupancy.

A :class:`PhysicalFPGA` is one board in the cluster: a device model plus the
runtime state of its virtual blocks.  The runtime allocator reserves
contiguous block counts (ViTAL compiles each cluster for a block *count*,
not specific positions — blocks are identical, so any free subset works),
and different accelerators share one device by occupying disjoint blocks
(the paper's fine-grained spatial sharing).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AllocationError
from .device import FPGAModel


@dataclass
class VirtualBlockState:
    """Occupancy record for one virtual block."""

    index: int
    owner: str | None = None  # deployment id, None when free

    @property
    def free(self) -> bool:
        return self.owner is None


class PhysicalFPGA:
    """One physical board: device model + virtual-block occupancy."""

    def __init__(self, fpga_id: str, model: FPGAModel):
        self.fpga_id = fpga_id
        self.model = model
        self.blocks = [
            VirtualBlockState(index=i) for i in range(model.usable_blocks)
        ]

    # -- queries -------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return sum(1 for block in self.blocks if block.free)

    @property
    def used_blocks(self) -> int:
        return len(self.blocks) - self.free_blocks

    def owners(self) -> set:
        """Deployment ids currently resident on this board."""
        return {block.owner for block in self.blocks if block.owner is not None}

    def can_host(self, block_count: int) -> bool:
        return 0 < block_count <= self.free_blocks

    # -- allocation ---------------------------------------------------------------

    def allocate(self, owner: str, block_count: int) -> list:
        """Reserve ``block_count`` free blocks for ``owner``.

        Returns the reserved block indices; raises
        :class:`AllocationError` when insufficient blocks are free.
        """
        if block_count <= 0:
            raise AllocationError(f"{self.fpga_id}: block count must be positive")
        free = [block for block in self.blocks if block.free]
        if len(free) < block_count:
            raise AllocationError(
                f"{self.fpga_id}: requested {block_count} blocks, "
                f"{len(free)} free"
            )
        taken = free[:block_count]
        for block in taken:
            block.owner = owner
        return [block.index for block in taken]

    def release(self, owner: str) -> int:
        """Free every block held by ``owner``; returns the count released."""
        released = 0
        for block in self.blocks:
            if block.owner == owner:
                block.owner = None
                released += 1
        return released

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PhysicalFPGA({self.fpga_id!r}, {self.model.name}, "
            f"{self.used_blocks}/{len(self.blocks)} blocks used)"
        )
