"""Physical FPGA instances and their virtual-block occupancy.

A :class:`PhysicalFPGA` is one board in the cluster: a device model plus the
runtime state of its virtual blocks.  The runtime allocator reserves
contiguous block counts (ViTAL compiles each cluster for a block *count*,
not specific positions — blocks are identical, so any free subset works),
and different accelerators share one device by occupying disjoint blocks
(the paper's fine-grained spatial sharing).

Occupancy bookkeeping is incremental: the board maintains a cached free
count, a min-heap of free indices (so allocation still hands out the
lowest-numbered free blocks, as the scan-based allocator did) and a
per-owner index map, all updated in O(k log n) per allocate/release instead
of rescanning every block.  Observers (the controller's placement index)
subscribe to occupancy changes so derived structures never rescan either.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass

from ..errors import AllocationError
from .device import FPGAModel


class BoardHealth(enum.Enum):
    """Runtime health of one physical board (the fault-injection model).

    ``HEALTHY`` boards accept new placements.  ``DEGRADED`` boards keep
    serving the deployments they already host but receive no new ones
    (drain mode — the operator pulls the board gracefully).  ``FAILED``
    boards have lost their configuration entirely: resident deployments
    are gone, and the board re-enters service empty after repair.
    """

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    FAILED = "failed"


@dataclass
class VirtualBlockState:
    """Occupancy record for one virtual block."""

    index: int
    owner: str | None = None  # deployment id, None when free

    @property
    def free(self) -> bool:
        return self.owner is None


class PhysicalFPGA:
    """One physical board: device model + virtual-block occupancy."""

    def __init__(self, fpga_id: str, model: FPGAModel):
        self.fpga_id = fpga_id
        self.model = model
        self.blocks = [
            VirtualBlockState(index=i) for i in range(model.usable_blocks)
        ]
        self._free_count = len(self.blocks)
        # Min-heap of free indices: pop order matches the old first-free scan.
        self._free_heap = list(range(len(self.blocks)))
        self._owned: dict[str, list[int]] = {}
        self._listeners: list = []
        self.health = BoardHealth.HEALTHY
        self._health_listeners: list = []

    # -- queries -------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return self._free_count

    @property
    def used_blocks(self) -> int:
        return len(self.blocks) - self._free_count

    def owners(self) -> set:
        """Deployment ids currently resident on this board."""
        return set(self._owned)

    @property
    def is_placeable(self) -> bool:
        """Whether the placement policies may target this board."""
        return self.health is BoardHealth.HEALTHY

    def can_host(self, block_count: int) -> bool:
        return (
            self.health is BoardHealth.HEALTHY
            and 0 < block_count <= self._free_count
        )

    def owned_indices(self, owner: str) -> list:
        """Block indices held by ``owner`` on this board (empty when none).

        Migration repoints placement records to the destination board's
        freshly configured blocks through this accessor.
        """
        return list(self._owned.get(owner, ()))

    def recount_free_blocks(self) -> int:
        """From-scratch recount over the occupancy records.

        The allocator itself never calls this; it exists so invariant tests
        can check the cached counter against ground truth.
        """
        return sum(1 for block in self.blocks if block.free)

    # -- observers -----------------------------------------------------------

    def subscribe(self, listener) -> None:
        """Register ``listener(board, old_free_count)`` for occupancy changes."""
        self._listeners.append(listener)

    def _notify(self, old_free: int) -> None:
        for listener in self._listeners:
            listener(self, old_free)

    def subscribe_health(self, listener) -> None:
        """Register ``listener(board, old_health)`` for health transitions."""
        self._health_listeners.append(listener)

    def set_health(self, health: BoardHealth) -> None:
        """Transition the board's health state, notifying subscribers.

        The board's occupancy bookkeeping stays mechanical across every
        state (a failed board can still ``release`` so teardown paths need
        no special cases); what changes is placement eligibility, which the
        controller's index tracks through the health subscription.
        """
        if health is self.health:
            return
        old = self.health
        self.health = health
        for listener in self._health_listeners:
            listener(self, old)

    # -- allocation ---------------------------------------------------------------

    def allocate(self, owner: str, block_count: int) -> list:
        """Reserve ``block_count`` free blocks for ``owner``.

        Returns the reserved block indices; raises
        :class:`AllocationError` when insufficient blocks are free.
        """
        if self.health is BoardHealth.FAILED:
            raise AllocationError(
                f"{self.fpga_id}: board is failed, cannot allocate"
            )
        if block_count <= 0:
            raise AllocationError(f"{self.fpga_id}: block count must be positive")
        if block_count > self._free_count:
            raise AllocationError(
                f"{self.fpga_id}: requested {block_count} blocks, "
                f"{self._free_count} free"
            )
        taken = [heapq.heappop(self._free_heap) for _ in range(block_count)]
        for index in taken:
            self.blocks[index].owner = owner
        self._owned.setdefault(owner, []).extend(taken)
        old_free = self._free_count
        self._free_count -= block_count
        self._notify(old_free)
        return taken

    def release(self, owner: str) -> int:
        """Free every block held by ``owner``; returns the count released."""
        indices = self._owned.pop(owner, None)
        if not indices:
            return 0
        for index in indices:
            self.blocks[index].owner = None
            heapq.heappush(self._free_heap, index)
        old_free = self._free_count
        self._free_count += len(indices)
        self._notify(old_free)
        return len(indices)

    def reset(self) -> None:
        """Release every block (fresh simulation run)."""
        if self._free_count == len(self.blocks):
            return
        for block in self.blocks:
            block.owner = None
        self._owned.clear()
        self._free_heap = list(range(len(self.blocks)))
        old_free = self._free_count
        self._free_count = len(self.blocks)
        self._notify(old_free)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PhysicalFPGA({self.fpga_id!r}, {self.model.name}, "
            f"{self.used_blocks}/{len(self.blocks)} blocks used)"
        )
