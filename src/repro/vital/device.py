"""FPGA device models.

The evaluation cluster (paper Section 4.2) has three Xilinx Virtex
UltraScale+ XCVU37P parts and one Kintex UltraScale XCKU115.  Device totals
are back-derived from Table 2's utilisation percentages (e.g. 610k LUTs at
46.8% => ~1303k LUTs on the VU37P); virtual-block capacities follow Table 3.

Each device type carries a ViTAL-style grid of identical virtual blocks;
one block per device is reserved for the static shell (PCIe/DRAM/network),
leaving ``usable_blocks`` for accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resources import ResourceVector
from ..units import mbit, mhz


@dataclass(frozen=True)
class FPGAModel:
    """One FPGA device type and its virtualized view.

    Attributes:
        name: marketing part name.
        resources: total device resources.
        block_capacity: resources of one virtual block.
        total_blocks: virtual blocks in the grid.
        shell_blocks: blocks reserved out of the grid (0 by default: the
            grid is laid out beside the static shell region, which the
            block capacities already exclude — device totals exceed the
            sum of block capacities).
        frequency_hz: clock achieved by floorplanned designs on this part.
        has_uram: whether the part provides UltraRAM.
        peripherals: interfaces the shell exposes to accelerators; a
            cluster is only feasible on devices providing the interfaces it
            requires (paper Section 2.2.2: "sufficient amount of resource
            and the required interfaces to peripherals").
    """

    name: str
    resources: ResourceVector
    block_capacity: ResourceVector
    total_blocks: int
    shell_blocks: int = 0
    frequency_hz: float = mhz(400)
    has_uram: bool = True
    peripherals: frozenset = frozenset({"pcie", "dram", "network"})

    @property
    def usable_blocks(self) -> int:
        """Blocks available to accelerators."""
        return self.total_blocks - self.shell_blocks

    def blocks_needed(self, demand: ResourceVector) -> int:
        """Virtual blocks required to host ``demand`` (binding-resource
        ceiling; ``inf`` ratios mean the demand can never fit)."""
        import math

        ratio = demand.max_ratio(self.block_capacity)
        if ratio == math.inf:
            return self.total_blocks + 1  # sentinel: infeasible
        return max(1, math.ceil(ratio))

    def fits(self, demand: ResourceVector) -> bool:
        """True when ``demand`` fits the usable blocks of one device."""
        return self.blocks_needed(demand) <= self.usable_blocks

    def provides(self, required_peripherals) -> bool:
        """True when the shell exposes every required interface."""
        return set(required_peripherals) <= self.peripherals


#: Virtex UltraScale+ XCVU37P: 16 virtual blocks of ~79k LUTs / 580 DSPs.
XCVU37P = FPGAModel(
    name="XCVU37P",
    resources=ResourceVector(
        luts=1_303_000,
        ffs=2_605_000,
        bram_bits=mbit(70.9),
        uram_bits=mbit(270.0),
        dsps=9024,
    ),
    block_capacity=ResourceVector(
        luts=79_000,
        ffs=158_400,
        bram_bits=mbit(4.3),
        uram_bits=mbit(16.5),
        dsps=580,
    ),
    total_blocks=16,
    frequency_hz=mhz(400),
    has_uram=True,
)

#: Kintex UltraScale XCKU115: 10 virtual blocks of ~50.6k LUTs / 552 DSPs.
XCKU115 = FPGAModel(
    name="XCKU115",
    resources=ResourceVector(
        luts=663_700,
        ffs=1_326_000,
        bram_bits=mbit(75.9),
        uram_bits=0.0,
        dsps=5520,
    ),
    block_capacity=ResourceVector(
        luts=50_600,
        ffs=83_500,
        bram_bits=mbit(5.2),
        uram_bits=0.0,
        dsps=552,
    ),
    total_blocks=10,
    frequency_hz=mhz(300),
    has_uram=False,
)

#: The heterogeneous device-type registry.
DEVICE_TYPES = {model.name: model for model in (XCVU37P, XCKU115)}
