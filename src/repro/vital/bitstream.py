"""Pseudo-bitstream artifacts and the low-level controller.

The multi-layer framework reuses "the compilation tool provided by the
corresponding HS abstraction-based solution" and sends configuration
requests to its low-level controller (paper Fig. 7).  We model the artifact
side of that contract: compiling a cluster for a device type yields a
:class:`Bitstream` with a deterministic content id; the
:class:`LowLevelController` "configures" physical FPGAs by loading
bitstreams into allocated virtual blocks and tracks a configuration log the
tests assert against.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..errors import DeploymentError
from .virtual_block import PhysicalFPGA


@dataclass(frozen=True)
class Bitstream:
    """One compiled artifact: a cluster image for one device type."""

    artifact_id: str
    accelerator: str
    cluster_index: int
    device_type: str
    virtual_blocks: int
    #: Modelled compile wall-clock (seconds) — feeds the Section 4.3
    #: compilation-overhead experiment.
    compile_seconds: float = 0.0

    @staticmethod
    def make_id(
        accelerator: str, cluster_signature: str, device_type: str, blocks: int
    ) -> str:
        """Content address: structural signature + target, NOT the
        accelerator name — structurally identical clusters compiled for the
        same device share one artifact, which is what amortises scale-down
        compilation across accelerator instances (Section 4.3)."""
        blob = f"{cluster_signature}|{device_type}|{blocks}"
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


class BitstreamStore:
    """Content-addressed store; compiling the same cluster twice for the
    same device type is a cache hit (what amortises the scale-down compile
    cost across accelerator instances, Section 4.3)."""

    def __init__(self):
        self._store: dict[str, Bitstream] = {}
        self.hits = 0
        self.misses = 0

    def get_or_add(self, bitstream: Bitstream) -> tuple:
        """Returns ``(bitstream, was_cached)``."""
        existing = self._store.get(bitstream.artifact_id)
        if existing is not None:
            self.hits += 1
            return existing, True
        self.misses += 1
        self._store[bitstream.artifact_id] = bitstream
        return bitstream, False

    def lookup(self, artifact_id: str) -> Bitstream:
        try:
            return self._store[artifact_id]
        except KeyError:
            raise DeploymentError(f"unknown bitstream {artifact_id!r}") from None

    def __len__(self) -> int:
        return len(self._store)

    def total_compile_seconds(self) -> float:
        """Wall-clock actually spent compiling (cache hits cost nothing)."""
        return sum(b.compile_seconds for b in self._store.values())


@dataclass
class ConfigurationEvent:
    """One low-level configure/release action (the controller's log)."""

    action: str  # "configure" | "release"
    fpga_id: str
    owner: str
    artifact_id: str = ""
    blocks: list = field(default_factory=list)


class LowLevelController:
    """The HS-abstraction-side controller the framework sends requests to."""

    def __init__(self, store: BitstreamStore):
        self.store = store
        self.log: list[ConfigurationEvent] = []

    def configure(
        self, fpga: PhysicalFPGA, owner: str, artifact_id: str
    ) -> list:
        """Load a bitstream into free virtual blocks of ``fpga``."""
        bitstream = self.store.lookup(artifact_id)
        if bitstream.device_type != fpga.model.name:
            raise DeploymentError(
                f"bitstream {artifact_id} targets {bitstream.device_type}, "
                f"FPGA {fpga.fpga_id} is {fpga.model.name}"
            )
        indices = fpga.allocate(owner, bitstream.virtual_blocks)
        self.log.append(
            ConfigurationEvent(
                action="configure",
                fpga_id=fpga.fpga_id,
                owner=owner,
                artifact_id=artifact_id,
                blocks=indices,
            )
        )
        return indices

    def release(self, fpga: PhysicalFPGA, owner: str) -> int:
        """Free all blocks held by ``owner`` on ``fpga``."""
        released = fpga.release(owner)
        if released:
            self.log.append(
                ConfigurationEvent(action="release", fpga_id=fpga.fpga_id, owner=owner)
            )
        return released
