"""Floorplanning-quality frequency model.

Section 4.2 / Fig. 10: both the baseline accelerators and the ViTAL virtual
blocks are manually floorplanned with Vivado so the comparison is fair —
without floorplanning, congested placements lose clock frequency.

We model the phenomenon rather than the P&R algorithm: achieved frequency is
the device's calibrated clock when floorplanned, degraded by congestion (a
function of utilisation) when not.  This feeds Table 2/3's "Freq." column
and the floorplanning ablation benchmark.
"""

from __future__ import annotations

import enum

from ..resources import ResourceVector
from .device import FPGAModel


class FloorplanQuality(enum.Enum):
    """How placement was performed."""

    #: Manual region constraints per component (the paper's methodology).
    FLOORPLANNED = "floorplanned"
    #: Tool-default placement.
    AUTOMATIC = "automatic"


#: Base frequency penalty of skipping floorplanning.
_AUTOMATIC_BASE_PENALTY = 0.08
#: Additional congestion penalty per unit of binding utilisation above 50%.
_CONGESTION_SLOPE = 0.35


def achieved_frequency(
    device: FPGAModel,
    demand: ResourceVector,
    quality: FloorplanQuality = FloorplanQuality.FLOORPLANNED,
) -> float:
    """Achieved clock for a design of ``demand`` resources on ``device``.

    Floorplanned designs reach the device's calibrated clock.  Automatic
    placement loses a base margin plus a congestion term that grows with
    the binding resource utilisation — heavily packed designs suffer most.
    """
    if quality is FloorplanQuality.FLOORPLANNED:
        return device.frequency_hz
    utilisation = min(1.0, demand.max_ratio(device.resources))
    congestion = max(0.0, utilisation - 0.5) * _CONGESTION_SLOPE
    penalty = min(0.35, _AUTOMATIC_BASE_PENALTY + congestion)
    return device.frequency_hz * (1.0 - penalty)


def frequency_gain_of_floorplanning(
    device: FPGAModel, demand: ResourceVector
) -> float:
    """Relative speedup floorplanning buys for this design (ablation)."""
    auto = achieved_frequency(device, demand, FloorplanQuality.AUTOMATIC)
    best = achieved_frequency(device, demand, FloorplanQuality.FLOORPLANNED)
    return best / auto - 1.0
