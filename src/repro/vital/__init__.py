"""The hardware-specific (HS) abstraction substrate — a ViTAL-like layer.

ViTAL (ASPLOS'20, [53] in the paper) divides each FPGA into an array of
*identical virtual blocks* with latency-insensitive interfaces, compiles
designs block-by-block, and lets a low-level controller place compiled
blocks onto any physical FPGA of the same type at runtime.

This package models what the multi-layer framework needs from ViTAL:

* :mod:`~repro.vital.device`        — FPGA device models (XCVU37P, XCKU115)
  with their virtual-block grids and capacities (calibrated to Tables 2/3).
* :mod:`~repro.vital.virtual_block` — physical FPGA instances with runtime
  block occupancy.
* :mod:`~repro.vital.floorplan`     — the floorplanning-quality frequency
  model (Section 4.2 / Fig. 10).
* :mod:`~repro.vital.compiler`      — maps soft-block clusters onto virtual
  blocks of every feasible device type, producing deployment options.
* :mod:`~repro.vital.bitstream`     — pseudo-bitstream artifacts and the
  low-level configuration controller API.
"""

from .device import FPGAModel, XCVU37P, XCKU115, DEVICE_TYPES
from .virtual_block import BoardHealth, PhysicalFPGA, VirtualBlockState
from .floorplan import achieved_frequency, FloorplanQuality
from .compiler import VitalCompiler, CompiledAccelerator
from .bitstream import Bitstream, BitstreamStore, LowLevelController

__all__ = [
    "Bitstream",
    "BitstreamStore",
    "BoardHealth",
    "CompiledAccelerator",
    "DEVICE_TYPES",
    "FPGAModel",
    "FloorplanQuality",
    "LowLevelController",
    "PhysicalFPGA",
    "VirtualBlockState",
    "VitalCompiler",
    "XCKU115",
    "XCVU37P",
    "achieved_frequency",
]
