"""The HS-abstraction compiler: soft-block clusters -> virtual blocks.

Implements the mapping half of Fig. 5: each partition cluster is compiled
for *every* feasible device type (enough virtual blocks and required
peripherals), so the runtime can deploy onto whichever FPGA is free — the
heterogeneous multi-FPGA support existing HS abstractions lack.

Also models compile *time* (Section 4.3): a cluster's compile cost scales
with its logic volume (Vivado-like minutes-per-kLUT), while the decompose
and partition steps are measured wall-clock (they are negligible, <1%).
The :class:`~repro.vital.bitstream.BitstreamStore` caches artifacts so
scaled-down clusters shared between accelerator instances are compiled
once — the amortisation argument behind the paper's 24.6% figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.decompose import DecomposedAccelerator
from ..core.mapping import AcceleratorMapping, ClusterImage, DeploymentOption
from ..core.partition import PartitionTree
from ..errors import CompileError
from ..resources import ResourceVector
from .bitstream import Bitstream, BitstreamStore
from .device import DEVICE_TYPES, FPGAModel
from .floorplan import FloorplanQuality, achieved_frequency

#: Modelled Vivado compile rate: seconds of P&R per kLUT of logic.  A full
#: VU37P accelerator (~640 kLUT) compiles in ~3.2 hours, which matches the
#: order of magnitude of real large-design compile times.
COMPILE_SECONDS_PER_KLUT = 18.0
#: Fixed per-run overhead (synthesis startup, netlisting).
COMPILE_FIXED_SECONDS = 600.0


def estimate_compile_seconds(demand: ResourceVector) -> float:
    """Modelled HS-compiler wall clock for one cluster."""
    return COMPILE_FIXED_SECONDS + COMPILE_SECONDS_PER_KLUT * demand.luts / 1e3


@dataclass
class CompiledAccelerator:
    """Everything compilation produced for one accelerator instance."""

    mapping: AcceleratorMapping
    bitstreams: list = field(default_factory=list)
    compile_seconds: float = 0.0
    cached_artifacts: int = 0


class VitalCompiler:
    """Compiles partitioned accelerators against the device-type registry."""

    def __init__(
        self,
        devices: dict | None = None,
        store: BitstreamStore | None = None,
        floorplan: FloorplanQuality = FloorplanQuality.FLOORPLANNED,
    ):
        self.devices = dict(devices or DEVICE_TYPES)
        self.store = store or BitstreamStore()
        self.floorplan = floorplan

    # -- single cluster ---------------------------------------------------------

    def compile_cluster(
        self,
        accelerator: str,
        cluster_index: int,
        cluster_signature: str,
        demand: ResourceVector,
        device: FPGAModel,
        required_peripherals=frozenset(("dram",)),
    ) -> tuple:
        """Compile one cluster for one device type.

        Returns ``(ClusterImage, Bitstream, was_cached)``; raises
        :class:`CompileError` when the cluster cannot fit the device or
        the device's shell lacks a required peripheral interface.
        """
        if not device.provides(required_peripherals):
            missing = set(required_peripherals) - device.peripherals
            raise CompileError(
                f"{accelerator} cluster {cluster_index} needs peripherals "
                f"{sorted(missing)} that {device.name} does not provide"
            )
        if demand.uram_bits > 0 and not device.has_uram:
            # The parameterised memory module retargets URAM demand onto
            # BRAM for URAM-less devices (Section 3).
            demand = ResourceVector(
                luts=demand.luts,
                ffs=demand.ffs,
                bram_bits=demand.bram_bits + demand.uram_bits,
                uram_bits=0.0,
                dsps=demand.dsps,
            )
        blocks = device.blocks_needed(demand)
        if blocks > device.usable_blocks:
            raise CompileError(
                f"{accelerator} cluster {cluster_index} needs {blocks} virtual "
                f"blocks, {device.name} has {device.usable_blocks} usable"
            )
        frequency = achieved_frequency(device, demand, self.floorplan)
        bitstream, cached = self.store.get_or_add(
            Bitstream(
                artifact_id=Bitstream.make_id(
                    accelerator, cluster_signature, device.name, blocks
                ),
                accelerator=accelerator,
                cluster_index=cluster_index,
                device_type=device.name,
                virtual_blocks=blocks,
                compile_seconds=estimate_compile_seconds(demand),
            )
        )
        image = ClusterImage(
            cluster_index=cluster_index,
            device_type=device.name,
            virtual_blocks=blocks,
            frequency_hz=frequency,
            resources=demand,
            artifact=bitstream.artifact_id,
        )
        return image, bitstream, cached

    # -- whole accelerator -------------------------------------------------------------

    def compile_accelerator(
        self,
        decomposed: DecomposedAccelerator,
        tree: PartitionTree,
        instance_name: str | None = None,
        include_control_with_first_cluster: bool = True,
    ) -> CompiledAccelerator:
        """Compile every frontier of the partition tree for every device.

        The control-path block is co-located with the first cluster of each
        frontier (the decoder must sit next to the lanes it drives); its
        resources are added to that cluster's demand.
        """
        instance_name = instance_name or decomposed.name
        mapping = AcceleratorMapping(
            accelerator=decomposed.name, instance_name=instance_name
        )
        result = CompiledAccelerator(mapping=mapping)
        control_demand = (
            decomposed.control.resources()
            if include_control_with_first_cluster
            else ResourceVector.zero()
        )

        for frontier in tree.frontiers():
            option = DeploymentOption(
                accelerator=decomposed.name,
                option_id=f"{instance_name}/x{len(frontier)}"
                f"#{'-'.join(str(n.index) for n in frontier)}",
                cluster_indices=[node.index for node in frontier],
                cut_bits=tree.cut_bandwidth(frontier),
            )
            # Multi-cluster frontiers exchange data over the inter-FPGA
            # network; single-cluster options only need the DRAM interface.
            peripherals = (
                frozenset(("dram", "network"))
                if len(frontier) > 1
                else frozenset(("dram",))
            )
            for position, node in enumerate(frontier):
                demand = node.cluster.resources()
                if position == 0:
                    demand = demand + control_demand
                images = {}
                for device in self.devices.values():
                    try:
                        image, bitstream, cached = self.compile_cluster(
                            decomposed.name,
                            node.index,
                            node.cluster.signature,
                            demand,
                            device,
                            required_peripherals=peripherals,
                        )
                    except CompileError:
                        continue
                    images[device.name] = image
                    if cached:
                        result.cached_artifacts += 1
                    else:
                        result.bitstreams.append(bitstream)
                        result.compile_seconds += bitstream.compile_seconds
                option.images[node.index] = images
            if option.is_deployable():
                mapping.options.append(option)
        if not mapping.options:
            raise CompileError(
                f"{decomposed.name}: no deployable option on any device type"
            )
        return result
