"""Mapping results — what the runtime database stores.

After decomposing and partitioning, each accelerator has a set of
*deployment options*: frontiers of the partition tree, each cluster of which
has been compiled (via the HS abstraction) for every feasible FPGA type.
The runtime controller (Section 2.3) searches these records when the
hypervisor requests a deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..resources import ResourceVector


@dataclass(frozen=True)
class ClusterImage:
    """One partition cluster compiled for one device type.

    ``virtual_blocks`` is how many of that device's identical virtual blocks
    the cluster occupies; ``frequency_hz`` the achieved clock.  ``artifact``
    names the pseudo-bitstream produced by the HS compiler.
    """

    cluster_index: int
    device_type: str
    virtual_blocks: int
    frequency_hz: float
    resources: ResourceVector
    artifact: str = ""


@dataclass
class DeploymentOption:
    """One frontier of the partition tree, compiled for all device types.

    ``images[cluster_index]`` maps device-type name to :class:`ClusterImage`
    (missing device types mean the cluster does not fit that type).
    ``cut_bits`` is the inter-cluster communication bandwidth this option
    pays per result when clusters land on different FPGAs.
    """

    accelerator: str
    option_id: str
    cluster_indices: list
    images: dict = field(default_factory=dict)
    cut_bits: int = 0
    #: Set for scale-down options (Section 2.3): number of replicas and the
    #: fraction of data-parallel units each replica carries.
    scale_down_factor: int = 1

    @property
    def num_clusters(self) -> int:
        return len(self.cluster_indices)

    def feasible_types(self, cluster_index: int) -> list:
        """Device types this cluster can be deployed on."""
        return sorted(self.images.get(cluster_index, {}))

    def is_deployable(self) -> bool:
        """True when every cluster fits at least one device type."""
        return all(self.images.get(ci) for ci in self.cluster_indices)


@dataclass
class AcceleratorMapping:
    """Everything the database stores for one compiled accelerator instance.

    The runtime policy sorts ``options`` by number of clusters ascending
    (the greedy fewest-FPGAs-first policy of Section 2.3).
    """

    accelerator: str
    instance_name: str
    options: list = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def sorted_options(self) -> list:
        """Options ordered by cluster count then cut bandwidth."""
        return sorted(
            (opt for opt in self.options if opt.is_deployable()),
            key=lambda opt: (opt.num_clusters, opt.cut_bits),
        )

    def option_by_id(self, option_id: str) -> DeploymentOption:
        for opt in self.options:
            if opt.option_id == option_id:
                return opt
        raise KeyError(f"no deployment option {option_id!r} for {self.instance_name!r}")
