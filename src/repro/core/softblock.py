"""Soft blocks: the nodes of the system abstraction.

A soft block (paper Section 2.1) either

* is a **leaf** containing a basic module (a Verilog module that does not
  instantiate other Verilog modules), or
* has children connected in one of the two primitive parallel patterns.

Unlike HS-abstraction virtual blocks, soft blocks carry **no spatial
resource constraint** — their resource demand is whatever their contents
need.  That is the property that lets the decomposing step run unconstrained
and lets the abstraction present a homogeneous resource pool over
heterogeneous FPGAs.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator

from ..errors import MappingError
from ..resources import ResourceVector, total
from .patterns import BlockRole, PatternKind

_block_ids = itertools.count(1)


def _next_id() -> int:
    return next(_block_ids)


class SoftBlock:
    """A node in a soft-block tree.

    Attributes:
        block_id: process-unique integer id (deterministic within a run).
        name: human-readable label (module/instance derived).
        kind: :class:`PatternKind` — LEAF, DATA or PIPELINE.
        role: control-path or data-path block.
        children: child blocks; pipeline order is list order.
        module_name / instance_path: leaf payload — which basic module this
            block wraps and where it sits in the source hierarchy.
        signature: structural-equivalence class of the contents (leaves get
            it from the RTL equivalence checker; composites derive it from
            children), used when merging data-parallel groups.
        in_bits / out_bits: interface width in bits; for pipeline children
            the ``out_bits`` of stage *i* is the bandwidth of the edge to
            stage *i+1*, which the partitioner minimises over.
    """

    def __init__(
        self,
        name: str,
        kind: PatternKind,
        role: BlockRole = BlockRole.DATA,
        children: list | None = None,
        module_name: str | None = None,
        instance_path: str | None = None,
        signature: str | None = None,
        resources: ResourceVector | None = None,
        in_bits: int = 0,
        out_bits: int = 0,
        metadata: dict | None = None,
    ):
        self.block_id = _next_id()
        self.name = name
        self.kind = kind
        self.role = role
        self.children: list[SoftBlock] = list(children or [])
        self.module_name = module_name
        self.instance_path = instance_path
        self._resources = resources
        self.in_bits = in_bits
        self.out_bits = out_bits
        self.metadata: dict = dict(metadata or {})
        if signature is not None:
            self.signature = signature
        else:
            self.signature = self._derive_signature()

        if kind is PatternKind.LEAF and self.children:
            raise MappingError(f"leaf block {name!r} cannot have children")
        if kind.is_composite and len(self.children) < 2:
            raise MappingError(
                f"{kind.value} block {name!r} needs at least 2 children, "
                f"got {len(self.children)}"
            )

    # -- structure -----------------------------------------------------------

    def _derive_signature(self) -> str:
        if self.kind is PatternKind.LEAF:
            return f"leaf:{self.module_name or self.name}"
        inner = ",".join(child.signature for child in self.children)
        return f"{self.kind.value}({inner})"

    @property
    def is_leaf(self) -> bool:
        """True when this block wraps a basic module directly."""
        return self.kind is PatternKind.LEAF

    def iter_blocks(self) -> Iterator["SoftBlock"]:
        """Pre-order traversal over this subtree."""
        yield self
        for child in self.children:
            yield from child.iter_blocks()

    def leaves(self) -> list["SoftBlock"]:
        """All leaf blocks in this subtree, left-to-right."""
        return [block for block in self.iter_blocks() if block.is_leaf]

    def depth(self) -> int:
        """Tree depth (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def count(self) -> int:
        """Number of blocks in this subtree."""
        return sum(1 for _ in self.iter_blocks())

    def arity_profile(self) -> dict:
        """Histogram of ``(kind, arity)`` over the subtree — used in tests."""
        profile: dict = {}
        for block in self.iter_blocks():
            key = (block.kind.value, len(block.children))
            profile[key] = profile.get(key, 0) + 1
        return profile

    # -- resources ---------------------------------------------------------------

    def resources(self) -> ResourceVector:
        """Aggregate resource demand of the subtree.

        Leaves carry their basic module's estimated cost; composites sum
        their children.  A block constructed with an explicit resource
        vector (e.g. an intra-block data-parallel slice) reports that.
        """
        if self._resources is not None:
            return self._resources
        return total(child.resources() for child in self.children)

    # -- editing -------------------------------------------------------------------

    def clone(self) -> "SoftBlock":
        """Deep copy with fresh block ids."""
        return SoftBlock(
            name=self.name,
            kind=self.kind,
            role=self.role,
            children=[child.clone() for child in self.children],
            module_name=self.module_name,
            instance_path=self.instance_path,
            signature=self.signature,
            resources=self._resources,
            in_bits=self.in_bits,
            out_bits=self.out_bits,
            metadata=dict(self.metadata),
        )

    def map_leaves(self, fn: Callable[["SoftBlock"], None]) -> None:
        """Apply ``fn`` to every leaf in the subtree (in place)."""
        for leaf in self.leaves():
            fn(leaf)

    # -- display --------------------------------------------------------------------

    def label(self) -> str:
        """Short one-line description for tree rendering."""
        from .patterns import describe_pattern

        pattern = describe_pattern(self.kind, len(self.children))
        return f"{self.name} [{pattern}] {self.resources().describe()}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SoftBlock(#{self.block_id} {self.name!r} {self.kind.value} "
            f"children={len(self.children)})"
        )


# ---------------------------------------------------------------------------
# Constructors — the pattern algebra
# ---------------------------------------------------------------------------


def leaf_block(
    name: str,
    module_name: str | None = None,
    resources: ResourceVector | None = None,
    role: BlockRole = BlockRole.DATA,
    signature: str | None = None,
    instance_path: str | None = None,
    in_bits: int = 0,
    out_bits: int = 0,
    metadata: dict | None = None,
) -> SoftBlock:
    """Create a leaf soft block wrapping one basic module."""
    return SoftBlock(
        name=name,
        kind=PatternKind.LEAF,
        role=role,
        module_name=module_name or name,
        instance_path=instance_path,
        signature=signature,
        resources=resources or ResourceVector.zero(),
        in_bits=in_bits,
        out_bits=out_bits,
        metadata=metadata,
    )


def data_block(name: str, children: list, **kwargs) -> SoftBlock:
    """Create a data-parallel parent over ``children``."""
    return SoftBlock(name=name, kind=PatternKind.DATA, children=children, **kwargs)


def pipeline_block(name: str, children: list, **kwargs) -> SoftBlock:
    """Create a pipeline parent; stage order is list order."""
    return SoftBlock(name=name, kind=PatternKind.PIPELINE, children=children, **kwargs)


def reduction_block(name: str, mappers: list, combiners: list) -> SoftBlock:
    """The paper's Fig. 2c example: reduction from the two primitives.

    A reduction is a data-parallel map stage feeding a pipeline of
    combiners — demonstrating that complex patterns are expressible with
    DATA and PIPELINE alone.
    """
    map_stage = data_block(f"{name}/map", mappers)
    if len(combiners) == 1:
        stages = [map_stage, combiners[0]]
    else:
        stages = [map_stage, pipeline_block(f"{name}/combine", combiners)]
    return pipeline_block(name, stages)
