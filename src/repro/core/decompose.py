"""The decomposing tool (paper Section 2.2.1).

Decomposes an AS ISA-based accelerator, given as a structural RTL design,
onto the soft-block system abstraction using the *bottom-up* flow the paper
automates:

1. **Build block graph** — extract all basic modules of the data path, one
   leaf soft block each; edges come from shared nets (weights = net width).
2. **Extract intra-block data parallelism** — a basic module whose primitive
   network splits into k >= 2 equivalent independent components becomes a
   DATA block of k slices.
3. **Identify inter-block data parallelism** — structurally-equivalent
   sibling blocks with the same producers/consumers merge under a DATA
   parent (the paper's three cases are handled by normalising nested DATA
   nodes, see :func:`_normalise_data_children`).
4. **Identify pipeline parallelism** — linear producer/consumer chains merge
   under a PIPELINE parent; two adjacent DATA blocks with equal arity merge
   lane-wise into the two-level DATA-of-PIPELINE subtree of Fig. 4c.
5. **Iterate** — steps 3 and 4 repeat until no block can be merged.

The control path cannot be reliably identified automatically from RTL, so —
exactly as in the paper — the caller marks it by module name
(``control_modules=...``); those instances are kept in a single undivided
CONTROL block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..errors import DecomposeError
from ..resources import ResourceVector, total
from ..rtl import (
    Design,
    basic_module_instances,
    instance_resources,
    structural_signature,
    validate_design,
)
from ..rtl.hierarchy import BasicInstance
from ..rtl import primitives as rtl_primitives
from .patterns import BlockRole, PatternKind
from .softblock import SoftBlock, data_block, leaf_block, pipeline_block

#: Net names treated as global distribution networks (never data edges).
GLOBAL_NETS = ("clk", "clock", "rst", "reset", "rst_n", "en")


@dataclass
class DecomposeStats:
    """Bookkeeping about one decomposition run (used by reports/tests)."""

    basic_blocks: int = 0
    control_blocks: int = 0
    intra_block_splits: int = 0
    data_merges: int = 0
    pipeline_merges: int = 0
    lane_merges: int = 0
    iterations: int = 0
    residual_roots: int = 0
    events: list = field(default_factory=list)

    def note(self, message: str) -> None:
        self.events.append(message)


@dataclass
class DecomposedAccelerator:
    """Result of decomposing one accelerator design.

    ``control`` is the undivided control-path block; ``data_root`` is the
    root of the extracted soft-block tree for the data path.
    """

    name: str
    control: SoftBlock
    data_root: SoftBlock
    stats: DecomposeStats

    def total_resources(self) -> ResourceVector:
        """Control plus data-path demand."""
        return self.control.resources() + self.data_root.resources()

    @property
    def root_pattern(self) -> PatternKind:
        """Pattern of the data-path root — DATA enables the scale-out
        optimisation of Section 2.3."""
        return self.data_root.kind

    def supports_scale_down(self) -> bool:
        """True when the scale-down optimisation applies (root is DATA)."""
        return self.data_root.kind is PatternKind.DATA


class Decomposer:
    """Configurable decomposing tool; see module docstring for the steps."""

    def __init__(
        self,
        extract_intra_block: bool = True,
        max_iterations: int = 64,
    ):
        self.extract_intra_block = extract_intra_block
        self.max_iterations = max_iterations

    # -- public API ------------------------------------------------------------

    def decompose(
        self,
        design: Design,
        control_modules,
        name: str | None = None,
    ) -> DecomposedAccelerator:
        """Run the five-step flow on ``design``.

        ``control_modules`` is an iterable of module names whose instances
        form the control path (designer-provided, as in the paper).
        """
        validate_design(design)
        control_set = set(control_modules)
        stats = DecomposeStats()

        instances = basic_module_instances(design)
        if not instances:
            raise DecomposeError(f"design {design.name!r} has no basic modules")

        control_insts = [b for b in instances if self._is_control(b, control_set)]
        data_insts = [b for b in instances if not self._is_control(b, control_set)]
        if not data_insts:
            raise DecomposeError(
                "all basic modules were marked control; nothing to decompose"
            )
        if not control_insts:
            raise DecomposeError(
                f"no instance matched control modules {sorted(control_set)}; "
                "mark the control path by module name"
            )

        control = self._build_control_block(design, control_insts)
        stats.control_blocks = len(control_insts)

        graph = self._build_block_graph(design, data_insts, stats)
        stats.basic_blocks = graph.number_of_nodes()

        self._iterate_merges(graph, stats)

        data_root = self._finalise_root(graph, stats)
        return DecomposedAccelerator(
            name=name or design.name,
            control=control,
            data_root=data_root,
            stats=stats,
        )

    # -- step 1: block graph ------------------------------------------------------

    @staticmethod
    def _is_control(instance: BasicInstance, control_set) -> bool:
        if instance.module_name in control_set:
            return True
        return any(part in control_set for part in instance.path.split("/"))

    def _build_control_block(self, design: Design, control_insts) -> SoftBlock:
        resources = total(
            instance_resources(design, inst.module_name) for inst in control_insts
        )
        names = sorted({inst.module_name for inst in control_insts})
        return leaf_block(
            name="control",
            module_name="+".join(names),
            resources=resources,
            role=BlockRole.CONTROL,
            metadata={"instances": [inst.path for inst in control_insts]},
        )

    def _build_block_graph(
        self, design: Design, data_insts, stats: DecomposeStats
    ) -> nx.DiGraph:
        graph = nx.DiGraph()
        producers: dict[str, list] = {}
        consumers: dict[str, list] = {}

        for index, inst in enumerate(data_insts):
            module = design.require_module(inst.module_name)
            in_bits = sum(
                module.ports[p].width
                for p in inst.inputs
                if p in module.ports and not self._is_global_port(p)
            )
            out_bits = sum(
                module.ports[p].width for p in inst.outputs if p in module.ports
            )
            block = self._make_leaf(design, inst, in_bits, out_bits, stats)
            graph.add_node(index, block=block)
            for port_name, net_key in inst.outputs.items():
                width = module.ports[port_name].width if port_name in module.ports else 1
                producers.setdefault(net_key, []).append((index, width))
            for port_name, net_key in inst.inputs.items():
                if self._is_global_port(port_name):
                    continue
                width = module.ports[port_name].width if port_name in module.ports else 1
                consumers.setdefault(net_key, []).append((index, width))

        for net_key, outs in producers.items():
            for src, width in outs:
                for dst, _ in consumers.get(net_key, ()):
                    if src == dst:
                        continue
                    if graph.has_edge(src, dst):
                        graph.edges[src, dst]["bits"] += width
                    else:
                        graph.add_edge(src, dst, bits=width)
        return graph

    @staticmethod
    def _is_global_port(port_name: str) -> bool:
        return port_name.lower() in GLOBAL_NETS

    def _make_leaf(
        self,
        design: Design,
        inst: BasicInstance,
        in_bits: int,
        out_bits: int,
        stats: DecomposeStats,
    ) -> SoftBlock:
        resources = instance_resources(design, inst.module_name)
        signature = structural_signature(design, inst.module_name)
        base = leaf_block(
            name=inst.path or inst.module_name,
            module_name=inst.module_name,
            resources=resources,
            signature=signature,
            instance_path=inst.path,
            in_bits=in_bits,
            out_bits=out_bits,
        )
        if not self.extract_intra_block:
            return base
        lanes = self._intra_block_lanes(design, inst.module_name)
        if lanes < 2:
            return base
        # Step 2 (Fig. 4a): replace the leaf by a DATA block of equal slices.
        stats.intra_block_splits += 1
        stats.note(f"intra-block split {inst.path or inst.module_name} x{lanes}")
        slices = [
            leaf_block(
                name=f"{base.name}#lane{i}",
                module_name=inst.module_name,
                resources=resources * (1.0 / lanes),
                signature=f"{signature}/lane",
                instance_path=inst.path,
                in_bits=max(1, in_bits // lanes),
                out_bits=max(1, out_bits // lanes),
            )
            for i in range(lanes)
        ]
        return data_block(
            base.name,
            slices,
            signature=signature,
            in_bits=in_bits,
            out_bits=out_bits,
            instance_path=inst.path,
        )

    @staticmethod
    def _intra_block_lanes(design: Design, module_name: str) -> int:
        """Count equivalent independent primitive components inside a basic
        module (the equivalence-checking step of Fig. 4a)."""
        module = design.require_module(module_name)
        prims = [
            inst
            for inst in module.instances.values()
            if rtl_primitives.is_primitive(inst.module_name)
        ]
        if len(prims) < 2:
            return 1
        undirected = nx.Graph()
        for inst in prims:
            undirected.add_node(inst.name, cell=inst.module_name)
        net_users: dict[str, list] = {}
        for inst in prims:
            for port_name, net_name in inst.connections.items():
                if port_name.lower() in GLOBAL_NETS or net_name.lower() in GLOBAL_NETS:
                    continue
                if net_name in module.ports:
                    continue  # shared I/O does not serialise lanes
                net_users.setdefault(net_name, []).append(inst.name)
        for users in net_users.values():
            for i in range(len(users) - 1):
                undirected.add_edge(users[i], users[i + 1])
        components = list(nx.connected_components(undirected))
        if len(components) < 2:
            return 1
        profiles = set()
        for component in components:
            cells = sorted(undirected.nodes[n]["cell"] for n in component)
            profiles.add(tuple(cells))
        return len(components) if len(profiles) == 1 else 1

    # -- steps 3-5: iterate merges ---------------------------------------------------

    def _iterate_merges(self, graph: nx.DiGraph, stats: DecomposeStats) -> None:
        for _ in range(self.max_iterations):
            stats.iterations += 1
            changed = self._merge_data_siblings(graph, stats)
            changed |= self._merge_lane_pipelines(graph, stats)
            changed |= self._merge_pipeline_chains(graph, stats)
            if not changed:
                return
        raise DecomposeError(
            f"decomposition did not converge in {self.max_iterations} iterations"
        )

    def _merge_data_siblings(self, graph: nx.DiGraph, stats: DecomposeStats) -> bool:
        """Step 3: group equivalent blocks sharing producers and consumers.

        Grouping uses the *lane* signature — a DATA block whose children all
        share one signature groups by that signature — so that incremental
        merges (``data*2`` next to a bare lane, the paper's cases 2 and 3)
        keep coalescing until one DATA parent covers the whole group.
        """
        groups: dict = {}
        for node in graph.nodes:
            block = graph.nodes[node]["block"]
            preds = frozenset(graph.predecessors(node))
            succs = frozenset(graph.successors(node))
            key = (_lane_signature(block), preds - {node}, succs - {node})
            groups.setdefault(key, []).append(node)

        merged_any = False
        for (signature, preds, succs), members in groups.items():
            if len(members) < 2:
                continue
            member_set = set(members)
            # Data-parallel blocks must not feed each other.
            if preds & member_set or succs & member_set:
                continue
            blocks = [graph.nodes[n]["block"] for n in members]
            children = _normalise_data_children(blocks)
            parent = data_block(
                name=f"data[{blocks[0].name}x{len(children)}]",
                children=children,
                signature=f"data*{len(children)}:{children[0].signature}",
                in_bits=sum(b.in_bits for b in children),
                out_bits=sum(b.out_bits for b in children),
            )
            _contract(graph, members, parent)
            stats.data_merges += 1
            stats.note(f"data merge x{len(children)} sig={signature[:12]}")
            # Restart: the graph mutated under the grouping we iterate over.
            return True
        return merged_any

    def _merge_lane_pipelines(self, graph: nx.DiGraph, stats: DecomposeStats) -> bool:
        """Step 4 (Fig. 4c): adjacent equal-arity DATA blocks merge lane-wise
        into DATA-of-PIPELINE."""
        for src, dst in list(graph.edges):
            if src == dst:
                continue
            a = graph.nodes[src]["block"]
            b = graph.nodes[dst]["block"]
            if a.kind is not PatternKind.DATA or b.kind is not PatternKind.DATA:
                continue
            if len(a.children) != len(b.children):
                continue
            if graph.out_degree(src) != 1 or graph.in_degree(dst) != 1:
                continue
            lanes = []
            for index, (left, right) in enumerate(zip(a.children, b.children)):
                stage_left = left.clone()
                stage_right = right.clone()
                edge_bits = graph.edges[src, dst]["bits"]
                stage_left.out_bits = max(1, edge_bits // len(a.children))
                lane = _join_pipeline(
                    f"lane{index}[{stage_left.name}->{stage_right.name}]",
                    [stage_left, stage_right],
                )
                lanes.append(lane)
            parent = data_block(
                name=f"data[{len(lanes)}xlane]",
                children=lanes,
                signature=f"data*{len(lanes)}:{lanes[0].signature}",
                in_bits=a.in_bits,
                out_bits=b.out_bits,
            )
            _contract(graph, [src, dst], parent)
            stats.lane_merges += 1
            stats.note(f"lane merge {a.name} -> {b.name}")
            return True
        return False

    def _merge_pipeline_chains(self, graph: nx.DiGraph, stats: DecomposeStats) -> bool:
        """Step 4 (chains): merge maximal linear producer/consumer chains."""
        for start in list(graph.nodes):
            chain = _maximal_chain(graph, start)
            if len(chain) < 2:
                continue
            blocks = []
            for position, node in enumerate(chain):
                block = graph.nodes[node]["block"]
                if position + 1 < len(chain):
                    bits = graph.edges[node, chain[position + 1]]["bits"]
                    block.out_bits = bits
                blocks.append(block)
            parent = _join_pipeline(
                f"pipe[{blocks[0].name}..{blocks[-1].name}]", blocks
            )
            _contract(graph, chain, parent)
            stats.pipeline_merges += 1
            stats.note(f"pipeline merge of {len(chain)} stages")
            return True
        return False

    # -- finish -------------------------------------------------------------------

    @staticmethod
    def _finalise_root(graph: nx.DiGraph, stats: DecomposeStats) -> SoftBlock:
        nodes = list(graph.nodes)
        stats.residual_roots = len(nodes)
        if len(nodes) == 1:
            return graph.nodes[nodes[0]]["block"]
        # Irregular residue: order topologically and wrap in a pipeline so a
        # single root always exists; flag it so callers know patterns did not
        # fully cover the design.
        try:
            order = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible:
            order = nodes
        blocks = [graph.nodes[n]["block"] for n in order]
        root = _join_pipeline("pipe[residual]", blocks)
        root.metadata["irregular"] = True
        stats.note(f"residual wrap of {len(blocks)} roots")
        return root


# ---------------------------------------------------------------------------
# Graph/tree helpers
# ---------------------------------------------------------------------------


def _contract(graph: nx.DiGraph, members, parent: SoftBlock) -> None:
    """Replace ``members`` by one node holding ``parent``; external edges are
    re-attached with summed widths."""
    member_set = set(members)
    new_node = max(graph.nodes) + 1 if graph.nodes else 0
    in_edges: dict = {}
    out_edges: dict = {}
    for node in members:
        for pred in graph.predecessors(node):
            if pred in member_set:
                continue
            in_edges[pred] = in_edges.get(pred, 0) + graph.edges[pred, node]["bits"]
        for succ in graph.successors(node):
            if succ in member_set:
                continue
            out_edges[succ] = out_edges.get(succ, 0) + graph.edges[node, succ]["bits"]
    graph.remove_nodes_from(members)
    graph.add_node(new_node, block=parent)
    for pred, bits in in_edges.items():
        graph.add_edge(pred, new_node, bits=bits)
    for succ, bits in out_edges.items():
        graph.add_edge(new_node, succ, bits=bits)


def _lane_signature(block: SoftBlock) -> str:
    """The signature a block contributes to data-parallel grouping.

    A DATA block whose children all share one signature is, for grouping
    purposes, just "several of that child" — the paper's cases 2 and 3.
    """
    if block.kind is PatternKind.DATA:
        child_signatures = {child.signature for child in block.children}
        if len(child_signatures) == 1:
            return next(iter(child_signatures))
    return block.signature


def _normalise_data_children(blocks) -> list:
    """Implement the paper's three inter-block data-parallelism cases by
    splicing nested DATA nodes whose children share the group signature."""
    children: list[SoftBlock] = []
    lane_signatures = set()
    for block in blocks:
        if block.kind is PatternKind.DATA:
            lane_signatures.update(child.signature for child in block.children)
        else:
            lane_signatures.add(block.signature)
    splice = len(lane_signatures) == 1
    for block in blocks:
        if splice and block.kind is PatternKind.DATA:
            children.extend(block.children)  # cases 2 and 3
        else:
            children.append(block)  # case 1
    return children


def _join_pipeline(name: str, blocks) -> SoftBlock:
    """Create a PIPELINE parent, splicing nested PIPELINE children."""
    stages: list[SoftBlock] = []
    for block in blocks:
        if block.kind is PatternKind.PIPELINE:
            stages.extend(block.children)
        else:
            stages.append(block)
    return pipeline_block(
        name,
        stages,
        in_bits=stages[0].in_bits,
        out_bits=stages[-1].out_bits,
    )


def _maximal_chain(graph: nx.DiGraph, start) -> list:
    """The maximal linear chain through ``start`` (nodes with single in/out)."""

    def linear_forward(node) -> bool:
        return graph.out_degree(node) == 1

    def linear_backward(node) -> bool:
        return graph.in_degree(node) == 1

    chain = [start]
    seen = {start}
    node = start
    while linear_forward(node):
        (succ,) = graph.successors(node)
        if succ in seen or graph.in_degree(succ) != 1:
            break
        chain.append(succ)
        seen.add(succ)
        node = succ
    node = start
    while linear_backward(node):
        (pred,) = graph.predecessors(node)
        if pred in seen or graph.out_degree(pred) != 1:
            break
        chain.insert(0, pred)
        seen.add(pred)
        node = pred
    return chain


def decompose(
    design: Design,
    control_modules,
    name: str | None = None,
    extract_intra_block: bool = True,
) -> DecomposedAccelerator:
    """Convenience wrapper: run the default :class:`Decomposer`."""
    tool = Decomposer(extract_intra_block=extract_intra_block)
    return tool.decompose(design, control_modules, name=name)
