"""The paper's primary contribution: the soft-block system abstraction.

This package implements Section 2 of the paper:

* :mod:`~repro.core.patterns` / :mod:`~repro.core.softblock` — the new
  system abstraction: a pool of soft blocks organised as a multi-level tree
  whose internal nodes are one of the two primitive parallel patterns
  (data parallelism, pipeline parallelism), Fig. 2.
* :mod:`~repro.core.interface` — the latency-insensitive interface every
  soft block exposes for inter-block communication.
* :mod:`~repro.core.decompose` — the five-step bottom-up decomposing tool
  (Section 2.2.1) that extracts all fine-grained parallel patterns from an
  RTL accelerator under *no* resource constraints.
* :mod:`~repro.core.partition` — the iterative pattern-guided partitioner
  (Section 2.2.2) producing deployment units for up to 2^N FPGAs.
* :mod:`~repro.core.mapping` — mapping results stored in the runtime
  database.
* :mod:`~repro.core.visualize` — ASCII rendering of soft-block trees.
"""

from .patterns import BlockRole, PatternKind
from .softblock import SoftBlock, leaf_block, data_block, pipeline_block
from .interface import LatencyInsensitiveInterface
from .decompose import DecomposedAccelerator, Decomposer, decompose
from .partition import PartitionNode, PartitionTree, Partitioner, partition
from .flat_partition import (
    FlatBipartition,
    compare_partitioners,
    flat_bipartition,
    pipelines_cut,
)
from .topdown import TopDownDecomposer, decompose_top_down
from .mapping import AcceleratorMapping, DeploymentOption
from .visualize import render_tree

__all__ = [
    "AcceleratorMapping",
    "BlockRole",
    "DecomposedAccelerator",
    "Decomposer",
    "DeploymentOption",
    "FlatBipartition",
    "compare_partitioners",
    "flat_bipartition",
    "pipelines_cut",
    "LatencyInsensitiveInterface",
    "PartitionNode",
    "PartitionTree",
    "Partitioner",
    "PatternKind",
    "SoftBlock",
    "TopDownDecomposer",
    "decompose_top_down",
    "data_block",
    "decompose",
    "leaf_block",
    "partition",
    "pipeline_block",
    "render_tree",
]
