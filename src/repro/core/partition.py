"""The partitioning tool (paper Section 2.2.2, Fig. 6).

Partitions a decomposed accelerator into clusters of soft blocks — the basic
units of runtime deployment.  The extracted parallel patterns prune the
search space:

* a **PIPELINE** block is split at the inter-stage connection with the
  *minimum communication bandwidth* (so the cut pays the least inter-FPGA
  traffic), and
* a **DATA** block is split by *evenly grouping* its children into two
  halves (all cuts are equivalent by symmetry).

Each iteration splits one cluster into two, building a binary *partition
tree*.  With N iterations the accelerator can be deployed into up to 2^N
FPGA devices; any *frontier* (antichain covering the tree) is a valid
deployment — e.g. Fig. 6's blocks #2, #3, #4 deploy onto 3 devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PartitionError
from ..resources import ResourceVector
from .patterns import PatternKind
from .softblock import SoftBlock, data_block, pipeline_block
from .decompose import DecomposedAccelerator


@dataclass
class PartitionNode:
    """One node of the binary partition tree.

    ``cluster`` is the soft-block cluster this node deploys as a unit.
    ``cut_bits`` is the bandwidth (bits per result) of the connection cut
    when this node was split into its children (0 for leaves of the
    partition tree).
    """

    index: int
    cluster: SoftBlock
    parent: "PartitionNode | None" = None
    left: "PartitionNode | None" = None
    right: "PartitionNode | None" = None
    cut_bits: int = 0
    cut_kind: PatternKind | None = None

    @property
    def is_split(self) -> bool:
        return self.left is not None

    def resources(self) -> ResourceVector:
        """Resource demand of this deployment unit."""
        return self.cluster.resources()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PartitionNode(#{self.index}, split={self.is_split})"


@dataclass
class PartitionTree:
    """The full result of the iterative partitioning process."""

    accelerator: str
    root: PartitionNode
    nodes: list = field(default_factory=list)
    iterations: int = 0

    def frontiers(self) -> list:
        """All frontiers (valid deployments), smallest first.

        A frontier is a set of nodes that exactly covers the accelerator:
        for every split node either the node itself is taken or both subtrees
        contribute.  The number of frontiers is exponential in depth in
        general but tiny for the 1-2 iterations the paper uses.
        """

        def expand(node: PartitionNode) -> list:
            options = [[node]]
            if node.is_split:
                for left_option in expand(node.left):
                    for right_option in expand(node.right):
                        options.append(left_option + right_option)
            return options

        frontier_list = expand(self.root)
        frontier_list.sort(key=len)
        return frontier_list

    def frontier_of_size(self, count: int) -> list:
        """A frontier with exactly ``count`` clusters (balanced choice).

        Raises :class:`PartitionError` when no frontier of that size exists
        (e.g. asking for 3 clusters after 1 iteration).
        """
        for frontier in self.frontiers():
            if len(frontier) == count:
                return frontier
        raise PartitionError(
            f"partition tree of {self.accelerator!r} has no frontier of "
            f"size {count} (run more iterations)"
        )

    def max_ways(self) -> int:
        """The largest available deployment width."""
        return max(len(f) for f in self.frontiers())

    def cut_bandwidth(self, frontier) -> int:
        """Total bits crossing between clusters of ``frontier``.

        Every split node whose two sides end up in *different* clusters of
        the frontier contributes its recorded cut bandwidth.
        """
        taken = {node.index for node in frontier}

        def crossing(node: PartitionNode) -> int:
            if not node.is_split or node.index in taken:
                return 0
            return node.cut_bits + crossing(node.left) + crossing(node.right)

        return crossing(self.root)


class Partitioner:
    """Iterative pattern-guided partitioner."""

    def __init__(self, min_cluster_leaves: int = 1):
        self.min_cluster_leaves = min_cluster_leaves

    def partition(
        self, accelerator: DecomposedAccelerator | SoftBlock, iterations: int = 1
    ) -> PartitionTree:
        """Build the partition tree with ``iterations`` rounds of splitting.

        In each round every currently-unsplit cluster that *can* split is
        split once (mirroring Fig. 6, where iteration ``i`` doubles the
        maximum deployment width to ``2^i``).
        """
        if iterations < 0:
            raise PartitionError("iterations must be non-negative")
        if isinstance(accelerator, DecomposedAccelerator):
            root_block = accelerator.data_root
            name = accelerator.name
        else:
            root_block = accelerator
            name = accelerator.name

        counter = [1]
        root = PartitionNode(index=counter[0], cluster=root_block)
        tree = PartitionTree(accelerator=name, root=root, nodes=[root])

        frontier = [root]
        for _ in range(iterations):
            tree.iterations += 1
            next_frontier = []
            for node in frontier:
                split = self._split(node, counter)
                if split is None:
                    next_frontier.append(node)
                    continue
                tree.nodes.extend([node.left, node.right])
                next_frontier.extend([node.left, node.right])
            if next_frontier == frontier:
                break  # nothing splittable remains
            frontier = next_frontier
        return tree

    # -- the split rule ------------------------------------------------------------

    def _split(self, node: PartitionNode, counter: list) -> PartitionNode | None:
        cluster = node.cluster
        if cluster.kind is PatternKind.LEAF:
            return None
        if len(cluster.leaves()) < 2 * self.min_cluster_leaves:
            return None
        if cluster.kind is PatternKind.PIPELINE:
            halves, cut_bits = self._split_pipeline(cluster)
        else:
            halves, cut_bits = self._split_data(cluster)
        if halves is None:
            return None
        left_block, right_block = halves
        counter[0] += 1
        node.left = PartitionNode(
            index=counter[0], cluster=left_block, parent=node
        )
        counter[0] += 1
        node.right = PartitionNode(
            index=counter[0], cluster=right_block, parent=node
        )
        node.cut_bits = cut_bits
        node.cut_kind = cluster.kind
        return node

    @staticmethod
    def _split_pipeline(cluster: SoftBlock):
        """Cut the pipeline at the minimum-bandwidth inter-stage connection."""
        children = cluster.children
        best_index = None
        best_bits = None
        for index in range(len(children) - 1):
            bits = children[index].out_bits or 1
            if best_bits is None or bits < best_bits:
                best_bits = bits
                best_index = index
        left = _regroup(cluster, children[: best_index + 1], PatternKind.PIPELINE)
        right = _regroup(cluster, children[best_index + 1 :], PatternKind.PIPELINE)
        return (left, right), int(best_bits)

    @staticmethod
    def _split_data(cluster: SoftBlock):
        """Evenly group data-parallel children into two clusters."""
        children = cluster.children
        middle = (len(children) + 1) // 2
        left = _regroup(cluster, children[:middle], PatternKind.DATA)
        right = _regroup(cluster, children[middle:], PatternKind.DATA)
        # The cut carries the scatter/gather traffic of the moved half.
        moved = children[middle:]
        cut_bits = sum(child.in_bits + child.out_bits for child in moved)
        return (left, right), int(cut_bits)


def _regroup(parent: SoftBlock, children, kind: PatternKind) -> SoftBlock:
    """Wrap a child slice in a new parent of the same pattern (paper: "two
    parent soft blocks are then created for these two clusters")."""
    if len(children) == 1:
        return children[0]
    factory = pipeline_block if kind is PatternKind.PIPELINE else data_block
    block = factory(f"{parent.name}/part", list(children))
    block.in_bits = (
        children[0].in_bits
        if kind is PatternKind.PIPELINE
        else sum(c.in_bits for c in children)
    )
    block.out_bits = (
        children[-1].out_bits
        if kind is PatternKind.PIPELINE
        else sum(c.out_bits for c in children)
    )
    return block


def partition(
    accelerator: DecomposedAccelerator | SoftBlock, iterations: int = 1
) -> PartitionTree:
    """Convenience wrapper: run the default :class:`Partitioner`."""
    return Partitioner().partition(accelerator, iterations=iterations)
