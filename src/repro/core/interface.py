"""Latency-insensitive inter-block interface model.

Every soft block communicates through a latency-insensitive (ready/valid)
interface (paper Section 2.1).  On real hardware, ViTAL implements these as
pipelined elastic channels; the cost is a few cycles of added latency per
boundary crossing — the source of the 3-8% latency overhead measured in
Table 4.

This module models that cost analytically so the timing model and the
partition-quality evaluation can account for it.  It also provides a small
cycle-level functional model of an elastic channel used by the unit tests to
validate the latency formula against behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MappingError


@dataclass(frozen=True)
class LatencyInsensitiveInterface:
    """Static description of one elastic channel.

    Attributes:
        width_bits: payload width.
        stages: number of pipeline register stages inserted on the channel
            (ViTAL inserts stages to cross virtual-block boundaries; more
            stages for longer physical distance).
        throughput: words accepted per cycle at steady state (1.0 for a
            fully elastic channel).
    """

    width_bits: int
    stages: int = 2
    throughput: float = 1.0

    def __post_init__(self):
        if self.width_bits < 0:
            raise MappingError("interface width must be non-negative")
        if self.stages < 1:
            raise MappingError("an elastic channel has at least one stage")

    @property
    def crossing_latency_cycles(self) -> int:
        """Extra cycles a word spends crossing this boundary."""
        return self.stages

    def transfer_cycles(self, words: int) -> int:
        """Cycles until the last of ``words`` emerges (fill + stream).

        The first word spends ``stages`` cycles in flight; each further
        word follows at the channel throughput.
        """
        if words <= 0:
            return 0
        steady = int((words - 1) / self.throughput)
        return self.stages + steady


class ElasticChannel:
    """Cycle-level model of a latency-insensitive channel.

    Used by tests to confirm :class:`LatencyInsensitiveInterface` formulas:
    push words in, step cycles, observe arrival times.  Backpressure is
    modelled by a bounded skid buffer at the consumer side.
    """

    def __init__(self, interface: LatencyInsensitiveInterface, buffer_depth: int = 4):
        self.interface = interface
        self.buffer_depth = buffer_depth
        # Each in-flight word is [remaining_stage_count, payload].
        self._pipe: list[list] = []
        self._output: list = []
        self.cycles = 0

    def can_accept(self) -> bool:
        """Producer-side ready signal."""
        in_flight = len(self._pipe) + len(self._output)
        return in_flight < self.buffer_depth + self.interface.stages

    def push(self, payload) -> bool:
        """Offer a word this cycle; returns False when stalled."""
        if not self.can_accept():
            return False
        self._pipe.append([self.interface.stages, payload])
        return True

    def step(self) -> None:
        """Advance one cycle."""
        self.cycles += 1
        matured = []
        for entry in self._pipe:
            entry[0] -= 1
            if entry[0] <= 0:
                matured.append(entry)
        for entry in matured:
            if len(self._output) < self.buffer_depth:
                self._pipe.remove(entry)
                self._output.append(entry[1])

    def pop(self):
        """Consume the oldest delivered word, or ``None`` when empty."""
        if self._output:
            return self._output.pop(0)
        return None

    @property
    def idle(self) -> bool:
        """True when nothing is in flight or buffered."""
        return not self._pipe and not self._output


def boundary_overhead_cycles(crossings: int, stages: int = 2) -> int:
    """Total added latency for a datum that crosses ``crossings`` boundaries.

    This is what the virtualized accelerator pays per dependent chain of
    computation relative to the monolithic baseline: each virtual-block
    boundary on the chain adds ``stages`` cycles.
    """
    if crossings < 0:
        raise MappingError("crossings must be non-negative")
    return crossings * stages
