"""The top-down decomposing flow (paper Fig. 3b).

The paper describes two equivalent flows for decomposing the data path:
bottom-up (implemented in :mod:`repro.core.decompose`, and the one the
paper's automation uses "due to the ease of implementation") and top-down —
"one soft block is decomposed into multiple child blocks based on one of
the two primitive parallel patterns [...] recursively applied on the newly
generated soft block until it contains a basic module".

The top-down flow works directly on the *module hierarchy*: at each level
it groups a module's data-path instances into data-parallel sets (by
structural equivalence with shared context) or pipeline chains (by
connectivity), descends into non-basic children, and bottoms out at basic
modules.  On designs whose hierarchy mirrors the parallel structure — like
the generated accelerator — it produces the same tree as the bottom-up
flow; tests assert that equivalence.
"""

from __future__ import annotations

from ..errors import DecomposeError
from ..resources import ResourceVector
from ..rtl import Design, instance_resources, is_basic_module, structural_signature
from ..rtl.ir import Direction, Module
from .decompose import GLOBAL_NETS, DecomposeStats, DecomposedAccelerator
from .patterns import BlockRole, PatternKind
from .softblock import SoftBlock, data_block, leaf_block, pipeline_block


class TopDownDecomposer:
    """Fig. 3b's recursive flow over the module hierarchy."""

    def decompose(
        self,
        design: Design,
        control_modules,
        name: str | None = None,
    ) -> DecomposedAccelerator:
        """Decompose ``design``; same contract as the bottom-up tool."""
        control_set = set(control_modules)
        stats = DecomposeStats()

        top = design.top_module
        data_instances = [
            inst
            for inst in top.instances.values()
            if design.has_module(inst.module_name)
            and inst.module_name not in control_set
            and inst.name not in control_set
        ]
        control_instances = [
            inst
            for inst in top.instances.values()
            if design.has_module(inst.module_name)
            and (inst.module_name in control_set or inst.name in control_set)
        ]
        if not control_instances:
            raise DecomposeError(
                f"no instance matched control modules {sorted(control_set)}"
            )
        if not data_instances:
            raise DecomposeError("all top-level instances marked control")
        stats.control_blocks = len(control_instances)

        control = leaf_block(
            name="control",
            module_name="+".join(
                sorted({inst.module_name for inst in control_instances})
            ),
            resources=_sum_resources(design, control_instances),
            role=BlockRole.CONTROL,
            metadata={"instances": [inst.name for inst in control_instances]},
        )

        data_root = self._decompose_group(design, top, data_instances, "", stats)
        return DecomposedAccelerator(
            name=name or design.name,
            control=control,
            data_root=data_root,
            stats=stats,
        )

    # -- the recursive split --------------------------------------------------

    def _decompose_group(
        self, design: Design, parent: Module, instances, path: str,
        stats: DecomposeStats,
    ) -> SoftBlock:
        """Decompose a set of sibling instances inside ``parent``."""
        if len(instances) == 1:
            return self._decompose_instance(design, instances[0], path, stats)

        # Try the data-parallel split: all siblings structurally equivalent
        # and not connected to each other.
        signatures = {
            structural_signature(design, inst.module_name)
            for inst in instances
        }
        if len(signatures) == 1 and not _interconnected(
            design, parent, instances
        ):
            stats.data_merges += 1
            children = [
                self._decompose_instance(design, inst, path, stats)
                for inst in instances
            ]
            return data_block(
                f"data[{path or parent.name}x{len(children)}]",
                children,
                in_bits=sum(c.in_bits for c in children),
                out_bits=sum(c.out_bits for c in children),
            )

        # Try the pipeline split: a producer/consumer chain over all
        # siblings.
        chain = _chain_order(design, parent, instances)
        if chain is not None:
            stats.pipeline_merges += 1
            stages: list = []
            for index, (inst, out_bits) in enumerate(chain):
                child = self._decompose_instance(design, inst, path, stats)
                # Splice nested pipelines so both flows produce the same
                # normal form (a stage that is itself a chain contributes
                # its stages directly).
                if child.kind is PatternKind.PIPELINE:
                    inner = child.children
                else:
                    inner = [child]
                if index + 1 < len(chain):
                    inner[-1].out_bits = out_bits
                stages.extend(inner)
            return pipeline_block(
                f"pipe[{path or parent.name}]",
                stages,
                in_bits=stages[0].in_bits,
                out_bits=stages[-1].out_bits,
            )

        raise DecomposeError(
            f"instances of {parent.name!r} match neither primitive pattern; "
            "the top-down flow needs a pattern-shaped hierarchy "
            "(use the bottom-up tool for irregular designs)"
        )

    def _decompose_instance(
        self, design: Design, inst, path: str, stats: DecomposeStats
    ) -> SoftBlock:
        child_path = f"{path}/{inst.name}" if path else inst.name
        module = design.require_module(inst.module_name)
        if is_basic_module(design, inst.module_name):
            stats.basic_blocks += 1
            return leaf_block(
                name=child_path,
                module_name=inst.module_name,
                resources=instance_resources(design, inst.module_name),
                signature=structural_signature(design, inst.module_name),
                instance_path=child_path,
                in_bits=_port_bits(module, Direction.INPUT),
                out_bits=_port_bits(module, Direction.OUTPUT),
            )
        inner = [
            child
            for child in module.instances.values()
            if design.has_module(child.module_name)
        ]
        if not inner:
            raise DecomposeError(
                f"module {inst.module_name!r} is neither basic nor "
                "hierarchical"
            )
        block = self._decompose_group(design, module, inner, child_path, stats)
        if block.in_bits == 0:
            block.in_bits = _port_bits(module, Direction.INPUT)
        if block.out_bits == 0:
            block.out_bits = _port_bits(module, Direction.OUTPUT)
        return block


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _sum_resources(design: Design, instances) -> ResourceVector:
    total = ResourceVector.zero()
    for inst in instances:
        total = total + instance_resources(design, inst.module_name)
    return total


def _port_bits(module: Module, direction: Direction) -> int:
    return sum(
        port.width
        for port in module.ports.values()
        if port.direction is direction and port.name.lower() not in GLOBAL_NETS
    )


def _data_edges(design: Design, parent: Module, instances) -> dict:
    """Directed edges among ``instances`` via shared nets (width summed)."""
    producers: dict = {}
    consumers: dict = {}
    for inst in instances:
        ports = design.ports_of(inst.module_name)
        for port_name, net_name in inst.connections.items():
            port = ports.get(port_name)
            if port is None or port_name.lower() in GLOBAL_NETS:
                continue
            if net_name.lower() in GLOBAL_NETS or net_name in parent.ports:
                continue
            if port.direction is Direction.OUTPUT:
                producers.setdefault(net_name, []).append((inst.name, port.width))
            elif port.direction is Direction.INPUT:
                consumers.setdefault(net_name, []).append((inst.name, port.width))
    edges: dict = {}
    for net_name, outs in producers.items():
        for src, width in outs:
            for dst, _ in consumers.get(net_name, ()):
                if src != dst:
                    edges[(src, dst)] = edges.get((src, dst), 0) + width
    return edges


def _interconnected(design: Design, parent: Module, instances) -> bool:
    return bool(_data_edges(design, parent, instances))


def _chain_order(design: Design, parent: Module, instances):
    """Return ``[(instance, out_bits), ...]`` when the siblings form one
    linear chain, else ``None``."""
    edges = _data_edges(design, parent, instances)
    by_name = {inst.name: inst for inst in instances}
    successors: dict = {}
    predecessors: dict = {}
    for (src, dst), bits in edges.items():
        successors.setdefault(src, {})[dst] = bits
        predecessors.setdefault(dst, {})[src] = bits
    heads = [name for name in by_name if name not in predecessors]
    if len(heads) != 1:
        return None
    order = []
    current = heads[0]
    seen = set()
    while True:
        seen.add(current)
        nexts = successors.get(current, {})
        if not nexts:
            order.append((by_name[current], 0))
            break
        if len(nexts) != 1:
            return None
        (next_name, bits), = nexts.items()
        if next_name in seen or next_name not in by_name:
            return None
        order.append((by_name[current], bits))
        current = next_name
    return order if len(order) == len(instances) else None


def decompose_top_down(
    design: Design, control_modules, name: str | None = None
) -> DecomposedAccelerator:
    """Convenience wrapper over :class:`TopDownDecomposer`."""
    return TopDownDecomposer().decompose(design, control_modules, name=name)
