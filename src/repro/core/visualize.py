"""ASCII rendering of soft-block trees and partition trees.

Used by the examples and by ``DecomposedAccelerator`` debugging; renders the
multi-level tree structure of Fig. 2/9 in the terminal.
"""

from __future__ import annotations

from .softblock import SoftBlock


def render_tree(block: SoftBlock, max_depth: int | None = None) -> str:
    """Render a soft-block subtree as an indented ASCII tree.

    ``max_depth`` truncates deep trees; truncated branches render an
    ellipsis with the hidden block count.
    """
    lines: list[str] = []

    def walk(node: SoftBlock, prefix: str, is_last: bool, depth: int) -> None:
        connector = "" if prefix == "" and not lines else ("`-- " if is_last else "|-- ")
        lines.append(f"{prefix}{connector}{node.label()}")
        if not node.children:
            return
        child_prefix = prefix + ("" if prefix == "" and len(lines) == 1 else ("    " if is_last else "|   "))
        if max_depth is not None and depth + 1 >= max_depth:
            hidden = sum(child.count() for child in node.children)
            lines.append(f"{child_prefix}`-- ... ({hidden} blocks hidden)")
            return
        for index, child in enumerate(node.children):
            walk(child, child_prefix, index == len(node.children) - 1, depth + 1)

    walk(block, "", True, 0)
    return "\n".join(lines)


def render_partition(tree) -> str:
    """Render a :class:`~repro.core.partition.PartitionTree` with cluster ids
    and cut bandwidths (Fig. 6 style)."""
    lines: list[str] = []

    def walk(node, indent: int) -> None:
        pad = "  " * indent
        leaves = len(node.cluster.leaves())
        res = node.cluster.resources().describe()
        tag = f"block #{node.index} ({leaves} leaves, {res})"
        if node.is_split:
            tag += f" -- cut {node.cut_bits} bits [{node.cut_kind.value}]"
        lines.append(pad + tag)
        if node.is_split:
            walk(node.left, indent + 1)
            walk(node.right, indent + 1)

    walk(tree.root, 0)
    return "\n".join(lines)
