"""Parallel patterns and block roles.

The system abstraction recognises exactly two primitive parallel patterns
(paper Fig. 2b):

* **data parallelism** — child blocks compute the same function on disjoint
  slices of the data; they have no edges among themselves.
* **pipeline parallelism** — child blocks form a linear producer/consumer
  chain.

The paper chooses these two because they are sufficient to construct other
complex or nested patterns (e.g. the reduction pattern in Fig. 2c is a data
stage feeding a pipeline of combiners).  :func:`compose` provides that
algebra: nested combinations of the two primitives expressed as trees.
"""

from __future__ import annotations

import enum


class PatternKind(enum.Enum):
    """The connection pattern among a soft block's children."""

    #: A leaf soft block: contains one basic module (or a data-parallel
    #: slice of one), no children.
    LEAF = "leaf"
    #: Children are data-parallel replicas.
    DATA = "data"
    #: Children form a linear pipeline, in list order.
    PIPELINE = "pipeline"

    @property
    def is_composite(self) -> bool:
        """True for the two primitive parallel patterns."""
        return self is not PatternKind.LEAF


class BlockRole(enum.Enum):
    """Whether a block belongs to the control path or the data path.

    The decomposer splits control and data at the top of the design
    (paper Fig. 3a) and only decomposes the data path; the control block is
    kept whole so the original software programs keep running after the
    scale-down optimisation.
    """

    CONTROL = "control"
    DATA = "data"


def describe_pattern(kind: PatternKind, arity: int) -> str:
    """Human-readable pattern description used in reports."""
    if kind is PatternKind.LEAF:
        return "leaf"
    if kind is PatternKind.DATA:
        return f"data-parallel x{arity}"
    return f"pipeline of {arity} stages"
