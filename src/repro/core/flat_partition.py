"""Pattern-oblivious (flat) partitioning — the comparison point.

Existing HS abstractions use a *single-level* structure (paper Section 2.1):
without the pattern tree, partitioning an accelerator is a general balanced
graph-bisection problem over the leaf blocks.  This module implements that
approach (Kernighan–Lin bisection over the leaf connectivity graph, the
standard heuristic ViTAL-class tools use) so benchmarks can quantify what
the parallel patterns buy:

* **time** — the pattern-guided split is linear in the children of one
  node; KL iterates over all leaf pairs;
* **quality** — KL balances leaf *counts* and can cut through the wide
  internal edges of a SIMD lane's pipeline, while the pattern-guided tool
  only ever cuts at data-parallel boundaries or the narrowest pipeline
  stage (the property behind Table 4's low interface overhead).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import networkx as nx

from ..errors import PartitionError
from .patterns import PatternKind
from .softblock import SoftBlock


def leaf_connectivity_graph(tree: SoftBlock) -> nx.Graph:
    """Reconstruct the leaf-level connectivity graph from a pattern tree.

    Pipeline stages connect head-to-tail with the stage's recorded
    ``out_bits`` as the edge weight; data-parallel children are mutually
    unconnected.  ``head``/``tail`` of a composite follow the dataflow:
    first/last child of a pipeline, all children of a data node.
    """
    graph = nx.Graph()

    def heads(block: SoftBlock) -> list:
        if block.is_leaf:
            return [block]
        if block.kind is PatternKind.PIPELINE:
            return heads(block.children[0])
        return [leaf for child in block.children for leaf in heads(child)]

    def tails(block: SoftBlock) -> list:
        if block.is_leaf:
            return [block]
        if block.kind is PatternKind.PIPELINE:
            return tails(block.children[-1])
        return [leaf for child in block.children for leaf in tails(child)]

    def walk(block: SoftBlock) -> None:
        if block.is_leaf:
            graph.add_node(block.block_id, block=block)
            return
        for child in block.children:
            walk(child)
        if block.kind is PatternKind.PIPELINE:
            for left, right in zip(block.children, block.children[1:]):
                bits = max(1, left.out_bits)
                for tail in tails(left):
                    for head in heads(right):
                        graph.add_edge(
                            tail.block_id, head.block_id, bits=bits
                        )

    walk(tree)
    # The scatter/gather traffic: every dataflow head receives the broadcast
    # input, every tail returns results.  Represent it with an ``"io"`` node
    # so cuts that strand leaves away from the I/O side pay for it — the
    # same accounting the pattern-guided data split uses.
    graph.add_node("io", block=None)
    for head in heads(tree):
        graph.add_edge("io", head.block_id, bits=max(1, head.in_bits))
    for tail in tails(tree):
        key = ("io", tail.block_id)
        if graph.has_edge(*key):
            graph.edges[key]["bits"] += max(1, tail.out_bits)
        else:
            graph.add_edge("io", tail.block_id, bits=max(1, tail.out_bits))
    return graph


def pipelines_cut(tree: SoftBlock, left_leaf_ids: set) -> int:
    """How many SIMD-lane pipelines a partition slices through.

    The pattern-guided partitioner never splits a pipeline whose parent is
    a DATA node (the property that keeps Table 4's interface overhead low);
    a flat bisection frequently does.
    """
    violations = 0

    def walk(block: SoftBlock, inside_data: bool) -> None:
        nonlocal violations
        if block.kind is PatternKind.PIPELINE and inside_data:
            sides = {
                leaf.block_id in left_leaf_ids for leaf in block.leaves()
            }
            if len(sides) == 2:
                violations += 1
            return  # count each lane once
        for child in block.children:
            walk(child, inside_data or block.kind is PatternKind.DATA)

    walk(tree, False)
    return violations


@dataclass
class FlatBipartition:
    """Result of one pattern-oblivious bisection."""

    left_leaf_ids: set
    right_leaf_ids: set
    cut_bits: int
    elapsed_s: float

    @property
    def balance(self) -> float:
        """Fraction of leaves on the smaller side (0.5 = perfectly even)."""
        small = min(len(self.left_leaf_ids), len(self.right_leaf_ids))
        total = len(self.left_leaf_ids) + len(self.right_leaf_ids)
        return small / total if total else 0.0


def flat_bipartition(tree: SoftBlock, seed: int = 0) -> FlatBipartition:
    """Bisect the leaf graph with Kernighan–Lin, ignoring patterns."""
    graph = leaf_connectivity_graph(tree)
    if graph.number_of_nodes() - 1 < 2:  # minus the io node
        raise PartitionError("flat bisection needs at least two leaves")
    started = time.perf_counter()
    left, right = nx.algorithms.community.kernighan_lin_bisection(
        graph, weight="bits", seed=seed
    )
    elapsed = time.perf_counter() - started
    cut = sum(
        data["bits"]
        for a, b, data in graph.edges(data=True)
        if (a in left) != (b in left)
    )
    left_ids = {n for n in left if n != "io"}
    right_ids = {n for n in right if n != "io"}
    return FlatBipartition(
        left_leaf_ids=left_ids,
        right_leaf_ids=right_ids,
        cut_bits=int(cut),
        elapsed_s=elapsed,
    )


def pattern_guided_bipartition(tree: SoftBlock) -> tuple:
    """The framework's split, with timing, for like-for-like comparison.

    Returns ``(cut_bits, elapsed_s)``.
    """
    from .partition import Partitioner

    started = time.perf_counter()
    result = Partitioner().partition(tree, iterations=1)
    elapsed = time.perf_counter() - started
    if not result.root.is_split:
        raise PartitionError("tree is not splittable")
    return result.root.cut_bits, elapsed


def compare_partitioners(tree: SoftBlock, seed: int = 0) -> dict:
    """Run both partitioners on one tree; returns the comparison record."""
    flat = flat_bipartition(tree, seed=seed)
    guided_cut, guided_elapsed = pattern_guided_bipartition(tree)
    return {
        "leaves": len(tree.leaves()),
        "flat_cut_bits": flat.cut_bits,
        "flat_elapsed_s": flat.elapsed_s,
        "flat_balance": flat.balance,
        "flat_pipelines_cut": pipelines_cut(tree, flat.left_leaf_ids),
        "guided_cut_bits": guided_cut,
        "guided_elapsed_s": guided_elapsed,
        "guided_pipelines_cut": 0,  # by construction: data-boundary cuts only
    }
