"""FPGA resource algebra.

Every layer of the framework reasons about the same five physical resource
classes found on the evaluated Xilinx UltraScale/UltraScale+ parts:

* LUTs  - lookup tables (logic)
* FFs   - D flip-flops (registers)
* BRAM  - block RAM capacity, in bits
* URAM  - UltraRAM capacity, in bits (zero on devices without URAM)
* DSPs  - DSP48 slices

:class:`ResourceVector` is an immutable value type with element-wise
arithmetic, scaling, and containment tests.  It is used by the RTL resource
estimator, by soft blocks (which aggregate their children), by the ViTAL
virtual-block compiler (fit checks), and by the runtime allocator
(free-capacity bookkeeping).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

#: Names of the resource classes, in canonical order.
RESOURCE_KINDS = ("luts", "ffs", "bram_bits", "uram_bits", "dsps")


@dataclass(frozen=True)
class ResourceVector:
    """An immutable bundle of FPGA resource quantities.

    Supports ``+``, ``-``, scalar ``*``, ``<=`` (component-wise containment,
    used for "does this fit?"), and utilisation computation against a
    capacity vector.
    """

    luts: float = 0.0
    ffs: float = 0.0
    bram_bits: float = 0.0
    uram_bits: float = 0.0
    dsps: float = 0.0

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls) -> "ResourceVector":
        """The additive identity."""
        return cls()

    @classmethod
    def from_dict(cls, values: dict) -> "ResourceVector":
        """Build from a mapping; unknown keys raise ``TypeError``."""
        return cls(**values)

    # -- iteration / conversion ----------------------------------------------

    def as_dict(self) -> dict:
        """Return the five quantities as a plain dict."""
        return {kind: getattr(self, kind) for kind in RESOURCE_KINDS}

    def __iter__(self) -> Iterator[float]:
        return iter(getattr(self, kind) for kind in RESOURCE_KINDS)

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return ResourceVector(
            *(a + b for a, b in zip(self, other))
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return ResourceVector(
            *(a - b for a, b in zip(self, other))
        )

    def __mul__(self, factor: float) -> "ResourceVector":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return ResourceVector(*(a * factor for a in self))

    __rmul__ = __mul__

    def __le__(self, other: "ResourceVector") -> bool:
        """Component-wise containment: ``need <= capacity`` means "fits"."""
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return all(a <= b for a, b in zip(self, other))

    def fits_in(self, capacity: "ResourceVector", slack: float = 0.0) -> bool:
        """True when this request fits in ``capacity``.

        ``slack`` reserves a fraction of the capacity (e.g. ``slack=0.05``
        keeps 5% headroom for routing), mirroring how real place-and-route
        cannot use 100% of a device.
        """
        usable = capacity * (1.0 - slack)
        return self <= usable

    def is_nonnegative(self) -> bool:
        """True when no component is negative (valid free-capacity state)."""
        return all(a >= -1e-9 for a in self)

    def ceil(self) -> "ResourceVector":
        """Round each component up to an integer count."""
        return ResourceVector(*(float(math.ceil(a)) for a in self))

    def max_ratio(self, capacity: "ResourceVector") -> float:
        """The binding utilisation ratio against ``capacity``.

        This is the quantity that determines how many identical blocks a
        request needs: ``ceil(max_ratio)`` blocks of ``capacity`` suffice
        component-wise.  Components with zero capacity and zero demand are
        ignored; zero capacity with nonzero demand yields ``inf``.
        """
        worst = 0.0
        for need, have in zip(self, capacity):
            if need <= 0:
                continue
            if have <= 0:
                return math.inf
            worst = max(worst, need / have)
        return worst

    def utilisation(self, capacity: "ResourceVector") -> dict:
        """Per-component utilisation fractions (``nan`` for 0-capacity)."""
        report = {}
        for kind in RESOURCE_KINDS:
            need = getattr(self, kind)
            have = getattr(capacity, kind)
            report[kind] = (need / have) if have > 0 else float("nan")
        return report

    # -- display ----------------------------------------------------------------

    def describe(self) -> str:
        """A compact human-readable rendering used in reports."""
        from .units import fmt_bits

        return (
            f"LUT={self.luts / 1e3:.1f}k FF={self.ffs / 1e3:.1f}k "
            f"BRAM={fmt_bits(self.bram_bits)} URAM={fmt_bits(self.uram_bits)} "
            f"DSP={self.dsps:.0f}"
        )


def total(vectors) -> ResourceVector:
    """Sum an iterable of :class:`ResourceVector`."""
    acc = ResourceVector.zero()
    for vec in vectors:
        acc = acc + vec
    return acc
