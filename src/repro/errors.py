"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Sub-hierarchies mirror
the package layout: RTL-level errors, ISA-level errors, mapping errors raised
by the decompose/partition tools, and runtime errors raised by the system
controller.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# RTL substrate
# ---------------------------------------------------------------------------


class RTLError(ReproError):
    """Base class for errors in the structural RTL intermediate form."""


class RTLValidationError(RTLError):
    """A design violates a structural invariant (dangling net, bad port...)."""


class RTLParseError(RTLError):
    """The structural-Verilog parser rejected the input text."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class UnknownModuleError(RTLError):
    """An instance references a module that is not defined in the design."""


# ---------------------------------------------------------------------------
# AS ISA substrate
# ---------------------------------------------------------------------------


class ISAError(ReproError):
    """Base class for instruction-set level errors."""


class AssemblerError(ISAError):
    """The assembler rejected an assembly source program."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ISAError):
    """An instruction cannot be encoded (field overflow) or decoded."""


class ExecutionError(ISAError):
    """The functional simulator hit an illegal operation at runtime."""


class ProgramValidationError(ISAError):
    """A program violates ISA constraints (bad register index, etc.)."""


# ---------------------------------------------------------------------------
# Mapping tools (decompose / partition / HS compile)
# ---------------------------------------------------------------------------


class MappingError(ReproError):
    """Base class for errors raised by the mapping tool chain."""


class DecomposeError(MappingError):
    """The decomposing tool could not process the accelerator design."""


class PartitionError(MappingError):
    """The partitioning tool could not split a soft-block tree."""


class CompileError(MappingError):
    """The HS-abstraction compiler could not map a cluster of soft blocks."""


class ResourceExceededError(CompileError):
    """A cluster of soft blocks does not fit the targeted device/blocks."""


# ---------------------------------------------------------------------------
# Runtime system
# ---------------------------------------------------------------------------


class RuntimeSystemError(ReproError):
    """Base class for runtime management errors."""


class AllocationError(RuntimeSystemError):
    """No feasible allocation exists for a deployment request."""


class DeploymentError(RuntimeSystemError):
    """A deployment request is malformed or references unknown state."""


class SimulationError(ReproError):
    """The discrete-event cluster simulator detected an inconsistency."""
