"""Program container and static validation.

A :class:`Program` is a flat list of instructions with structured loops
(``LOOP n`` ... ``ENDLOOP``).  Validation enforces the constraints the
accelerator's decoder would: register indices within the configured file
sizes, vector lengths within the native maximum, balanced loops, and no
ordinary DRAM traffic in the synchronisation address window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ProgramValidationError
from .instructions import Instruction, Op, SYNC_ADDRESS, VECTOR_WRITERS


@dataclass(frozen=True)
class RegisterFootprint:
    """Architectural registers a program actually touches.

    The demand side of the checkpoint state-size model
    (:mod:`repro.migration.checkpoint`): a snapshot only needs to carry the
    registers the program can have written, not the full register files.
    ``matrix_words`` is the total word count of every distinct matrix
    register load (rows x cols per ``M_RD`` destination).
    """

    vector_registers: int
    matrix_registers: int
    max_vector_length: int
    matrix_words: int


@dataclass
class ISALimits:
    """Architectural limits a program is validated against.

    Defaults match the generated accelerator's architecture description
    (:class:`repro.accel.config.AcceleratorConfig` mirrors these).
    """

    vector_registers: int = 64
    matrix_registers: int = 64
    max_vector_length: int = 4096
    dram_words: int = 1 << 28


@dataclass
class Program:
    """An ISA program: instructions plus optional name/metadata."""

    instructions: list = field(default_factory=list)
    name: str = "program"
    metadata: dict = field(default_factory=dict)

    # -- construction ----------------------------------------------------------

    def append(self, instruction: Instruction) -> "Program":
        self.instructions.append(instruction)
        return self

    def extend(self, instructions) -> "Program":
        self.instructions.extend(instructions)
        return self

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, index):
        return self.instructions[index]

    # -- queries -------------------------------------------------------------------

    def count_op(self, op: Op) -> int:
        """Occurrences of one opcode (static, not trip-count weighted)."""
        return sum(1 for inst in self.instructions if inst.op is op)

    def sync_instructions(self) -> list:
        """All inter-FPGA send/recv instructions."""
        return [inst for inst in self.instructions if inst.is_sync]

    def body_slices(self) -> list:
        """``(start, end, trip_count)`` for every loop body plus top level.

        Used by the dependence/reordering tools, which operate within one
        loop body at a time.  The top level is reported with trip count 1.
        """
        slices = []
        stack = []
        for index, inst in enumerate(self.instructions):
            if inst.op is Op.LOOP:
                stack.append((index + 1, int(inst.imm)))
            elif inst.op is Op.ENDLOOP:
                if not stack:
                    raise ProgramValidationError(
                        f"{self.name}: ENDLOOP without LOOP at {index}"
                    )
                start, trips = stack.pop()
                slices.append((start, index, trips))
        if stack:
            raise ProgramValidationError(f"{self.name}: unterminated LOOP")
        slices.append((0, len(self.instructions), 1))
        return slices

    def register_footprint(self) -> RegisterFootprint:
        """Registers and vector lengths this program can touch (static).

        Walks every instruction once: vector destinations, matrix loads
        (``M_RD`` carries rows in ``length`` and cols in ``imm``), vector
        sources and operand lengths.  Loop trip counts do not matter — a
        register written twice still occupies one architectural slot.
        """
        vector_regs: set[int] = set()
        matrix_words: dict[int, int] = {}
        max_length = 0
        for inst in self.instructions:
            if inst.op in (Op.LOOP, Op.ENDLOOP, Op.NOP, Op.HALT):
                continue
            max_length = max(max_length, inst.length)
            if inst.op is Op.M_RD:
                matrix_words[inst.dst] = max(
                    matrix_words.get(inst.dst, 0), inst.length * int(inst.imm)
                )
                continue
            if inst.op in VECTOR_WRITERS:
                vector_regs.add(inst.dst)
            for reg in inst.reads():
                vector_regs.add(reg)
        return RegisterFootprint(
            vector_registers=len(vector_regs),
            matrix_registers=len(matrix_words),
            max_vector_length=max_length,
            matrix_words=sum(matrix_words.values()),
        )

    def dynamic_instruction_count(self) -> int:
        """Instruction issues including loop trip counts."""
        count = 0
        multiplier = 1
        stack = []
        for inst in self.instructions:
            if inst.op is Op.LOOP:
                stack.append(multiplier)
                multiplier *= max(1, int(inst.imm))
                continue
            if inst.op is Op.ENDLOOP:
                if not stack:
                    raise ProgramValidationError(
                        f"{self.name}: ENDLOOP without LOOP"
                    )
                multiplier = stack.pop()
                continue
            count += multiplier
        if stack:
            raise ProgramValidationError(f"{self.name}: unterminated LOOP")
        return count

    # -- validation ------------------------------------------------------------------

    def validate(self, limits: ISALimits | None = None, allow_sync: bool = True) -> None:
        """Raise :class:`ProgramValidationError` on any static violation."""
        limits = limits or ISALimits()
        depth = 0
        for index, inst in enumerate(self.instructions):
            where = f"{self.name}[{index}] {inst.op.value}"
            if inst.op is Op.LOOP:
                depth += 1
                if int(inst.imm) < 1:
                    raise ProgramValidationError(f"{where}: loop count < 1")
                continue
            if inst.op is Op.ENDLOOP:
                depth -= 1
                if depth < 0:
                    raise ProgramValidationError(f"{where}: unmatched endloop")
                continue
            if inst.op in (Op.NOP, Op.HALT):
                continue
            self._validate_operands(inst, limits, allow_sync, where)
        if depth != 0:
            raise ProgramValidationError(f"{self.name}: {depth} unterminated loop(s)")

    @staticmethod
    def _validate_operands(
        inst: Instruction, limits: ISALimits, allow_sync: bool, where: str
    ) -> None:
        if inst.op in VECTOR_WRITERS and inst.op is not Op.M_RD:
            if not 0 <= inst.dst < limits.vector_registers:
                raise ProgramValidationError(
                    f"{where}: vector dst v{inst.dst} out of range"
                )
        if inst.op is Op.M_RD and not 0 <= inst.dst < limits.matrix_registers:
            raise ProgramValidationError(f"{where}: matrix dst m{inst.dst} out of range")
        if inst.op is Op.MV_MUL and not 0 <= inst.ma < limits.matrix_registers:
            raise ProgramValidationError(f"{where}: matrix src m{inst.ma} out of range")
        for reg in inst.reads():
            if not 0 <= reg < limits.vector_registers:
                raise ProgramValidationError(f"{where}: vector src v{reg} out of range")
        if inst.length < 0 or inst.length > limits.max_vector_length:
            raise ProgramValidationError(
                f"{where}: length {inst.length} exceeds native maximum "
                f"{limits.max_vector_length}"
            )
        if inst.op in (Op.V_RD, Op.V_WR, Op.M_RD):
            if inst.addr < 0:
                raise ProgramValidationError(f"{where}: negative DRAM address")
            if inst.is_sync and not allow_sync:
                raise ProgramValidationError(
                    f"{where}: sync-window address without scale-out deployment"
                )
            if not inst.is_sync and inst.addr >= SYNC_ADDRESS:
                raise ProgramValidationError(
                    f"{where}: ordinary access inside sync window 0x{inst.addr:x}"
                )

    # -- display ---------------------------------------------------------------------

    def render(self) -> str:
        """Assembly text (round-trips through the assembler)."""
        lines = [f"; program {self.name}"]
        indent = 0
        for inst in self.instructions:
            if inst.op is Op.ENDLOOP:
                indent -= 1
            prefix = "  " * max(0, indent)
            suffix = f"  ; {inst.tag}" if inst.tag else ""
            lines.append(prefix + inst.render() + suffix)
            if inst.op is Op.LOOP:
                indent += 1
        return "\n".join(lines) + "\n"
