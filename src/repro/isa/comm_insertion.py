"""Automatic insertion of inter-FPGA communication instructions.

This is the paper's custom tool for scale-out acceleration (Section 2.3,
Fig. 8): when one AS ISA-based accelerator is *scaled down* into ``k``
smaller replicas, each replica computes a ``hidden/k`` slice of the hidden
state per timestep and must exchange slices with its partners before the
next timestep.

The synchronisation template module (Fig. 8b) reuses the DRAM read/write
instructions at a pre-defined out-of-range address:

* a ``V_WR`` to the sync window **sends** the local slice to the partner
  accelerators through the inter-FPGA network;
* a ``V_RD`` from the sync window **blocks** until all partner slices arrive
  and returns the *combined* full vector — the module merges the received
  entries with the locally produced slice using its index register.

The tool operates on programs whose codegen tagged

* the instruction that produces the local hidden-state slice with
  ``produce:<name>`` and
* instructions that consume the *full* vector with ``consume:<name>``.

It inserts a tagged send after each producer and a tagged recv before the
first consumer of the following iteration (i.e. at the top of the loop
body), redirecting consumers to the combined register.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ISAError
from .instructions import Instruction, Op, SYNC_ADDRESS
from .program import Program


@dataclass(frozen=True)
class ScaleOutPlan:
    """Parameters of one scale-out transformation.

    Attributes:
        replicas: number of scaled-down accelerators (k).
        replica_index: which replica this program is for (0..k-1).
        value: the tag name of the exchanged state (e.g. ``"h"``).
        full_length: elements of the full vector.
        slice_register: VRF index holding the locally produced slice.
        combined_register: VRF index the combined full vector lands in.
    """

    replicas: int
    replica_index: int
    value: str
    full_length: int
    slice_register: int
    combined_register: int

    def __post_init__(self):
        if self.replicas < 2:
            raise ISAError("scale-out needs at least 2 replicas")
        if not 0 <= self.replica_index < self.replicas:
            raise ISAError(
                f"replica index {self.replica_index} out of range for "
                f"{self.replicas} replicas"
            )
        if self.full_length % self.replicas != 0:
            raise ISAError(
                f"full length {self.full_length} not divisible by "
                f"{self.replicas} replicas"
            )

    @property
    def slice_length(self) -> int:
        return self.full_length // self.replicas

    @property
    def send_address(self) -> int:
        """Each exchanged value gets its own sync sub-window."""
        return SYNC_ADDRESS + hash(self.value) % 256 * 0x1000


def insert_scaleout_communication(program: Program, plan: ScaleOutPlan) -> Program:
    """Return a new program with send/recv instructions inserted.

    Raises :class:`ISAError` when the program lacks the required
    ``produce:<value>``/``consume:<value>`` tags.
    """
    produce_tag = f"produce:{plan.value}"
    consume_tag = f"consume:{plan.value}"
    producers = [i for i in program.instructions if i.tag == produce_tag]
    consumers = [i for i in program.instructions if i.tag == consume_tag]
    if not producers:
        raise ISAError(f"program {program.name!r} has no {produce_tag!r} tags")
    if not consumers:
        raise ISAError(f"program {program.name!r} has no {consume_tag!r} tags")

    send = Instruction(
        Op.V_WR,
        a=plan.slice_register,
        addr=plan.send_address,
        length=plan.slice_length,
        tag=f"send:{plan.value}",
    )
    recv = Instruction(
        Op.V_RD,
        dst=plan.combined_register,
        addr=plan.send_address,
        length=plan.full_length,
        tag=f"recv:{plan.value}",
    )

    out = Program(
        name=f"{program.name}@{plan.replica_index}/{plan.replicas}",
        metadata=dict(program.metadata),
    )
    out.metadata["scaleout"] = {
        "replicas": plan.replicas,
        "replica_index": plan.replica_index,
        "value": plan.value,
        "slice_length": plan.slice_length,
        "sync_address": plan.send_address,
    }

    loop_depth = 0
    pending_recv_at_body_start = False
    for inst in program.instructions:
        if inst.op is Op.LOOP:
            out.append(inst)
            loop_depth += 1
            # Consumers read the previous iteration's combined vector; the
            # barrier belongs at the top of the loop body.
            if any(c.tag == consume_tag for c in program.instructions):
                out.append(recv)
                pending_recv_at_body_start = True
            continue
        if inst.op is Op.ENDLOOP:
            loop_depth -= 1
            out.append(inst)
            continue
        if inst.tag == consume_tag and pending_recv_at_body_start:
            # Redirect the consumer to the combined register.
            inst = _redirect_source(inst, plan)
        out.append(inst)
        if inst.tag == produce_tag:
            out.append(send)

    out.validate()
    return out


def _redirect_source(inst: Instruction, plan: ScaleOutPlan) -> Instruction:
    """Point a consumer at the combined register (field ``a`` or ``b``)."""
    if inst.a == plan.slice_register:
        return replace(inst, a=plan.combined_register)
    if inst.b == plan.slice_register:
        return replace(inst, b=plan.combined_register)
    # Consumer already reads the combined register (codegen pre-wired it).
    return inst


def make_replica_programs(program: Program, plan_factory, replicas: int) -> list:
    """Build all ``replicas`` programs from one template.

    ``plan_factory(replica_index)`` returns the :class:`ScaleOutPlan` for
    that replica; the same source program is transformed per replica.
    """
    return [
        insert_scaleout_communication(program, plan_factory(index))
        for index in range(replicas)
    ]
