"""Decoded-program cache: repeat deployments skip codegen entirely.

Every deployment of a model runs the same pipeline — codegen, loop
structuring, (for scale-out) communication insertion and reordering — and
the result is fully determined by the model configuration, the plan width
and the BFP format.  In a serving system that sees the same handful of
models millions of times, rebuilding that artifact per request/deployment
is pure waste; this cache memoises the built :class:`Program` under an
explicit key and reports hit/miss counters through
:data:`repro.perf.profiling.PROFILER` (``progcache.hit`` /
``progcache.miss``).

The cache takes *builder callbacks* rather than importing any codegen
module: ``repro.accel`` imports ``repro.isa``, so the cache (living in
``repro.isa``) cannot know how programs are built — call sites pass a
zero-argument closure invoked only on miss.

Cached programs are immutable by convention; :meth:`ProgramCache.get`
returns a shallow copy (fresh ``instructions`` list and ``metadata`` dict
over the same frozen :class:`Instruction` records) so callers that append
or tag instructions cannot corrupt the cached artifact.  Hot read-only
paths may pass ``copy=False``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from .program import Program


def _profiler():
    # Deferred: repro.perf's package init imports repro.accel (timing
    # models), which imports repro.isa — a top-level import here would
    # close that cycle during package initialisation.
    from ..perf.profiling import PROFILER

    return PROFILER


def program_cache_key(
    kind: str,
    hidden: int,
    input_dim: int,
    timesteps: int,
    replicas: int = 1,
    replica_index: int = 0,
    reorder: bool = True,
    mantissa_bits: int = 6,
    block_size: int = 16,
    stage: str = "template",
) -> tuple:
    """The canonical cache key: model config × plan width × BFP format.

    ``stage`` separates pipeline products of the same configuration: the
    raw codegen ``"template"`` versus the ``"scaleout"`` program after
    communication insertion (and optional reordering).  The BFP format is
    part of the key even though today's codegen does not read it —
    quantisation-aware codegen would, and a stale hit across formats would
    be silently wrong.
    """
    return (
        "rnn",
        stage,
        kind,
        int(hidden),
        int(input_dim),
        int(timesteps),
        int(replicas),
        int(replica_index),
        bool(reorder),
        int(mantissa_bits),
        int(block_size),
    )


class ProgramCache:
    """A bounded, thread-safe memo table for built programs.

    LRU eviction keeps the footprint bounded when a workload generator
    sweeps many configurations; the default capacity comfortably holds
    every (model, width, replica) combination the benchmarks use.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("program cache capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, Program] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple, builder, copy: bool = True) -> Program:
        """The program for ``key``, building via ``builder()`` on miss."""
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                _profiler().incr("progcache.hit")
                return self._copy(cached) if copy else cached
        # Build outside the lock: builders run codegen and may be slow.
        built = builder()
        with self._lock:
            # A racing builder may have inserted meanwhile; first wins so
            # every caller shares one artifact.
            cached = self._entries.get(key)
            if cached is None:
                self._entries[key] = cached = built
                self.misses += 1
                _profiler().incr("progcache.miss")
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    _profiler().incr("progcache.eviction")
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                _profiler().incr("progcache.hit")
        return self._copy(cached) if copy else cached

    @staticmethod
    def _copy(program: Program) -> Program:
        return Program(
            instructions=list(program.instructions),
            name=program.name,
            metadata=dict(program.metadata),
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict:
        """JSON-serialisable counters (benchmark reports embed this)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "capacity": self.capacity,
        }


#: Process-wide cache the workload/catalog layers share.
PROGRAM_CACHE = ProgramCache()
