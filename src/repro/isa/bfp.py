"""Block floating point (BFP) arithmetic.

The accelerator uses BFP for matrix-vector multiplication "to increase the
computing capability" and float16 for secondary operations "to avoid
quantization noise" (paper Section 3).  In BFP a block of values shares one
exponent; each value keeps only a narrow signed mantissa, so a multiply is a
cheap integer multiply and the expensive alignment is amortised per block.

We implement the quantisation exactly (shared exponent = exponent of the
block maximum, round-to-nearest mantissas) so the functional simulator
reproduces the numerical behaviour of the hardware datapath, and tests can
bound the quantisation error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ISAError


@dataclass(frozen=True)
class BFPFormat:
    """A BFP format: mantissa width (sign included) and block size.

    BrainWave's published configurations use ms-fp8/ms-fp9-style formats —
    a shared 5-bit exponent over blocks of values with 2-5 bit mantissas.
    Our default (6-bit mantissa incl. sign, blocks of 16) is in that family
    and keeps GRU/LSTM end-to-end error small enough for inference.
    """

    mantissa_bits: int = 6
    block_size: int = 16

    def __post_init__(self):
        if self.mantissa_bits < 2:
            raise ISAError("BFP needs at least a sign and one magnitude bit")
        if self.block_size < 1:
            raise ISAError("BFP block size must be positive")

    @property
    def max_mantissa(self) -> int:
        """Largest representable positive mantissa value."""
        return (1 << (self.mantissa_bits - 1)) - 1

    @property
    def quantisation_step(self) -> float:
        """Relative step size within a block (worst case, at the block max)."""
        return 1.0 / self.max_mantissa


DEFAULT_FORMAT = BFPFormat()


def _pad_to_blocks(array: np.ndarray, block: int) -> np.ndarray:
    """Pad the last axis to a multiple of ``block`` with zeros."""
    remainder = array.shape[-1] % block
    if remainder == 0:
        return array
    pad = [(0, 0)] * array.ndim
    pad[-1] = (0, block - remainder)
    return np.pad(array, pad)


def bfp_quantize(values: np.ndarray, fmt: BFPFormat = DEFAULT_FORMAT) -> np.ndarray:
    """Quantise ``values`` to BFP and return the dequantised float result.

    Blocks run along the last axis (matrix rows quantise per row-block, the
    layout the tile engines consume).  The returned array is float64 but
    contains only exactly-representable BFP values.

    Tile-aligned inputs (last axis already a multiple of the block size —
    the common case: engines consume whole tiles) skip the pad/unpad
    round-trip, so the only allocation is the quantised result itself.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return values
    original_shape = values.shape
    padded = _pad_to_blocks(values, fmt.block_size)
    blocked = padded.reshape(*padded.shape[:-1], -1, fmt.block_size)
    block_max = np.max(np.abs(blocked), axis=-1, keepdims=True)
    # Shared exponent: scale so the block max maps to the mantissa range.
    # Blocks whose max is zero — or so deeply subnormal the scale underflows
    # to zero — quantise against unit scale (everything rounds to 0).
    scale = np.where(block_max > 0, block_max / fmt.max_mantissa, 1.0)
    scale = np.where(scale > 0, scale, 1.0)
    mantissas = np.clip(
        np.rint(blocked / scale), -fmt.max_mantissa - 1, fmt.max_mantissa
    )
    dequant = mantissas * scale
    if padded is values:
        # Aligned fast path: no padding was added, reshape is a view.
        return dequant.reshape(original_shape)
    flat = dequant.reshape(padded.shape)
    slicer = tuple(slice(0, dim) for dim in original_shape)
    return flat[slicer]


def bfp_dequantize(values: np.ndarray) -> np.ndarray:
    """BFP values dequantise to themselves (stored dequantised); identity.

    Kept as an explicit API so call sites document where dequantisation
    happens in the hardware pipeline (the BFP-to-FP16 converter).
    """
    return np.asarray(values, dtype=np.float64)


def bfp_matvec(
    matrix: np.ndarray,
    vector: np.ndarray,
    fmt: BFPFormat = DEFAULT_FORMAT,
    quantize_vector: bool = True,
) -> np.ndarray:
    """Matrix-vector product as the BFP tile engines compute it.

    The matrix is assumed already BFP-quantised (done once at ``M_RD``).
    The input vector passes through the FP16-to-BFP converter
    (``quantize_vector=True``), products accumulate in wide fixed point —
    modelled as exact float64 accumulation.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    vector = np.asarray(vector, dtype=np.float64)
    if matrix.ndim != 2:
        raise ISAError(f"bfp_matvec expects a 2-D matrix, got shape {matrix.shape}")
    if vector.ndim != 1 or vector.shape[0] != matrix.shape[1]:
        raise ISAError(
            f"dimension mismatch: matrix {matrix.shape} @ vector {vector.shape}"
        )
    if quantize_vector:
        vector = bfp_quantize(vector, fmt)
    return matrix @ vector


def quantisation_error_bound(fmt: BFPFormat, block_magnitude: float) -> float:
    """Worst-case absolute error of one quantised value in a block whose
    maximum magnitude is ``block_magnitude`` (half a step)."""
    return 0.5 * block_magnitude / fmt.max_mantissa


def to_float16(values: np.ndarray) -> np.ndarray:
    """Round through IEEE float16 — the MFUs' native precision."""
    return np.asarray(values, dtype=np.float16).astype(np.float64)
