"""Instruction set definition.

The ISA mirrors the organisation of the BrainWave-like accelerator
(paper Fig. 9): a matrix-vector unit built from tile engines operating on
block-floating-point data, multi-function units for float16 vector
operations, vector/matrix register files, an instruction buffer, and a DRAM
interface.  It is a register ISA:

* ``v0..v{V-1}`` — vector registers (VRF), each holds up to the accelerator's
  native vector length.
* ``m0..m{M-1}`` — matrix registers (MRF), hold BFP-quantised matrices.
* DRAM — a flat vector address space; ``V_RD``/``V_WR`` move whole vectors.

Inter-FPGA communication reuses the DRAM instructions with a *pre-defined
out-of-range address* (:data:`SYNC_ADDRESS`): writes there are forwarded to
the partner accelerator by the synchronisation template module, reads there
block until the partner's data arrives (Section 2.3, Fig. 8b).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

#: The pre-defined out-of-range DRAM address recognised by the inter-FPGA
#: synchronisation module.  Ordinary programs must stay below this address.
SYNC_ADDRESS = 0xFFFF0000


class Op(enum.Enum):
    """Opcodes, grouped by execution unit."""

    # DRAM interface
    V_RD = "v_rd"        # dst <- DRAM[addr]
    V_WR = "v_wr"        # DRAM[addr] <- src a
    M_RD = "m_rd"        # matrix dst <- DRAM[addr] (BFP quantised on load)

    # Matrix-vector unit (tile engines, BFP)
    MV_MUL = "mv_mul"    # dst <- M[ma] @ v[a]

    # Multi-function units (float16-style)
    VV_ADD = "vv_add"    # dst <- v[a] + v[b]
    VV_SUB = "vv_sub"    # dst <- v[a] - v[b]
    VV_MUL = "vv_mul"    # dst <- v[a] * v[b]   (point-wise)
    V_SIGM = "v_sigm"    # dst <- sigmoid(v[a])
    V_TANH = "v_tanh"    # dst <- tanh(v[a])
    V_RELU = "v_relu"    # dst <- relu(v[a])
    V_COPY = "v_copy"    # dst <- v[a]
    V_FILL = "v_fill"    # dst <- broadcast(imm_float)
    V_SLICE = "v_slice"  # dst <- v[a][imm : imm+length]
    V_CONCAT = "v_concat"  # dst <- concat(v[a], v[b])

    # Control
    LOOP = "loop"        # repeat the body imm times
    ENDLOOP = "endloop"
    NOP = "nop"
    HALT = "halt"

    @property
    def unit(self) -> str:
        """Which execution unit runs this opcode (drives the timing model)."""
        if self in (Op.V_RD, Op.V_WR, Op.M_RD):
            return "dram"
        if self is Op.MV_MUL:
            return "mvu"
        if self in (Op.LOOP, Op.ENDLOOP, Op.NOP, Op.HALT):
            return "control"
        return "mfu"

    @property
    def reads_memory(self) -> bool:
        return self in (Op.V_RD, Op.M_RD)

    @property
    def writes_memory(self) -> bool:
        return self is Op.V_WR


#: Opcodes whose ``dst`` field names a vector register they write.
VECTOR_WRITERS = frozenset(
    {
        Op.V_RD,
        Op.MV_MUL,
        Op.VV_ADD,
        Op.VV_SUB,
        Op.VV_MUL,
        Op.V_SIGM,
        Op.V_TANH,
        Op.V_RELU,
        Op.V_COPY,
        Op.V_FILL,
        Op.V_SLICE,
        Op.V_CONCAT,
    }
)

#: Opcodes reading vector register ``a``.
A_READERS = frozenset(
    {
        Op.V_WR,
        Op.MV_MUL,
        Op.VV_ADD,
        Op.VV_SUB,
        Op.VV_MUL,
        Op.V_SIGM,
        Op.V_TANH,
        Op.V_RELU,
        Op.V_COPY,
        Op.V_SLICE,
        Op.V_CONCAT,
    }
)

#: Opcodes reading vector register ``b``.
B_READERS = frozenset({Op.VV_ADD, Op.VV_SUB, Op.VV_MUL, Op.V_CONCAT})


@dataclass(frozen=True)
class Instruction:
    """One ISA instruction.

    Fields not used by an opcode stay at their defaults; see
    :mod:`repro.isa.program` for per-opcode validation.

    Attributes:
        op: the opcode.
        dst: destination register index (vector, or matrix for ``M_RD``).
        a / b: source vector register indices.
        ma: matrix register index (``MV_MUL``).
        addr: DRAM address (``V_RD``/``V_WR``/``M_RD``).
        imm: immediate — loop count, fill value, or slice offset.
        length: static vector length in elements (timing model input; the
            functional simulator checks it against actual data).
        tag: free-form label used by the communication-insertion and
            reordering tools ("send", "recv", "compute:x", ...).
    """

    op: Op
    dst: int = -1
    a: int = -1
    b: int = -1
    ma: int = -1
    addr: int = -1
    imm: float = 0.0
    length: int = 0
    tag: str = ""

    def with_tag(self, tag: str) -> "Instruction":
        """Copy with a new tag."""
        return replace(self, tag=tag)

    def reads(self) -> set:
        """Vector registers this instruction reads."""
        regs = set()
        if self.op in A_READERS and self.a >= 0:
            regs.add(self.a)
        if self.op in B_READERS and self.b >= 0:
            regs.add(self.b)
        return regs

    def writes(self) -> set:
        """Vector registers this instruction writes."""
        if self.op in VECTOR_WRITERS and self.dst >= 0:
            return {self.dst}
        return set()

    @property
    def is_sync(self) -> bool:
        """True for inter-FPGA communication (DRAM ops at SYNC_ADDRESS)."""
        return self.op in (Op.V_RD, Op.V_WR) and self.addr >= SYNC_ADDRESS

    @property
    def is_send(self) -> bool:
        return self.op is Op.V_WR and self.is_sync

    @property
    def is_recv(self) -> bool:
        return self.op is Op.V_RD and self.is_sync

    def render(self) -> str:
        """Assembly text for this instruction (see the assembler grammar)."""
        op = self.op
        if op in (Op.NOP, Op.HALT, Op.ENDLOOP):
            return op.value
        if op is Op.LOOP:
            return f"loop {int(self.imm)}"
        if op is Op.V_RD:
            return f"v_rd v{self.dst}, 0x{self.addr:x}, {self.length}"
        if op is Op.V_WR:
            return f"v_wr v{self.a}, 0x{self.addr:x}, {self.length}"
        if op is Op.M_RD:
            return f"m_rd m{self.dst}, 0x{self.addr:x}, {self.length}"
        if op is Op.MV_MUL:
            return f"mv_mul v{self.dst}, m{self.ma}, v{self.a}, {self.length}"
        if op in (Op.VV_ADD, Op.VV_SUB, Op.VV_MUL, Op.V_CONCAT):
            return f"{op.value} v{self.dst}, v{self.a}, v{self.b}, {self.length}"
        if op is Op.V_FILL:
            return f"v_fill v{self.dst}, {self.imm}, {self.length}"
        if op is Op.V_SLICE:
            return f"v_slice v{self.dst}, v{self.a}, {int(self.imm)}, {self.length}"
        return f"{op.value} v{self.dst}, v{self.a}, {self.length}"


# -- small constructors used by codegen (keep call sites readable) -----------


def v_rd(dst: int, addr: int, length: int, tag: str = "") -> Instruction:
    return Instruction(Op.V_RD, dst=dst, addr=addr, length=length, tag=tag)


def v_wr(src: int, addr: int, length: int, tag: str = "") -> Instruction:
    return Instruction(Op.V_WR, a=src, addr=addr, length=length, tag=tag)


def m_rd(dst: int, addr: int, length: int, tag: str = "") -> Instruction:
    return Instruction(Op.M_RD, dst=dst, addr=addr, length=length, tag=tag)


def mv_mul(dst: int, ma: int, a: int, length: int, tag: str = "") -> Instruction:
    return Instruction(Op.MV_MUL, dst=dst, ma=ma, a=a, length=length, tag=tag)


def vv_add(dst: int, a: int, b: int, length: int, tag: str = "") -> Instruction:
    return Instruction(Op.VV_ADD, dst=dst, a=a, b=b, length=length, tag=tag)


def vv_sub(dst: int, a: int, b: int, length: int, tag: str = "") -> Instruction:
    return Instruction(Op.VV_SUB, dst=dst, a=a, b=b, length=length, tag=tag)


def vv_mul(dst: int, a: int, b: int, length: int, tag: str = "") -> Instruction:
    return Instruction(Op.VV_MUL, dst=dst, a=a, b=b, length=length, tag=tag)


def v_sigm(dst: int, a: int, length: int, tag: str = "") -> Instruction:
    return Instruction(Op.V_SIGM, dst=dst, a=a, length=length, tag=tag)


def v_tanh(dst: int, a: int, length: int, tag: str = "") -> Instruction:
    return Instruction(Op.V_TANH, dst=dst, a=a, length=length, tag=tag)


def v_relu(dst: int, a: int, length: int, tag: str = "") -> Instruction:
    return Instruction(Op.V_RELU, dst=dst, a=a, length=length, tag=tag)


def v_copy(dst: int, a: int, length: int, tag: str = "") -> Instruction:
    return Instruction(Op.V_COPY, dst=dst, a=a, length=length, tag=tag)


def v_fill(dst: int, value: float, length: int, tag: str = "") -> Instruction:
    return Instruction(Op.V_FILL, dst=dst, imm=value, length=length, tag=tag)


def v_slice(dst: int, a: int, offset: int, length: int, tag: str = "") -> Instruction:
    return Instruction(Op.V_SLICE, dst=dst, a=a, imm=float(offset), length=length, tag=tag)


def v_concat(dst: int, a: int, b: int, length: int, tag: str = "") -> Instruction:
    return Instruction(Op.V_CONCAT, dst=dst, a=a, b=b, length=length, tag=tag)


def loop(count: int) -> Instruction:
    return Instruction(Op.LOOP, imm=float(count))


def endloop() -> Instruction:
    return Instruction(Op.ENDLOOP)


def halt() -> Instruction:
    return Instruction(Op.HALT)
