"""Fixed-width binary encoding.

Each instruction encodes into one 128-bit word (16 bytes, little-endian):

===========  ======  ==========================================
field        bits    notes
===========  ======  ==========================================
opcode       8       index into the :class:`Op` table
dst          8       register index (0xFF = unused)
a            8       register index (0xFF = unused)
b            8       register index (0xFF = unused)
ma           8       matrix register index (0xFF = unused)
reserved     8
length       16      vector length in elements
addr         32      DRAM word address
imm          32      IEEE-754 float32
===========  ======  ==========================================

The compact 128-bit format matters to the paper's story: the AS ISA keeps
code small enough that whole LSTM/GRU programs fit in the on-chip
instruction buffer, avoiding DRAM contention (Section 4.4).
"""

from __future__ import annotations

import struct

from ..errors import EncodingError
from .instructions import Instruction, Op
from .program import Program

#: Bytes per encoded instruction.
INSTRUCTION_BYTES = 16

_OPCODES = {op: index for index, op in enumerate(Op)}
_BY_INDEX = {index: op for op, index in _OPCODES.items()}

_STRUCT = struct.Struct("<BBBBBBHIf")
_UNUSED = 0xFF


def _field(value: int, name: str, maximum: int) -> int:
    if value < 0:
        return _UNUSED
    if value > maximum:
        raise EncodingError(f"{name}={value} exceeds encodable maximum {maximum}")
    return value


def encode_instruction(inst: Instruction) -> bytes:
    """Encode one instruction to 16 bytes."""
    if inst.length > 0xFFFF:
        raise EncodingError(f"length {inst.length} exceeds 16-bit field")
    if inst.addr > 0xFFFFFFFF:
        raise EncodingError(f"address 0x{inst.addr:x} exceeds 32-bit field")
    if inst.op is Op.LOOP:
        # Loop trip counts ride in the addr field to keep imm a pure float.
        return _STRUCT.pack(
            _OPCODES[inst.op], _UNUSED, _UNUSED, _UNUSED, _UNUSED, 0,
            0, int(inst.imm), 0.0,
        )
    return _STRUCT.pack(
        _OPCODES[inst.op],
        _field(inst.dst, "dst", 0xFE),
        _field(inst.a, "a", 0xFE),
        _field(inst.b, "b", 0xFE),
        _field(inst.ma, "ma", 0xFE),
        0,
        inst.length,
        max(inst.addr, 0),
        float(inst.imm),
    )


def decode_instruction(blob: bytes) -> Instruction:
    """Decode 16 bytes back into an instruction."""
    if len(blob) != INSTRUCTION_BYTES:
        raise EncodingError(
            f"expected {INSTRUCTION_BYTES} bytes, got {len(blob)}"
        )
    opcode, dst, a, b, ma, _res, length, addr, imm = _STRUCT.unpack(blob)
    op = _BY_INDEX.get(opcode)
    if op is None:
        raise EncodingError(f"unknown opcode byte 0x{opcode:02x}")

    def reg(value: int) -> int:
        return -1 if value == _UNUSED else value

    if op is Op.LOOP:
        return Instruction(Op.LOOP, imm=float(addr))
    has_addr = op in (Op.V_RD, Op.V_WR, Op.M_RD)
    return Instruction(
        op,
        dst=reg(dst),
        a=reg(a),
        b=reg(b),
        ma=reg(ma),
        addr=addr if has_addr else -1,
        imm=imm,
        length=length,
    )


def encode_program(program: Program) -> bytes:
    """Encode a whole program; the result is what the instruction buffer
    stores (its size gates the buffer-capacity check in the accelerator)."""
    return b"".join(encode_instruction(inst) for inst in program)


def decode_program(blob: bytes, name: str = "decoded") -> Program:
    """Decode bytes produced by :func:`encode_program`."""
    if len(blob) % INSTRUCTION_BYTES != 0:
        raise EncodingError(
            f"byte length {len(blob)} is not a multiple of {INSTRUCTION_BYTES}"
        )
    program = Program(name=name)
    for offset in range(0, len(blob), INSTRUCTION_BYTES):
        program.append(decode_instruction(blob[offset : offset + INSTRUCTION_BYTES]))
    return program
