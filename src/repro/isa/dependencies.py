"""Dependence analysis over ISA programs.

Builds the register/memory dependence graph that constrains instruction
reordering (paper Section 2.3: "instruction reordering under the dependency
constraint").  Edges cover:

* RAW / WAR / WAW through vector registers,
* RAW / WAR / WAW through matrix registers,
* DRAM dependences — conservatively, two DRAM accesses conflict when their
  address ranges may overlap (we know static addresses and lengths, so this
  is exact for the programs our codegen emits),
* sync-window ordering — sends and receives through the synchronisation
  module keep their relative order (the module is a FIFO).

Analysis is per straight-line region (one loop body at a time); the
reordering tool never moves instructions across loop boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import Instruction, Op
from .program import Program


@dataclass
class DependenceGraph:
    """Immutable-ish dependence DAG over a straight-line instruction region.

    ``order`` holds the region's instructions; ``edges[i]`` is the set of
    successor indices that must execute after ``i``; ``preds[i]`` the
    predecessor set.  Indices are positions within ``order``.
    """

    order: list
    edges: dict = field(default_factory=dict)
    preds: dict = field(default_factory=dict)

    def add_edge(self, src: int, dst: int) -> None:
        if src == dst:
            return
        self.edges.setdefault(src, set()).add(dst)
        self.preds.setdefault(dst, set()).add(src)

    def successors(self, index: int) -> set:
        return self.edges.get(index, set())

    def predecessors(self, index: int) -> set:
        return self.preds.get(index, set())

    def is_valid_order(self, permutation: list) -> bool:
        """Check a permutation of region indices respects every edge."""
        position = {index: pos for pos, index in enumerate(permutation)}
        if len(position) != len(self.order):
            return False
        for src, dsts in self.edges.items():
            for dst in dsts:
                if position[src] >= position[dst]:
                    return False
        return True

    def critical_path(self, weight) -> float:
        """Longest path under ``weight(instruction) -> float``."""
        memo: dict[int, float] = {}

        def longest(index: int) -> float:
            if index in memo:
                return memo[index]
            base = weight(self.order[index])
            succ = self.successors(index)
            memo[index] = base + (max(longest(s) for s in succ) if succ else 0.0)
            return memo[index]

        if not self.order:
            return 0.0
        return max(longest(i) for i in range(len(self.order)))


def _dram_range(inst: Instruction) -> tuple | None:
    """Static address interval a DRAM instruction touches, or ``None``."""
    if inst.op in (Op.V_RD, Op.V_WR):
        return (inst.addr, inst.addr + max(1, inst.length))
    if inst.op is Op.M_RD:
        # M_RD spans rows (length) x cols (imm) words.
        return (inst.addr, inst.addr + max(1, inst.length) * max(1, int(inst.imm)))
    return None


def _ranges_overlap(lhs: tuple, rhs: tuple) -> bool:
    return lhs[0] < rhs[1] and rhs[0] < lhs[1]


def build_dependence_graph(instructions: list) -> DependenceGraph:
    """Build the dependence DAG for one straight-line region.

    The region must not contain ``LOOP``/``ENDLOOP`` — callers split on loop
    structure first (see :meth:`Program.body_slices`).
    """
    graph = DependenceGraph(order=list(instructions))
    last_writer: dict[int, int] = {}
    readers_since_write: dict[int, list] = {}
    last_m_writer: dict[int, int] = {}
    m_readers: dict[int, list] = {}
    dram_accesses: list = []  # (index, range, is_write)
    last_sync: int | None = None

    for index, inst in enumerate(instructions):
        if inst.op in (Op.LOOP, Op.ENDLOOP):
            raise ValueError("dependence regions must be loop-free")

        # -- vector register dependences ---------------------------------
        for reg in inst.reads():
            if reg in last_writer:
                graph.add_edge(last_writer[reg], index)  # RAW
            readers_since_write.setdefault(reg, []).append(index)
        for reg in inst.writes():
            if reg in last_writer:
                graph.add_edge(last_writer[reg], index)  # WAW
            for reader in readers_since_write.get(reg, ()):  # WAR
                graph.add_edge(reader, index)
            last_writer[reg] = index
            readers_since_write[reg] = []

        # -- matrix register dependences ------------------------------------
        if inst.op is Op.MV_MUL and inst.ma >= 0:
            if inst.ma in last_m_writer:
                graph.add_edge(last_m_writer[inst.ma], index)
            m_readers.setdefault(inst.ma, []).append(index)
        if inst.op is Op.M_RD and inst.dst >= 0:
            if inst.dst in last_m_writer:
                graph.add_edge(last_m_writer[inst.dst], index)
            for reader in m_readers.get(inst.dst, ()):
                graph.add_edge(reader, index)
            last_m_writer[inst.dst] = index
            m_readers[inst.dst] = []

        # -- DRAM and sync-window ordering ---------------------------------------
        if inst.is_sync:
            # The sync module is a FIFO: all sync ops stay ordered.
            if last_sync is not None:
                graph.add_edge(last_sync, index)
            last_sync = index
        else:
            span = _dram_range(inst)
            if span is not None:
                is_write = inst.op.writes_memory
                for other_index, other_span, other_write in dram_accesses:
                    if (is_write or other_write) and _ranges_overlap(span, other_span):
                        graph.add_edge(other_index, index)
                dram_accesses.append((index, span, is_write))

    return graph


def program_region_graphs(program: Program) -> list:
    """Dependence graphs for every maximal loop-free region of a program.

    Returns ``(start_index, graph)`` pairs in program order; region indices
    inside each graph are relative to ``start_index``.
    """
    regions = []
    start = 0
    for index, inst in enumerate(program.instructions):
        if inst.op in (Op.LOOP, Op.ENDLOOP):
            if index > start:
                regions.append(
                    (start, build_dependence_graph(program.instructions[start:index]))
                )
            start = index + 1
    if start < len(program.instructions):
        regions.append(
            (start, build_dependence_graph(program.instructions[start:]))
        )
    return regions
