"""Two-pass text assembler and disassembler.

Grammar (one instruction per line, ``;`` comments)::

    v_rd   vDST, ADDR, LEN
    v_wr   vSRC, ADDR, LEN
    m_rd   mDST, ADDR, LEN          ; LEN = rows*cols words
    mv_mul vDST, mSRC, vSRC, LEN    ; LEN = output rows
    vv_add vDST, vA, vB, LEN        ; likewise vv_sub / vv_mul / v_concat
    v_sigm vDST, vSRC, LEN          ; likewise v_tanh / v_relu / v_copy
    v_fill vDST, VALUE, LEN
    v_slice vDST, vSRC, OFFSET, LEN
    loop   COUNT
    endloop
    nop / halt

Addresses accept decimal, ``0x`` hex, or the symbol ``SYNC`` (+offset) for
the inter-FPGA synchronisation window.  ``disassemble`` is the exact inverse
via :meth:`Instruction.render`.
"""

from __future__ import annotations

from ..errors import AssemblerError
from .instructions import Instruction, Op, SYNC_ADDRESS
from .program import Program

_THREE_REG = {"vv_add": Op.VV_ADD, "vv_sub": Op.VV_SUB, "vv_mul": Op.VV_MUL,
              "v_concat": Op.V_CONCAT}
_TWO_REG = {"v_sigm": Op.V_SIGM, "v_tanh": Op.V_TANH, "v_relu": Op.V_RELU,
            "v_copy": Op.V_COPY}


def _parse_reg(token: str, prefix: str, line: int) -> int:
    token = token.strip()
    if not token.startswith(prefix):
        raise AssemblerError(f"expected {prefix}-register, found {token!r}", line)
    try:
        return int(token[len(prefix):])
    except ValueError:
        raise AssemblerError(f"bad register {token!r}", line) from None


def _parse_addr(token: str, line: int) -> int:
    token = token.strip()
    if token.upper().startswith("SYNC"):
        rest = token[4:].strip()
        offset = 0
        if rest.startswith("+"):
            offset = _parse_int(rest[1:], line)
        return SYNC_ADDRESS + offset
    return _parse_int(token, line)


def _parse_int(token: str, line: int) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"bad integer {token!r}", line) from None


def _parse_float(token: str, line: int) -> float:
    try:
        return float(token.strip())
    except ValueError:
        raise AssemblerError(f"bad number {token!r}", line) from None


def assemble(source: str, name: str = "program") -> Program:
    """Assemble text into a validated :class:`Program`."""
    program = Program(name=name)
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = [p.strip() for p in parts[1].split(",")] if len(parts) > 1 else []
        program.append(_assemble_one(mnemonic, operands, line_no))
    program.validate()
    return program


def _assemble_one(mnemonic: str, ops: list, line: int) -> Instruction:
    def need(count: int) -> None:
        if len(ops) != count:
            raise AssemblerError(
                f"{mnemonic} expects {count} operands, got {len(ops)}", line
            )

    if mnemonic == "nop":
        need(0)
        return Instruction(Op.NOP)
    if mnemonic == "halt":
        need(0)
        return Instruction(Op.HALT)
    if mnemonic == "endloop":
        need(0)
        return Instruction(Op.ENDLOOP)
    if mnemonic == "loop":
        need(1)
        return Instruction(Op.LOOP, imm=float(_parse_int(ops[0], line)))
    if mnemonic == "v_rd":
        need(3)
        return Instruction(
            Op.V_RD,
            dst=_parse_reg(ops[0], "v", line),
            addr=_parse_addr(ops[1], line),
            length=_parse_int(ops[2], line),
        )
    if mnemonic == "v_wr":
        need(3)
        return Instruction(
            Op.V_WR,
            a=_parse_reg(ops[0], "v", line),
            addr=_parse_addr(ops[1], line),
            length=_parse_int(ops[2], line),
        )
    if mnemonic == "m_rd":
        need(3)
        return Instruction(
            Op.M_RD,
            dst=_parse_reg(ops[0], "m", line),
            addr=_parse_addr(ops[1], line),
            length=_parse_int(ops[2], line),
        )
    if mnemonic == "mv_mul":
        need(4)
        return Instruction(
            Op.MV_MUL,
            dst=_parse_reg(ops[0], "v", line),
            ma=_parse_reg(ops[1], "m", line),
            a=_parse_reg(ops[2], "v", line),
            length=_parse_int(ops[3], line),
        )
    if mnemonic in _THREE_REG:
        need(4)
        return Instruction(
            _THREE_REG[mnemonic],
            dst=_parse_reg(ops[0], "v", line),
            a=_parse_reg(ops[1], "v", line),
            b=_parse_reg(ops[2], "v", line),
            length=_parse_int(ops[3], line),
        )
    if mnemonic in _TWO_REG:
        need(3)
        return Instruction(
            _TWO_REG[mnemonic],
            dst=_parse_reg(ops[0], "v", line),
            a=_parse_reg(ops[1], "v", line),
            length=_parse_int(ops[2], line),
        )
    if mnemonic == "v_fill":
        need(3)
        return Instruction(
            Op.V_FILL,
            dst=_parse_reg(ops[0], "v", line),
            imm=_parse_float(ops[1], line),
            length=_parse_int(ops[2], line),
        )
    if mnemonic == "v_slice":
        need(4)
        return Instruction(
            Op.V_SLICE,
            dst=_parse_reg(ops[0], "v", line),
            a=_parse_reg(ops[1], "v", line),
            imm=float(_parse_int(ops[2], line)),
            length=_parse_int(ops[3], line),
        )
    raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line)


def disassemble(program: Program) -> str:
    """Render a program back to assembly text."""
    return program.render()
