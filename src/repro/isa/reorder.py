"""Instruction reordering to overlap communication and computation.

The paper's second custom tool for scale-out (Section 2.3): "perform
instruction reordering under the dependency constraint to maximally overlap
the communication and computation."

Strategy — a priority list scheduler over each loop-free region:

* **sends** (``V_WR`` to the sync window) are scheduled as *early* as their
  dependences allow: the sooner the slice leaves, the sooner partners can
  proceed;
* **recvs** (``V_RD`` from the sync window) are scheduled as *late* as
  possible: every independent instruction hoisted above the recv executes
  while the network is busy — for LSTM this is exactly the
  "overlap the data transfer of h_t with the matrix multiplication related
  to x_t" optimisation the paper describes (Section 4.3);
* everything else keeps its relative order (stable topological sort), which
  preserves the in-order machine's expected register pressure.

The output order is verified against the dependence graph — a safety check
that the transformation cannot change program semantics.
"""

from __future__ import annotations

import heapq

from ..errors import ISAError
from .dependencies import build_dependence_graph
from .instructions import Op
from .program import Program


def _schedule_region(instructions: list) -> list:
    """Reorder one loop-free region; returns the new instruction list."""
    if len(instructions) <= 1:
        return list(instructions)
    graph = build_dependence_graph(instructions)
    remaining_preds = {
        index: len(graph.predecessors(index)) for index in range(len(instructions))
    }

    def priority(index: int) -> tuple:
        inst = instructions[index]
        if inst.is_send:
            rank = 0  # drain sends immediately
        elif inst.is_recv:
            rank = 2  # hold receives back
        else:
            rank = 1
        return (rank, index)  # index keeps the sort stable

    ready = [
        priority(index)
        for index in range(len(instructions))
        if remaining_preds[index] == 0
    ]
    heapq.heapify(ready)

    order: list[int] = []
    while ready:
        _, index = heapq.heappop(ready)
        order.append(index)
        for succ in sorted(graph.successors(index)):
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                heapq.heappush(ready, priority(succ))

    if len(order) != len(instructions):
        raise ISAError("dependence cycle detected during reordering")
    if not graph.is_valid_order(order):
        raise ISAError("reordering produced an invalid schedule")
    return [instructions[index] for index in order]


def reorder_for_overlap(program: Program) -> Program:
    """Reorder every loop-free region of ``program`` for comm/compute overlap.

    Loop structure is preserved; instructions never cross ``LOOP`` /
    ``ENDLOOP`` boundaries.  Returns a new program; the input is untouched.
    """
    out = Program(name=f"{program.name}+reordered", metadata=dict(program.metadata))
    region: list = []
    for inst in program.instructions:
        if inst.op in (Op.LOOP, Op.ENDLOOP):
            out.extend(_schedule_region(region))
            region = []
            out.append(inst)
        else:
            region.append(inst)
    out.extend(_schedule_region(region))
    out.validate()
    return out


def overlap_window(instructions: list) -> list:
    """Instructions that can execute while the inter-FPGA transfer is in
    flight.

    In steady state (loop body), the previous iteration's send is in flight
    when the body starts; every instruction scheduled *before* the first
    recv overlaps with that transfer — the quantity the Fig. 11 overlap
    model integrates.  Returns an empty list when the region has no recv.
    """
    for index, inst in enumerate(instructions):
        if inst.is_recv:
            return [i for i in instructions[:index] if not i.is_send]
    return []
