"""The application-specific ISA substrate.

A BrainWave-like soft-NPU instruction set (paper Section 3): matrix-vector
multiplication in block-floating-point, float16-style vector operations on
multi-function units, DRAM vector load/store, and loop control.  The ISA is
what gives the framework its *software programming flow*: applications are
ISA programs, not Verilog.

Modules:

* :mod:`~repro.isa.instructions` — opcodes and the instruction record.
* :mod:`~repro.isa.program`      — program container and validation.
* :mod:`~repro.isa.assembler`    — two-pass text assembler.
* :mod:`~repro.isa.encoder`      — fixed-width binary encode/decode.
* :mod:`~repro.isa.bfp`          — block-floating-point arithmetic.
* :mod:`~repro.isa.dependencies` — register/memory dependence analysis.
* :mod:`~repro.isa.comm_insertion` — the custom tool that inserts inter-FPGA
  communication instructions for scale-out (Section 2.3).
* :mod:`~repro.isa.reorder`      — the custom tool that reorders instructions
  under dependence constraints to overlap communication and computation.
"""

from .instructions import Instruction, Op, SYNC_ADDRESS
from .program import Program
from .assembler import assemble, disassemble
from .encoder import decode_program, encode_program
from .bfp import BFPFormat, bfp_quantize, bfp_dequantize
from .dependencies import DependenceGraph, build_dependence_graph
from .comm_insertion import insert_scaleout_communication
from .progcache import PROGRAM_CACHE, ProgramCache, program_cache_key
from .reorder import reorder_for_overlap

__all__ = [
    "BFPFormat",
    "DependenceGraph",
    "Instruction",
    "Op",
    "PROGRAM_CACHE",
    "Program",
    "ProgramCache",
    "SYNC_ADDRESS",
    "assemble",
    "bfp_dequantize",
    "bfp_quantize",
    "build_dependence_graph",
    "decode_program",
    "disassemble",
    "encode_program",
    "insert_scaleout_communication",
    "program_cache_key",
    "reorder_for_overlap",
]
