"""Planning and executing live moves of resident deployments.

A migration relocates one or more replicas of an idle deployment to other
boards — same device type or not: the catalog compiled every deployment
plan per feasible type, so a cross-type move is a lookup in the same
mapping database, not a recompile.  The charged cost per replica is

    drain                (run to an instruction boundary, flush queues)
  + state transfer       (architectural state over ``RingNetwork``)
  + reconfiguration      (destination virtual blocks x per-block time)

and both source and destination blocks stay occupied between
:meth:`MigrationEngine.begin` and :meth:`MigrationEngine.finish` — the
DES schedules ``finish`` at ``begin + cost``, so a migration competes with
serving traffic for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeploymentError, ReproError
from ..perf.profiling import PROFILER
from ..runtime.deployment import Deployment, DeploymentState, ReplicaPlacement
from ..units import us
from .checkpoint import architectural_state_bytes


@dataclass(frozen=True)
class MigrationParameters:
    """Cost-model knobs.

    ``drain_s`` is the time to let in-flight work reach an instruction
    boundary and flush the send queues (tile-boundary granularity keeps it
    short — the ISA has no long-running uninterruptible instruction).
    """

    drain_s: float = us(50.0)
    added_latency_s: float = 0.0


@dataclass(frozen=True)
class ReplicaMove:
    """One replica relocating from one board to another."""

    replica_index: int
    src_fpga: str
    dst_fpga: str
    src_type: str
    dst_type: str
    src_blocks: int
    dst_blocks: int
    state_bytes: int
    drain_s: float
    transfer_s: float
    reconfig_s: float

    @property
    def cost_s(self) -> float:
        return self.drain_s + self.transfer_s + self.reconfig_s

    @property
    def cross_type(self) -> bool:
        return self.src_type != self.dst_type


@dataclass
class MigrationPlan:
    """Every move of one deployment, plus the charged total."""

    deployment_id: str
    model_key: str
    moves: list = field(default_factory=list)

    @property
    def total_cost_s(self) -> float:
        """Moves of one deployment execute sequentially (one drain, one
        state stream through the sync module at a time)."""
        return sum(move.cost_s for move in self.moves)

    @property
    def state_bytes(self) -> int:
        return sum(move.state_bytes for move in self.moves)


class MigrationEngine:
    """Plans and executes deployment moves against one controller."""

    def __init__(self, controller, params: MigrationParameters | None = None):
        self.controller = controller
        self.params = params or MigrationParameters()
        self.migrations_planned = 0
        self.migrations_completed = 0
        self.bytes_migrated = 0

    # -- cost model ----------------------------------------------------------

    def state_bytes(self, deployment: Deployment, replica_index: int) -> int:
        """Transferable state of one replica (config + program derived)."""
        plan = deployment.plan
        placement = deployment.placements[replica_index]
        image = plan.image_for(placement.device_type)
        program = plan.programs[min(replica_index, len(plan.programs) - 1)]
        return architectural_state_bytes(image.instance, program)

    def _transfer_time(self, src_fpga: str, dst_fpga: str, data_bytes: int) -> float:
        network = self.controller.cluster.network
        if network is None:
            return 0.0
        return network.transfer_time(
            src_fpga, dst_fpga, data_bytes,
            added_latency_s=self.params.added_latency_s,
        )

    # -- planning ------------------------------------------------------------

    def plan_move(self, deployment: Deployment, targets: dict) -> MigrationPlan:
        """Plan relocating ``targets``: ``{replica_index: destination board}``.

        Raises :class:`DeploymentError` when the deployment is not idle, a
        destination lacks an image for its device type, cannot host the
        image, or already hosts another replica of the same deployment.
        """
        if deployment.state is not DeploymentState.IDLE:
            raise DeploymentError(
                f"cannot migrate {deployment.deployment_id}: state is "
                f"{deployment.state.value}"
            )
        if not targets:
            raise ReproError("migration plan needs at least one replica move")
        # A destination may not coincide with ANY current placement (moved
        # or not): blocks are owned per (board, deployment-id), so landing
        # on a board the deployment already occupies would merge ownership
        # and corrupt the source release.
        occupied = {placement.fpga_id for placement in deployment.placements}
        plan = MigrationPlan(
            deployment_id=deployment.deployment_id,
            model_key=deployment.model_key,
        )
        for replica_index in sorted(targets):
            board = targets[replica_index]
            try:
                placement = deployment.placements[replica_index]
            except IndexError:
                raise ReproError(
                    f"{deployment.deployment_id} has no replica "
                    f"{replica_index}"
                ) from None
            if board.fpga_id == placement.fpga_id:
                raise DeploymentError(
                    f"replica {replica_index} already resides on "
                    f"{board.fpga_id}"
                )
            if board.fpga_id in occupied:
                raise DeploymentError(
                    f"{board.fpga_id} already hosts a replica of "
                    f"{deployment.deployment_id}"
                )
            dst_type = board.model.name
            if dst_type not in deployment.plan.images:
                raise DeploymentError(
                    f"{deployment.model_key} x{deployment.plan.replicas} has "
                    f"no image for {dst_type} (cannot remap to "
                    f"{board.fpga_id})"
                )
            image = deployment.plan.images[dst_type]
            if not board.can_host(image.virtual_blocks):
                raise DeploymentError(
                    f"{board.fpga_id} cannot host {image.virtual_blocks} "
                    f"blocks ({board.free_blocks} free)"
                )
            state_bytes = self.state_bytes(deployment, replica_index)
            plan.moves.append(
                ReplicaMove(
                    replica_index=replica_index,
                    src_fpga=placement.fpga_id,
                    dst_fpga=board.fpga_id,
                    src_type=placement.device_type,
                    dst_type=dst_type,
                    src_blocks=placement.virtual_blocks,
                    dst_blocks=image.virtual_blocks,
                    state_bytes=state_bytes,
                    drain_s=self.params.drain_s,
                    transfer_s=self._transfer_time(
                        placement.fpga_id, board.fpga_id, state_bytes
                    ),
                    reconfig_s=image.virtual_blocks
                    * self.controller.reconfig_s_per_block,
                )
            )
            occupied.add(board.fpga_id)
        self.migrations_planned += 1
        PROFILER.incr("migration.plans")
        return plan

    # -- execution -----------------------------------------------------------

    def begin(self, plan: MigrationPlan, now: float = 0.0) -> float:
        """Start executing ``plan``: configure destination blocks and take
        the deployment out of service.  Source *and* destination blocks are
        occupied until :meth:`finish`; returns the plan's total cost so the
        caller can schedule that call."""
        controller = self.controller
        deployment = controller.deployments.get(plan.deployment_id)
        if deployment is None:
            raise DeploymentError(
                f"deployment {plan.deployment_id} no longer exists"
            )
        if deployment.state is not DeploymentState.IDLE:
            raise DeploymentError(
                f"cannot migrate {plan.deployment_id}: state is "
                f"{deployment.state.value}"
            )
        deployment.state = DeploymentState.MIGRATING
        for move in plan.moves:
            board = controller.cluster.board(move.dst_fpga)
            image = deployment.plan.images[move.dst_type]
            controller.low_level.configure(
                board, deployment.deployment_id, image.artifact
            )
        PROFILER.incr("migration.begun")
        return plan.total_cost_s

    def finish(self, plan: MigrationPlan, now: float = 0.0) -> None:
        """Complete ``plan``: release source blocks, repoint placements,
        re-estimate service time for the (possibly new) device-type mix."""
        controller = self.controller
        deployment = controller.deployments.get(plan.deployment_id)
        if deployment is None:
            raise DeploymentError(
                f"deployment {plan.deployment_id} no longer exists"
            )
        if deployment.state is not DeploymentState.MIGRATING:
            raise DeploymentError(
                f"finish on {plan.deployment_id} in state "
                f"{deployment.state.value}"
            )
        for move in plan.moves:
            src = controller.cluster.board(move.src_fpga)
            controller.low_level.release(src, deployment.deployment_id)
            controller.untrack_resident(move.src_fpga, deployment.deployment_id)
            dst = controller.cluster.board(move.dst_fpga)
            controller.track_resident(move.dst_fpga, deployment.deployment_id)
            image = deployment.plan.images[move.dst_type]
            deployment.placements[move.replica_index] = ReplicaPlacement(
                fpga_id=move.dst_fpga,
                device_type=move.dst_type,
                virtual_blocks=image.virtual_blocks,
                block_indices=list(dst.owned_indices(deployment.deployment_id)),
            )
            self.bytes_migrated += move.state_bytes
        deployment.service_s = controller._service_time(
            deployment.plan, deployment.placements
        )
        deployment.state = DeploymentState.IDLE
        deployment.last_used_s = now
        deployment.migrations += 1
        self.migrations_completed += 1
        PROFILER.incr("migration.completed")
        PROFILER.incr("migration.bytes", plan.state_bytes)
        # A board under this deployment failed mid-move: the deferred
        # recovery runs now that the migration's block ownership is settled.
        if deployment.pending_recovery and controller.recovery_enabled:
            controller.recovery.recover(deployment, now)

    def migrate(self, deployment: Deployment, targets: dict, now: float = 0.0) -> MigrationPlan:
        """Plan and synchronously execute one move (no DES in the loop)."""
        plan = self.plan_move(deployment, targets)
        self.begin(plan, now)
        self.finish(plan, now)
        return plan
