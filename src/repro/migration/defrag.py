"""Cluster defragmentation: metric + compaction policy.

Virtual blocks are identical within a board, so fragmentation in this
system is a *cluster-level* phenomenon: free blocks scattered across many
boards in per-board amounts each too small to host a replica image, even
though the aggregate would fit it several times over.  The metric follows
the classic external-fragmentation form,

    fragmentation(type) = 1 - largest_free_hole / total_free

(0.0 when every free block sits on one board, approaching 1.0 as the free
space shatters; 0.0 too when nothing is free — a full cluster is not a
fragmented one).

The compaction policy answers one placement failure at a time: given a
model that could not be placed, greedily choose the cheapest set of
replica migrations that opens enough per-board holes for the model's
cheapest feasible plan, using the controller's :class:`PlacementIndex` for
candidate ordering.  Victims must be idle; busy and migrating deployments
never move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..runtime.deployment import DeploymentState
from .engine import MigrationEngine


def fragmentation(index, device_type: str) -> float:
    """External fragmentation of one device type's free blocks."""
    total_free = sum(
        board.free_blocks for board in index.boards_by_id(device_type)
    )
    if total_free <= 0:
        return 0.0
    return 1.0 - index.max_free(device_type) / total_free


def cluster_fragmentation(index) -> dict:
    """Per-type fragmentation plus a free-block-weighted ``overall``."""
    report: dict[str, float] = {}
    weighted = 0.0
    total_free = 0
    for device_type in index.device_types():
        free = sum(
            board.free_blocks for board in index.boards_by_id(device_type)
        )
        frag = fragmentation(index, device_type)
        report[device_type] = frag
        weighted += frag * free
        total_free += free
    report["overall"] = weighted / total_free if total_free else 0.0
    return report


@dataclass
class DefragPlan:
    """The cheapest migration set that opens holes for one model."""

    model_key: str
    device_type: str
    #: Boards being opened up (one per replica the deployment plan needs).
    target_fpgas: list = field(default_factory=list)
    #: One :class:`MigrationPlan` per victim deployment, execution order.
    migrations: list = field(default_factory=list)
    needed_blocks: int = 0

    @property
    def total_cost_s(self) -> float:
        return sum(plan.total_cost_s for plan in self.migrations)

    @property
    def move_count(self) -> int:
        return sum(len(plan.moves) for plan in self.migrations)


def _movable_deployments(controller, board):
    """Idle deployments with exactly one replica on ``board``, stable order."""
    victims = []
    for owner in sorted(board.owners()):
        deployment = controller.deployments.get(owner)
        if deployment is None or deployment.state is not DeploymentState.IDLE:
            continue
        on_board = [
            index
            for index, placement in enumerate(deployment.placements)
            if placement.fpga_id == board.fpga_id
        ]
        if len(on_board) == 1:
            victims.append((deployment, on_board[0]))
    return victims


def _cheapest_destination(
    engine: MigrationEngine,
    deployment,
    replica_index: int,
    excluded: set,
    tentative_free: dict,
    index,
):
    """Cheapest board that can absorb one replica, honouring tentative
    allocations from moves already chosen in this plan.  ``index`` scopes
    the destination search (a pod index keeps compaction pod-local; the
    controller's router makes it cluster-wide)."""
    controller = engine.controller
    occupied = {placement.fpga_id for placement in deployment.placements}
    best = None
    for device_type in sorted(deployment.plan.images):
        image = deployment.plan.images[device_type]
        for board in index.boards_best_fit(device_type):
            if board.fpga_id in excluded or board.fpga_id in occupied:
                continue
            free = tentative_free.get(board.fpga_id, board.free_blocks)
            if free < image.virtual_blocks:
                continue
            placement = deployment.placements[replica_index]
            state_bytes = engine.state_bytes(deployment, replica_index)
            cost = (
                engine.params.drain_s
                + engine._transfer_time(
                    placement.fpga_id, board.fpga_id, state_bytes
                )
                + image.virtual_blocks * controller.reconfig_s_per_block
            )
            if best is None or (cost, board.fpga_id) < (best[0], best[1].fpga_id):
                best = (cost, board, image.virtual_blocks)
            break  # best-fit order: first feasible board is the tightest fit
    return best


def _open_hole(engine, board, need: int, excluded: set, tentative_free: dict,
               index):
    """Cheapest victim set freeing ``board`` up to ``need`` blocks.

    Returns ``(moves, cost)`` with ``moves`` as ``(deployment,
    replica_index, dst_board)`` triples, or ``None`` when the deficit
    cannot be covered by migrating idle single-replica residents.
    Destinations are re-evaluated after every pick (an earlier victim may
    consume a destination), and ``tentative_free`` is only updated when
    the whole hole opens — a failed attempt leaves no phantom
    allocations behind for the next candidate target.
    """
    controller = engine.controller
    local = dict(tentative_free)
    deficit = need - local.get(board.fpga_id, board.free_blocks)
    if deficit <= 0:
        return [], 0.0
    victims = _movable_deployments(controller, board)
    chosen: set[tuple] = set()
    moves = []
    total_cost = 0.0
    while deficit > 0:
        best = None
        for deployment, replica_index in victims:
            if (deployment.deployment_id, replica_index) in chosen:
                continue
            freed = deployment.placements[replica_index].virtual_blocks
            destination = _cheapest_destination(
                engine, deployment, replica_index, excluded, local, index
            )
            if destination is None:
                continue
            cost, dst_board, dst_blocks = destination
            # Cheapest cost per freed block; deployment id breaks ties.
            key = (cost / freed, cost, deployment.deployment_id)
            if best is None or key < best[0]:
                best = (key, deployment, replica_index, dst_board,
                        dst_blocks, freed, cost)
        if best is None:
            return None
        _, deployment, replica_index, dst_board, dst_blocks, freed, cost = best
        chosen.add((deployment.deployment_id, replica_index))
        moves.append((deployment, replica_index, dst_board))
        total_cost += cost
        local[dst_board.fpga_id] = (
            local.get(dst_board.fpga_id, dst_board.free_blocks) - dst_blocks
        )
        local[board.fpga_id] = (
            local.get(board.fpga_id, board.free_blocks) + freed
        )
        deficit -= freed
    tentative_free.update(local)
    return moves, total_cost


def plan_defrag(
    controller, model_key: str, engine: MigrationEngine, index=None
) -> DefragPlan | None:
    """The cheapest compaction that would let ``model_key`` place.

    Only worth attempting when the failure is fragmentation, not capacity:
    for each deployment plan (fewest replicas first) and feasible device
    type, if the aggregate free blocks could host every replica but too
    few boards have a large-enough hole, greedily open the missing holes
    on the boards closest to fitting.  Returns ``None`` when no migration
    set helps (genuinely full cluster, or victims are all busy).

    ``index`` scopes the whole search — candidate holes, victims and
    destinations.  The controller passes each pod's private index in turn
    so compaction cost stays constant as the cluster grows; ``None`` falls
    back to the controller's cluster-wide view.
    """
    if index is None:
        index = controller.index
    entry = controller.catalog.entry_by_key(model_key)
    best: DefragPlan | None = None
    for deployment_plan in entry.sorted_plans():
        for device_type in deployment_plan.feasible_types:
            need = deployment_plan.images[device_type].virtual_blocks
            holes = index.count_with_at_least(device_type, need)
            missing = deployment_plan.replicas - holes
            if missing <= 0:
                continue  # placement would not have failed on hole count
            total_free = sum(
                board.free_blocks for board in index.boards_by_id(device_type)
            )
            if total_free < need * deployment_plan.replicas:
                continue  # capacity problem, not fragmentation
            # Open holes on the boards closest to fitting (most free
            # first), excluding boards that already qualify.
            candidates = [
                board
                for board in index.boards_worst_fit(device_type)
                if board.free_blocks < need
            ]
            tentative_free: dict[str, int] = {}
            excluded = {
                board.fpga_id
                for board in index.boards_by_id(device_type)
                if board.free_blocks >= need
            }
            chosen_moves = []
            total_cost = 0.0
            targets = []
            for board in candidates:
                if len(targets) >= missing:
                    break
                excluded.add(board.fpga_id)
                opened = _open_hole(
                    engine, board, need, excluded, tentative_free, index
                )
                if opened is None:
                    excluded.discard(board.fpga_id)
                    continue
                moves, cost = opened
                chosen_moves.extend(moves)
                total_cost += cost
                targets.append(board.fpga_id)
            if len(targets) < missing:
                continue
            plan = DefragPlan(
                model_key=model_key,
                device_type=device_type,
                target_fpgas=targets,
                needed_blocks=need,
            )
            # Group chosen replica moves per victim deployment into
            # MigrationPlans (plan-only: execution is the caller's call).
            grouped: dict[str, dict] = {}
            order: list[str] = []
            for deployment, replica_index, dst_board in chosen_moves:
                if deployment.deployment_id not in grouped:
                    grouped[deployment.deployment_id] = (deployment, {})
                    order.append(deployment.deployment_id)
                grouped[deployment.deployment_id][1][replica_index] = dst_board
            try:
                for deployment_id in order:
                    victim, victim_targets = grouped[deployment_id]
                    plan.migrations.append(
                        engine.plan_move(victim, victim_targets)
                    )
            except Exception:
                continue  # a raced state change invalidated the plan
            if best is None or plan.total_cost_s < best.total_cost_s:
                best = plan
    return best
