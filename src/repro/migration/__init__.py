"""Checkpoint/restore and live migration (the cloud-operations layer).

The framework's application-specific ISA makes accelerator state
*architectural*: everything a running NPU holds — vector/matrix register
files, the program counter and loop stack, DRAM, undelivered
synchronisation slices — is visible at an instruction boundary, with no
microarchitectural residue.  A snapshot taken there can therefore be
serialised, shipped over the ring network, and resumed on any board whose
mapping database holds an image for the same program, *including boards of
a different device type* (the catalog compiles every plan per type).

Three layers build on that property:

* :mod:`~repro.migration.checkpoint` — architectural snapshots with
  serialize/deserialize and a config-derived state-size model;
* :mod:`~repro.migration.engine`     — planning and executing moves of a
  live deployment to other boards, charging drain + state transfer +
  virtual-block reconfiguration;
* :mod:`~repro.migration.defrag`     — a fragmentation metric and the
  compaction policy the controller invokes when placement fails despite
  sufficient aggregate free blocks.

Everything here is off by default (``SystemController(migration_enabled=
False)``); enabling it changes scheduling outcomes, so the Fig. 12 goldens
only pin the disabled path.
"""

from .checkpoint import (
    AcceleratorCheckpoint,
    FabricCheckpoint,
    architectural_state_bytes,
    checkpoint_scaleout,
    restore_scaleout,
)
from .defrag import DefragPlan, cluster_fragmentation, fragmentation, plan_defrag
from .engine import MigrationEngine, MigrationParameters, MigrationPlan, ReplicaMove

__all__ = [
    "AcceleratorCheckpoint",
    "DefragPlan",
    "FabricCheckpoint",
    "MigrationEngine",
    "MigrationParameters",
    "MigrationPlan",
    "ReplicaMove",
    "architectural_state_bytes",
    "checkpoint_scaleout",
    "cluster_fragmentation",
    "fragmentation",
    "plan_defrag",
    "restore_scaleout",
]
