"""ISA-level architectural snapshots of a running accelerator.

A checkpoint is taken at an instruction boundary and captures exactly the
state the ISA defines: the vector and matrix register files, the program
counter with its loop stack, the replica's DRAM contents, and the dynamic
execution counters.  For scale-out deployments the synchronisation fabric
is checkpointed alongside the replicas, so slices that were sent but not
yet combined (the in-flight queue) survive the move instead of needing a
barrier drain.

Snapshots are device-type agnostic by construction — nothing in them names
a board or an instance — which is what lets the migration engine resume a
deployment on a different device type using the catalog's per-type image.

The state-size *model* (:func:`architectural_state_bytes`) estimates a
replica's transferable state from the accelerator config (and, when known,
the program's register footprint) without materialising a snapshot; the
migration engine charges ring-transfer time against it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..accel.config import AcceleratorConfig
from ..accel.functional import FunctionalSimulator, ScaleOutFabric, SimStats
from ..errors import ReproError
from ..isa.program import Program

#: Activations travel as float16 on the wire (the network's element size).
ACTIVATION_BYTES = 2
#: Fixed control state: program counter, loop stack, status registers.
CONTROL_STATE_BYTES = 256

_SERIAL_VERSION = 1


def architectural_state_bytes(
    config: AcceleratorConfig, program: Program | None = None
) -> int:
    """Transferable state of one replica, modelled from its config.

    Three components:

    * the vector register file (float16 activations),
    * the weight state resident in matrix registers / per-tile memory
      (``weight_bits`` per element, as stored on chip),
    * fixed control state (PC, loop stack, status).

    With ``program`` given, the register files are sized to the program's
    static footprint (a snapshot only ships registers the program can have
    written); without it, the architectural maximum from the config is
    used.
    """
    if program is not None:
        footprint = program.register_footprint()
        vector_regs = footprint.vector_registers
        vector_length = footprint.max_vector_length or config.max_vector_length
        matrix_bits = footprint.matrix_words * config.weight_bits
    else:
        vector_regs = config.vector_registers
        vector_length = config.max_vector_length
        # A matrix register holds up to max_vector_length x max_vector_length
        # weights, so the architectural ceiling is quadratic in the length.
        matrix_bits = (
            config.matrix_registers
            * config.max_vector_length ** 2
            * config.weight_bits
        )
    vrf_bytes = vector_regs * vector_length * ACTIVATION_BYTES
    return int(vrf_bytes + matrix_bits // 8 + CONTROL_STATE_BYTES)


def _encode_array(values: np.ndarray) -> list:
    return np.asarray(values, dtype=np.float64).ravel().tolist()


def _array_field(registers: dict) -> dict:
    return {str(index): _encode_array(values) for index, values in registers.items()}


def _decode_registers(payload: dict) -> dict:
    return {
        int(index): np.asarray(values, dtype=np.float64)
        for index, values in payload.items()
    }


@dataclass
class AcceleratorCheckpoint:
    """One replica's architectural state at an instruction boundary."""

    program_name: str
    replica_index: int
    pc: int
    halted: bool
    #: Loop stack frames ``[start_pc, remaining_trips, iteration_index]``.
    loop_stack: list = field(default_factory=list)
    vrf: dict = field(default_factory=dict)
    #: Matrix registers as ``index -> (rows x cols) array`` (BFP-quantised
    #: values exactly as resident on chip).
    mrf: dict = field(default_factory=dict)
    #: DRAM contents up to the high-water mark.
    dram: np.ndarray = field(default_factory=lambda: np.zeros(0))
    stats: SimStats = field(default_factory=SimStats)

    # -- capture/restore -----------------------------------------------------

    @classmethod
    def capture(cls, sim: FunctionalSimulator) -> "AcceleratorCheckpoint":
        """Snapshot ``sim`` between instructions (any PC is a boundary)."""
        data = sim.dram._data
        high_water = int(np.max(np.nonzero(data)[0])) + 1 if np.any(data) else 0
        return cls(
            program_name=sim.program.name,
            replica_index=sim.replica_index,
            pc=sim.pc,
            halted=sim.halted,
            loop_stack=[list(frame) for frame in sim.loop_stack],
            vrf={index: values.copy() for index, values in sim.vrf.items()},
            mrf={index: values.copy() for index, values in sim.mrf.items()},
            dram=data[:high_water].copy(),
            stats=SimStats(**vars(sim.stats)),
        )

    def restore(
        self,
        program: Program,
        fabric: ScaleOutFabric | None = None,
        **kwargs,
    ) -> FunctionalSimulator:
        """Rebuild a simulator resuming at the captured boundary.

        ``program`` must be the same program the snapshot was taken from
        (the checkpoint is positional state over its instruction stream);
        the hosting board/device type is free to differ.
        """
        if program.name != self.program_name:
            raise ReproError(
                f"checkpoint of {self.program_name!r} cannot resume "
                f"{program.name!r}"
            )
        sim = FunctionalSimulator(
            program, fabric=fabric, replica_index=self.replica_index, **kwargs
        )
        sim.pc = self.pc
        sim.halted = self.halted
        sim.loop_stack = [list(frame) for frame in self.loop_stack]
        sim.vrf = {index: values.copy() for index, values in self.vrf.items()}
        sim.mrf = {index: values.copy() for index, values in self.mrf.items()}
        if self.dram.size:
            sim.dram.write(0, self.dram)
        sim.stats = SimStats(**vars(self.stats))
        return sim

    # -- serialisation -------------------------------------------------------

    def to_bytes(self) -> bytes:
        payload = {
            "version": _SERIAL_VERSION,
            "program_name": self.program_name,
            "replica_index": self.replica_index,
            "pc": self.pc,
            "halted": self.halted,
            "loop_stack": [list(frame) for frame in self.loop_stack],
            "vrf": _array_field(self.vrf),
            "mrf": {
                str(index): {
                    "shape": list(values.shape),
                    "data": _encode_array(values),
                }
                for index, values in self.mrf.items()
            },
            "dram": _encode_array(self.dram),
            "stats": vars(self.stats),
        }
        return json.dumps(payload).encode()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "AcceleratorCheckpoint":
        payload = json.loads(blob.decode())
        if payload.get("version") != _SERIAL_VERSION:
            raise ReproError(
                f"unsupported checkpoint version {payload.get('version')!r}"
            )
        return cls(
            program_name=payload["program_name"],
            replica_index=payload["replica_index"],
            pc=payload["pc"],
            halted=payload["halted"],
            loop_stack=[list(frame) for frame in payload["loop_stack"]],
            vrf=_decode_registers(payload["vrf"]),
            mrf={
                int(index): np.asarray(
                    entry["data"], dtype=np.float64
                ).reshape(entry["shape"])
                for index, entry in payload["mrf"].items()
            },
            dram=np.asarray(payload["dram"], dtype=np.float64),
            stats=SimStats(**payload["stats"]),
        )

    def payload_bytes(self) -> int:
        """Measured serialised size (the model above estimates this)."""
        return len(self.to_bytes())


@dataclass
class FabricCheckpoint:
    """In-flight synchronisation state of a scale-out deployment.

    Captures every sent-but-uncombined slice and each replica's receive
    round, so checkpointing does not require the replicas to reach a
    barrier first — the queue contents migrate with the deployment.
    """

    replicas: int
    #: ``addr -> per-replica list of pending slices``.
    sends: dict = field(default_factory=dict)
    #: ``(addr, replica) -> next receive round`` as a flat list of triples.
    recv_rounds: list = field(default_factory=list)
    bytes_transferred: int = 0

    @classmethod
    def capture(cls, fabric: ScaleOutFabric) -> "FabricCheckpoint":
        return cls(
            replicas=fabric.replicas,
            sends={
                addr: [[s.copy() for s in queue] for queue in queues]
                for addr, queues in fabric._sends.items()
            },
            recv_rounds=[
                [addr, replica, round_index]
                for (addr, replica), round_index in fabric._recv_round.items()
            ],
            bytes_transferred=fabric.bytes_transferred,
        )

    def restore(self) -> ScaleOutFabric:
        fabric = ScaleOutFabric(self.replicas)
        fabric._sends = {
            addr: [[s.copy() for s in queue] for queue in queues]
            for addr, queues in self.sends.items()
        }
        fabric._recv_round = {
            (addr, replica): round_index
            for addr, replica, round_index in self.recv_rounds
        }
        fabric.bytes_transferred = self.bytes_transferred
        return fabric

    def to_bytes(self) -> bytes:
        payload = {
            "version": _SERIAL_VERSION,
            "replicas": self.replicas,
            "sends": {
                str(addr): [[_encode_array(s) for s in queue] for queue in queues]
                for addr, queues in self.sends.items()
            },
            "recv_rounds": self.recv_rounds,
            "bytes_transferred": self.bytes_transferred,
        }
        return json.dumps(payload).encode()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "FabricCheckpoint":
        payload = json.loads(blob.decode())
        if payload.get("version") != _SERIAL_VERSION:
            raise ReproError(
                f"unsupported checkpoint version {payload.get('version')!r}"
            )
        return cls(
            replicas=payload["replicas"],
            sends={
                int(addr): [
                    [np.asarray(s, dtype=np.float64) for s in queue]
                    for queue in queues
                ]
                for addr, queues in payload["sends"].items()
            },
            recv_rounds=[list(t) for t in payload["recv_rounds"]],
            bytes_transferred=payload["bytes_transferred"],
        )


def checkpoint_scaleout(sims: list, fabric: ScaleOutFabric) -> tuple:
    """Snapshot every replica plus the fabric of one scale-out deployment."""
    return (
        [AcceleratorCheckpoint.capture(sim) for sim in sims],
        FabricCheckpoint.capture(fabric),
    )


def restore_scaleout(
    checkpoints: list, fabric_checkpoint: FabricCheckpoint, programs: list, **kwargs
) -> tuple:
    """Rebuild the replica simulators and fabric from their snapshots."""
    if len(checkpoints) != len(programs):
        raise ReproError(
            f"{len(checkpoints)} checkpoints for {len(programs)} programs"
        )
    fabric = fabric_checkpoint.restore()
    sims = [
        checkpoint.restore(program, fabric=fabric, **kwargs)
        for checkpoint, program in zip(checkpoints, programs)
    ]
    return sims, fabric
