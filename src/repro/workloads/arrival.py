"""Arrival processes for synthetic workloads.

The paper's second benchmark set arrives "at a random time interval to
emulate the dynamic runtime environment" (Section 4.1).  We provide the two
standard choices; the Fig. 12 experiment uses Poisson arrivals at a rate
that saturates every system under comparison (throughput, not response
time, is the reported metric).
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError


def poisson_arrivals(count: int, rate_per_s: float, seed: int = 0) -> list:
    """``count`` arrival times with exponential inter-arrival gaps."""
    if count < 1:
        raise ReproError("need at least one arrival")
    if rate_per_s <= 0:
        raise ReproError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_s, size=count)
    return list(np.cumsum(gaps))


def uniform_arrivals(count: int, rate_per_s: float, seed: int = 0) -> list:
    """``count`` arrivals with uniformly random gaps of the same mean."""
    if count < 1:
        raise ReproError("need at least one arrival")
    if rate_per_s <= 0:
        raise ReproError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.uniform(0.0, 2.0 / rate_per_s, size=count)
    return list(np.cumsum(gaps))
