"""DeepBench-style benchmark models (paper Section 4.1, first benchmark set).

DeepBench collects representative layers from production DNN models; the
paper measures GRU/LSTM inference latency at batch size one.  Table 4's
seven configurations are reproduced exactly; the pool is extended with the
larger sizes the system evaluation needs (the Table 1 footnote defines the
S/M/L classes by hidden size).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel.codegen import RNNWeights, make_codegen
from ..errors import ReproError
from ..isa.progcache import PROGRAM_CACHE, program_cache_key
from ..isa.program import Program


def size_class_of(hidden: int) -> str:
    """Table 1 footnote: S <= 1024 < M <= 2048 < L."""
    if hidden <= 1024:
        return "S"
    if hidden <= 2048:
        return "M"
    return "L"


@dataclass(frozen=True)
class ModelSpec:
    """One benchmark model: kind, hidden size, sequence length."""

    kind: str
    hidden: int
    timesteps: int
    input_dim: int | None = None

    def __post_init__(self):
        if self.kind not in ("gru", "lstm"):
            raise ReproError(f"unknown model kind {self.kind!r}")

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``"gru-h1024-t1500"``."""
        return f"{self.kind}-h{self.hidden}-t{self.timesteps}"

    @property
    def size_class(self) -> str:
        return size_class_of(self.hidden)

    @property
    def gates(self) -> int:
        return 3 if self.kind == "gru" else 4

    @property
    def effective_input_dim(self) -> int:
        return self.input_dim or self.hidden

    @property
    def parameter_count(self) -> int:
        """Weight-matrix parameters (biases negligible)."""
        h, d = self.hidden, self.effective_input_dim
        return self.gates * (h * d + h * h)

    def weight_bits(self, bits_per_weight: int) -> int:
        return self.parameter_count * bits_per_weight

    # -- program construction ----------------------------------------------------

    def metadata_weights(self) -> RNNWeights:
        """Weight container without tensors — enough for codegen/timing."""
        return RNNWeights(
            kind=self.kind,
            hidden=self.hidden,
            input_dim=self.effective_input_dim,
            w=[None] * self.gates,
            u=[None] * self.gates,
            b=[None] * self.gates,
        )

    def program(self, replicas: int = 1, replica_index: int = 0) -> Program:
        """The ISA program for one (possibly scaled-down) replica.

        Memoised in :data:`repro.isa.progcache.PROGRAM_CACHE`: codegen
        output depends only on the configuration, so repeat deployments of
        the same model skip it (the returned program is a shallow copy —
        mutate freely).
        """
        key = program_cache_key(
            self.kind,
            self.hidden,
            self.effective_input_dim,
            self.timesteps,
            replicas=replicas,
            replica_index=replica_index,
            stage="template",
        )
        return PROGRAM_CACHE.get(
            key,
            lambda: make_codegen(
                self.kind,
                self.metadata_weights(),
                self.timesteps,
                replicas=replicas,
                replica_index=replica_index,
            ).build(),
        )

    def real_weights(self, seed: int = 0) -> RNNWeights:
        """Actual random tensors (functional simulation only — large!)."""
        return RNNWeights.random(
            self.kind, self.hidden, self.effective_input_dim, seed=seed
        )


#: Table 4's seven benchmark configurations, in table order.
TABLE4_BENCHMARKS = (
    ModelSpec("gru", 512, 1),
    ModelSpec("gru", 1024, 1500),
    ModelSpec("gru", 1536, 375),
    ModelSpec("lstm", 256, 150),
    ModelSpec("lstm", 512, 25),
    ModelSpec("lstm", 1024, 25),
    ModelSpec("lstm", 1536, 50),
)

#: The model pool by size class, used by the synthetic workload sets.  Kept
#: to a serving-realistic working set per class (weights of resident models
#: must largely fit the cluster, as in any persistent-NN deployment).
MODEL_POOL = {
    "S": (
        ModelSpec("gru", 512, 1),
        ModelSpec("lstm", 256, 150),
        ModelSpec("lstm", 512, 25),
    ),
    "M": (
        ModelSpec("gru", 1536, 375),
        ModelSpec("lstm", 1536, 50),
    ),
    # L models need two FPGAs (weights exceed one device).  gru-2304
    # replicas fit either device type, so the proposed system can pair a
    # XCVU37P with the XCKU115 while the restricted (same-type-only) policy
    # cannot — the heterogeneity benefit of Fig. 12.
    "L": (
        ModelSpec("gru", 2304, 250),
    ),
}

_ALL_MODELS = {
    spec.key: spec
    for specs in ([*TABLE4_BENCHMARKS], *[list(v) for v in MODEL_POOL.values()])
    for spec in specs
}
# Fig. 11's two-FPGA models.
for _extra in (ModelSpec("gru", 1024, 1500), ModelSpec("gru", 2560, 375)):
    _ALL_MODELS.setdefault(_extra.key, _extra)


def model_by_key(key: str) -> ModelSpec:
    """Resolve a model key back to its spec."""
    try:
        return _ALL_MODELS[key]
    except KeyError:
        raise ReproError(f"unknown benchmark model {key!r}") from None


def all_models() -> list:
    """Every registered benchmark model, stable order."""
    return [_ALL_MODELS[key] for key in sorted(_ALL_MODELS)]
