"""Workloads: DeepBench-style benchmark models and synthetic cloud mixes.

* :mod:`~repro.workloads.deepbench` — the first benchmark set (Section 4.1):
  representative GRU/LSTM inference tasks at batch size one, including the
  exact seven configurations of Table 4.
* :mod:`~repro.workloads.synthetic` — the second benchmark set: the ten
  S/M/L compositions of Table 1, generated as task streams with random
  arrival intervals.
* :mod:`~repro.workloads.arrival` — arrival processes.
"""

from .deepbench import (
    ModelSpec,
    TABLE4_BENCHMARKS,
    MODEL_POOL,
    model_by_key,
    size_class_of,
)
from .synthetic import (
    TABLE1_COMPOSITIONS,
    WorkloadComposition,
    generate_workload,
    load_trace,
    save_trace,
)
from .arrival import (
    ARRIVAL_PROCESSES,
    arrival_process,
    diurnal_arrivals,
    lognormal_arrivals,
    mmpp_arrivals,
    pareto_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "MODEL_POOL",
    "ModelSpec",
    "TABLE1_COMPOSITIONS",
    "TABLE4_BENCHMARKS",
    "WorkloadComposition",
    "arrival_process",
    "diurnal_arrivals",
    "generate_workload",
    "load_trace",
    "lognormal_arrivals",
    "mmpp_arrivals",
    "pareto_arrivals",
    "save_trace",
    "model_by_key",
    "poisson_arrivals",
    "size_class_of",
    "uniform_arrivals",
]
