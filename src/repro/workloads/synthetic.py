"""Synthetic workload sets (paper Table 1).

No real-world cloud FPGA workload trace is public, so the paper
synthetically generates ten workload sets with different S/M/L task
compositions.  Each set is a sequence of GRU/LSTM inference tasks (drawn
from the first benchmark set) arriving at random intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.simulator import Task
from ..errors import ReproError
from .arrival import poisson_arrivals
from .deepbench import MODEL_POOL


@dataclass(frozen=True)
class WorkloadComposition:
    """One row of Table 1: fractions of S/M/L tasks."""

    index: int
    small: float
    medium: float
    large: float

    def __post_init__(self):
        total = self.small + self.medium + self.large
        if abs(total - 1.0) > 1e-9:
            raise ReproError(
                f"composition {self.index} fractions sum to {total}, not 1"
            )

    def describe(self) -> str:
        parts = []
        for fraction, label in (
            (self.small, "S"),
            (self.medium, "M"),
            (self.large, "L"),
        ):
            if fraction > 0:
                parts.append(f"{fraction * 100:.0f}% {label}")
        return " + ".join(parts)


#: The ten compositions of Table 1.
TABLE1_COMPOSITIONS = (
    WorkloadComposition(1, 1.00, 0.00, 0.00),
    WorkloadComposition(2, 0.00, 1.00, 0.00),
    WorkloadComposition(3, 0.00, 0.00, 1.00),
    WorkloadComposition(4, 0.50, 0.50, 0.00),
    WorkloadComposition(5, 0.50, 0.00, 0.50),
    WorkloadComposition(6, 0.00, 0.50, 0.50),
    WorkloadComposition(7, 0.33, 0.33, 0.34),
    WorkloadComposition(8, 0.10, 0.30, 0.60),
    WorkloadComposition(9, 0.30, 0.60, 0.10),
    WorkloadComposition(10, 0.60, 0.10, 0.30),
)


def generate_workload(
    composition: WorkloadComposition,
    task_count: int = 200,
    arrival_rate_per_s: float = 500.0,
    seed: int = 0,
) -> list:
    """Build one task stream for a composition.

    Size classes are drawn per the composition's fractions; within a class
    the concrete model is drawn uniformly from the benchmark pool.  Arrivals
    are Poisson.  Deterministic for a given seed.
    """
    if task_count < 1:
        raise ReproError("task_count must be positive")
    rng = np.random.default_rng(seed)
    classes = rng.choice(
        ["S", "M", "L"],
        size=task_count,
        p=[composition.small, composition.medium, composition.large],
    )
    arrivals = poisson_arrivals(task_count, arrival_rate_per_s, seed=seed + 1)
    tasks = []
    for task_id, (size_class, arrival) in enumerate(zip(classes, arrivals)):
        pool = MODEL_POOL[size_class]
        spec = pool[int(rng.integers(0, len(pool)))]
        tasks.append(
            Task(
                task_id=task_id,
                model_key=spec.key,
                arrival_s=float(arrival),
                size_class=size_class,
            )
        )
    return tasks


# ---------------------------------------------------------------------------
# Trace persistence: experiments pin their task streams to disk so runs are
# exactly reproducible across machines and library versions.
# ---------------------------------------------------------------------------


def save_trace(tasks: list, path) -> None:
    """Write a task stream as a JSON trace file."""
    import json
    from pathlib import Path

    records = [
        {
            "task_id": task.task_id,
            "model_key": task.model_key,
            "arrival_s": task.arrival_s,
            "size_class": task.size_class,
        }
        for task in tasks
    ]
    Path(path).write_text(json.dumps({"version": 1, "tasks": records}, indent=1))


def load_trace(path) -> list:
    """Read a task stream written by :func:`save_trace`."""
    import json
    from pathlib import Path

    payload = json.loads(Path(path).read_text())
    if payload.get("version") != 1:
        raise ReproError(f"unsupported trace version in {path}")
    return [
        Task(
            task_id=record["task_id"],
            model_key=record["model_key"],
            arrival_s=record["arrival_s"],
            size_class=record.get("size_class", ""),
        )
        for record in payload["tasks"]
    ]
