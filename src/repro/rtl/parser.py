"""A parser for the structural Verilog subset emitted by this library.

The paper performs decomposition "at the intermediate RTL level"; in practice
that means consuming the (often machine-generated) structural Verilog that an
HLS tool or synthesis front-end produces.  This parser accepts the subset the
emitter (:mod:`repro.rtl.emitter`) produces, which is also the common shape
of generated structural RTL:

* ``module name (p0, p1, ...);`` or ANSI headers
  ``module name (input [7:0] a, output y);``
* ``input``/``output``/``inout`` declarations with optional ``[msb:lsb]``
* ``wire`` declarations
* module/primitive instantiations with named connections and optional
  ``#(.P(value))`` parameter overrides
* ``assign lhs = rhs;`` between whole nets
* ``(* key = "value" *)`` attribute annotations before a module

Everything behavioural (``always``, expressions) is rejected with a clear
:class:`~repro.errors.RTLParseError`.
"""

from __future__ import annotations

import re

from ..errors import RTLParseError
from .ir import Design, Direction, Module

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<attr>\(\*.*?\*\))
  | (?P<id>[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<number>[0-9]+(?:'[bdh][0-9a-fA-F_xzXZ]+)?)
  | (?P<string>"[^"]*")
  | (?P<sym>[()\[\]{},;:=#.])
  | (?P<ws>\s+)
    """,
    re.VERBOSE | re.DOTALL,
)

_DIRECTIONS = {
    "input": Direction.INPUT,
    "output": Direction.OUTPUT,
    "inout": Direction.INOUT,
}


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):  # pragma: no cover - debug aid
        return f"_Token({self.kind}, {self.text!r}, line={self.line})"


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise RTLParseError(f"unexpected character {source[pos]!r}", line)
        kind = match.lastgroup
        text = match.group()
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, line))
        line += text.count("\n")
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token], design_name: str):
        self.tokens = tokens
        self.pos = 0
        self.design = Design(design_name)

    # -- token helpers ---------------------------------------------------------

    def peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise RTLParseError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.next()
        if token.text != text:
            raise RTLParseError(f"expected {text!r}, found {token.text!r}", token.line)
        return token

    def expect_id(self) -> _Token:
        token = self.next()
        if token.kind != "id":
            raise RTLParseError(f"expected identifier, found {token.text!r}", token.line)
        return token

    def accept(self, text: str) -> bool:
        token = self.peek()
        if token is not None and token.text == text:
            self.pos += 1
            return True
        return False

    # -- grammar ------------------------------------------------------------------

    def parse(self) -> Design:
        pending_attrs: dict = {}
        while self.peek() is not None:
            token = self.peek()
            if token.kind == "attr":
                pending_attrs.update(self._parse_attribute(self.next()))
                continue
            if token.text == "module":
                module = self._parse_module(pending_attrs)
                pending_attrs = {}
                self.design.add_module(module)
                # Last module in the file is the default top; callers can
                # override after parsing.
                self.design.top = module.name
            else:
                raise RTLParseError(
                    f"expected 'module', found {token.text!r}", token.line
                )
        if not self.design.modules:
            raise RTLParseError("no modules found in source")
        return self.design

    @staticmethod
    def _parse_attribute(token: _Token) -> dict:
        body = token.text[2:-2].strip()
        attrs = {}
        for clause in body.split(","):
            if "=" in clause:
                key, value = clause.split("=", 1)
                attrs[key.strip()] = value.strip().strip('"')
            elif clause.strip():
                attrs[clause.strip()] = True
        return attrs

    def _parse_range(self) -> int:
        """Parse an optional ``[msb:lsb]``; returns the width."""
        if not self.accept("["):
            return 1
        msb = int(self.next().text)
        self.expect(":")
        lsb = int(self.next().text)
        self.expect("]")
        return abs(msb - lsb) + 1

    def _parse_module(self, attributes: dict) -> Module:
        self.expect("module")
        name_token = self.expect_id()
        module = Module(name_token.text, attributes)
        header_order: list[str] = []

        if self.accept("("):
            if not self.accept(")"):
                while True:
                    token = self.peek()
                    if token is not None and token.text in _DIRECTIONS:
                        # ANSI-style header port.
                        direction = _DIRECTIONS[self.next().text]
                        self.accept("wire")
                        width = self._parse_range()
                        port_name = self.expect_id().text
                        module.add_port(port_name, direction, width)
                    else:
                        header_order.append(self.expect_id().text)
                    if self.accept(")"):
                        break
                    self.expect(",")
        self.expect(";")

        while not self.accept("endmodule"):
            token = self.peek()
            if token is None:
                raise RTLParseError(
                    f"unterminated module {module.name!r}", name_token.line
                )
            if token.text in _DIRECTIONS:
                self._parse_port_decl(module)
            elif token.text == "wire":
                self._parse_wire_decl(module)
            elif token.text == "assign":
                self._parse_assign(module)
            elif token.kind == "id":
                self._parse_instance(module)
            else:
                raise RTLParseError(
                    f"unexpected {token.text!r} in module body", token.line
                )

        missing = [p for p in header_order if p not in module.ports]
        if missing:
            raise RTLParseError(
                f"module {module.name!r} header lists undeclared ports {missing}",
                name_token.line,
            )
        return module

    def _parse_port_decl(self, module: Module) -> None:
        direction = _DIRECTIONS[self.next().text]
        self.accept("wire")
        width = self._parse_range()
        while True:
            port_name = self.expect_id().text
            module.add_port(port_name, direction, width)
            if self.accept(";"):
                return
            self.expect(",")

    def _parse_wire_decl(self, module: Module) -> None:
        self.expect("wire")
        width = self._parse_range()
        while True:
            net_name = self.expect_id().text
            if net_name not in module.nets:
                module.add_net(net_name, width)
            if self.accept(";"):
                return
            self.expect(",")

    def _parse_assign(self, module: Module) -> None:
        self.expect("assign")
        target = self.expect_id().text
        self.expect("=")
        source_token = self.next()
        if source_token.kind not in ("id", "number"):
            raise RTLParseError(
                "only net-to-net assigns are supported "
                f"(found {source_token.text!r})",
                source_token.line,
            )
        self.expect(";")
        for net_name in (target, source_token.text):
            if source_token.kind == "number" and net_name == source_token.text:
                continue  # constant drivers are allowed and untracked
            if net_name not in module.nets:
                module.add_net(net_name)
        if source_token.kind == "id":
            module.add_assign(target, source_token.text)

    def _parse_instance(self, module: Module) -> None:
        module_name = self.expect_id().text
        parameters: dict = {}
        if self.accept("#"):
            self.expect("(")
            while not self.accept(")"):
                self.expect(".")
                key = self.expect_id().text
                self.expect("(")
                value_token = self.next()
                parameters[key] = _literal(value_token)
                self.expect(")")
                self.accept(",")
        inst_name = self.expect_id().text
        self.expect("(")
        connections: dict = {}
        while not self.accept(")"):
            self.expect(".")
            port_name = self.expect_id().text
            self.expect("(")
            net_token = self.expect_id()
            self.expect(")")
            connections[port_name] = net_token.text
            if net_token.text not in module.nets:
                module.add_net(net_token.text)
            self.accept(",")
        self.expect(";")
        module.add_instance(inst_name, module_name, connections, parameters)


def _literal(token: _Token):
    """Convert a parameter token into int/str."""
    if token.kind == "number" and "'" not in token.text:
        return int(token.text)
    if token.kind == "string":
        return token.text.strip('"')
    return token.text


def parse_design(source: str, name: str = "parsed") -> Design:
    """Parse structural Verilog text into a :class:`~repro.rtl.ir.Design`.

    The last module in the file becomes the top module; set ``design.top``
    afterwards to override.
    """
    return _Parser(_tokenize(source), name).parse()
