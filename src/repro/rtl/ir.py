"""Core structural RTL data types.

The IR is deliberately *structural*: modules, instances, nets, continuous
assigns.  Behavioural Verilog is out of scope — the decomposing tool in the
paper only needs the module hierarchy and the connectivity between modules,
both of which survive synthesis into structural form.

Conventions:

* Port and net names are unique within a module.
* An :class:`Instance` connects each of its ports to a net of the enclosing
  module by name (``connections[port_name] = net_name``).  Connecting a port
  directly to a parent port is expressed by connecting it to the net that the
  parser/builder implicitly creates for every port.
* Primitive cells (gates, flip-flops, DSP/BRAM macros) are instances whose
  ``module_name`` is registered in :mod:`repro.rtl.primitives`; they have no
  module definition in the design.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import RTLValidationError, UnknownModuleError


class Direction(enum.Enum):
    """Port direction."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"

    def flipped(self) -> "Direction":
        """The direction seen from the other side of the connection."""
        if self is Direction.INPUT:
            return Direction.OUTPUT
        if self is Direction.OUTPUT:
            return Direction.INPUT
        return Direction.INOUT


@dataclass(frozen=True)
class Port:
    """A module port: a named, directed bundle of ``width`` wires."""

    name: str
    direction: Direction
    width: int = 1

    def __post_init__(self):
        if self.width <= 0:
            raise RTLValidationError(
                f"port {self.name!r} must have positive width, got {self.width}"
            )


@dataclass(frozen=True)
class Net:
    """A named wire bundle inside a module."""

    name: str
    width: int = 1

    def __post_init__(self):
        if self.width <= 0:
            raise RTLValidationError(
                f"net {self.name!r} must have positive width, got {self.width}"
            )


@dataclass
class Instance:
    """An instantiation of a module or primitive cell inside a module.

    ``connections`` maps the *instantiated* module's port names to net names
    of the *enclosing* module.  ``parameters`` carries elaboration-time
    parameters (e.g. memory depth) that the emitter renders as Verilog
    parameter overrides.
    """

    name: str
    module_name: str
    connections: dict = field(default_factory=dict)
    parameters: dict = field(default_factory=dict)

    def connect(self, port_name: str, net_name: str) -> None:
        """Bind ``port_name`` of the instantiated module to ``net_name``."""
        self.connections[port_name] = net_name


@dataclass(frozen=True)
class Assign:
    """A continuous assignment ``assign target = source;`` (structural only)."""

    target: str
    source: str


class Module:
    """A structural RTL module.

    Modules own their ports, internal nets, child instances and assigns.
    Every port implicitly has a same-named net so instances can connect to
    it uniformly.
    """

    def __init__(self, name: str, attributes: dict | None = None):
        self.name = name
        self.ports: dict[str, Port] = {}
        self.nets: dict[str, Net] = {}
        self.instances: dict[str, Instance] = {}
        self.assigns: list[Assign] = []
        #: Free-form metadata. The decomposing tool reads
        #: ``attributes["role"]`` ("control"/"data") when present, and the
        #: resource estimator reads ``attributes["resources"]``.
        self.attributes: dict = dict(attributes or {})

    # -- construction -----------------------------------------------------------

    def add_port(self, name: str, direction: Direction, width: int = 1) -> Port:
        """Declare a port (and its implicit same-named net)."""
        if name in self.ports:
            raise RTLValidationError(f"duplicate port {name!r} in module {self.name!r}")
        port = Port(name, direction, width)
        self.ports[name] = port
        # Implicit net so instances can connect to the port by name.
        if name not in self.nets:
            self.nets[name] = Net(name, width)
        return port

    def add_net(self, name: str, width: int = 1) -> Net:
        """Declare an internal net."""
        if name in self.nets:
            raise RTLValidationError(f"duplicate net {name!r} in module {self.name!r}")
        net = Net(name, width)
        self.nets[name] = net
        return net

    def add_instance(
        self,
        name: str,
        module_name: str,
        connections: dict | None = None,
        parameters: dict | None = None,
    ) -> Instance:
        """Instantiate ``module_name`` as child ``name``."""
        if name in self.instances:
            raise RTLValidationError(
                f"duplicate instance {name!r} in module {self.name!r}"
            )
        inst = Instance(name, module_name, dict(connections or {}), dict(parameters or {}))
        self.instances[name] = inst
        return inst

    def add_assign(self, target: str, source: str) -> Assign:
        """Add a continuous assignment between two nets."""
        assign = Assign(target, source)
        self.assigns.append(assign)
        return assign

    # -- queries ------------------------------------------------------------------

    def input_ports(self) -> list[Port]:
        """Ports with direction INPUT, in declaration order."""
        return [p for p in self.ports.values() if p.direction is Direction.INPUT]

    def output_ports(self) -> list[Port]:
        """Ports with direction OUTPUT, in declaration order."""
        return [p for p in self.ports.values() if p.direction is Direction.OUTPUT]

    def net_width(self, net_name: str) -> int:
        """Width of a net (or implicit port net)."""
        if net_name in self.nets:
            return self.nets[net_name].width
        raise RTLValidationError(
            f"module {self.name!r} has no net {net_name!r}"
        )

    def net_consumers(self, net_name: str, design: "Design") -> list[tuple]:
        """All ``(instance, port)`` pairs reading ``net_name``."""
        return self._net_endpoints(net_name, design, Direction.INPUT)

    def net_drivers(self, net_name: str, design: "Design") -> list[tuple]:
        """All ``(instance, port)`` pairs driving ``net_name``."""
        return self._net_endpoints(net_name, design, Direction.OUTPUT)

    def _net_endpoints(
        self, net_name: str, design: "Design", direction: Direction
    ) -> list[tuple]:
        endpoints = []
        for inst in self.instances.values():
            ports = design.ports_of(inst.module_name)
            for port_name, bound_net in inst.connections.items():
                if bound_net != net_name:
                    continue
                port = ports.get(port_name)
                if port is not None and port.direction is direction:
                    endpoints.append((inst, port))
        return endpoints

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Module({self.name!r}, ports={len(self.ports)}, "
            f"nets={len(self.nets)}, instances={len(self.instances)})"
        )


class Design:
    """A set of modules with a designated top module.

    Instances may also reference primitive cells from
    :mod:`repro.rtl.primitives`, which have no :class:`Module` definition
    here.
    """

    #: Process-unique serials.  ``id(design)`` is NOT a safe cache key —
    #: CPython recycles addresses of collected objects, so a new design
    #: can inherit a dead design's memoised signatures.
    _uids = itertools.count()

    def __init__(self, name: str, top: str | None = None):
        self.name = name
        self.modules: dict[str, Module] = {}
        self._top = top
        self.uid = next(Design._uids)

    # -- construction -----------------------------------------------------------

    def add_module(self, module: Module) -> Module:
        """Register a module definition."""
        if module.name in self.modules:
            raise RTLValidationError(f"duplicate module {module.name!r}")
        self.modules[module.name] = module
        return module

    @property
    def top(self) -> str:
        """Name of the top module."""
        if self._top is None:
            raise RTLValidationError(f"design {self.name!r} has no top module set")
        return self._top

    @top.setter
    def top(self, value: str) -> None:
        self._top = value

    @property
    def top_module(self) -> Module:
        """The top :class:`Module`."""
        return self.require_module(self.top)

    # -- queries ------------------------------------------------------------------

    def require_module(self, name: str) -> Module:
        """Look up a module, raising :class:`UnknownModuleError` if missing."""
        try:
            return self.modules[name]
        except KeyError:
            raise UnknownModuleError(
                f"design {self.name!r} has no module {name!r}"
            ) from None

    def has_module(self, name: str) -> bool:
        """True when ``name`` is a module defined in this design."""
        return name in self.modules

    def ports_of(self, module_name: str) -> dict[str, Port]:
        """Port map of a module *or* primitive cell."""
        from . import primitives

        if module_name in self.modules:
            return self.modules[module_name].ports
        cell = primitives.lookup(module_name)
        if cell is not None:
            return cell.ports
        raise UnknownModuleError(f"unknown module or primitive {module_name!r}")

    def iter_modules(self) -> Iterator[Module]:
        """Iterate over module definitions in insertion order."""
        return iter(self.modules.values())

    def submodule_names(self, module_name: str) -> set:
        """Names of non-primitive modules instantiated by ``module_name``."""
        module = self.require_module(module_name)
        return {
            inst.module_name
            for inst in module.instances.values()
            if inst.module_name in self.modules
        }

    def reachable_modules(self, root: str | None = None) -> list[str]:
        """Module names reachable from ``root`` (default: top), root first."""
        root = root or self.top
        seen: list[str] = []
        stack = [root]
        visited = set()
        while stack:
            name = stack.pop()
            if name in visited or name not in self.modules:
                continue
            visited.add(name)
            seen.append(name)
            stack.extend(sorted(self.submodule_names(name)))
        return seen

    def instance_counts(self) -> dict:
        """How many times each module is instantiated across the design."""
        counts: dict[str, int] = {}
        for module in self.modules.values():
            for inst in module.instances.values():
                counts[inst.module_name] = counts.get(inst.module_name, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Design({self.name!r}, modules={len(self.modules)}, top={self._top!r})"


def connect_chain(module: Module, instances: Iterable[Instance], out_port: str, in_port: str, prefix: str = "chain") -> None:
    """Wire ``instances`` into a linear chain via new nets.

    Convenience used by generators and tests: the ``out_port`` of each
    instance is connected to the ``in_port`` of the next through a fresh net
    named ``{prefix}_{i}``.
    """
    chain = list(instances)
    for index in range(len(chain) - 1):
        net_name = f"{prefix}_{index}"
        if net_name not in module.nets:
            module.add_net(net_name)
        chain[index].connect(out_port, net_name)
        chain[index + 1].connect(in_port, net_name)
