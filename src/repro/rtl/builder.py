"""Fluent construction helpers for structural designs.

Generators (notably :mod:`repro.accel.generator`) build fairly large module
graphs; these builders keep that code declarative and catch wiring mistakes
(duplicate names, unknown nets) at construction time rather than at
validation time.
"""

from __future__ import annotations

from ..errors import RTLValidationError
from .ir import Design, Direction, Instance, Module


class ModuleBuilder:
    """Incrementally builds one :class:`~repro.rtl.ir.Module`.

    Example::

        m = ModuleBuilder("adder_stage")
        m.inputs(("a", 16), ("b", 16)).outputs(("y", 16))
        m.instance("add0", "FP16_ADD", a="a", b="b", y="y")
        module = m.build()
    """

    def __init__(self, name: str, attributes: dict | None = None):
        self._module = Module(name, attributes)
        self._built = False

    # -- ports ---------------------------------------------------------------

    def inputs(self, *specs) -> "ModuleBuilder":
        """Declare input ports from ``name`` or ``(name, width)`` specs."""
        return self._add_ports(Direction.INPUT, specs)

    def outputs(self, *specs) -> "ModuleBuilder":
        """Declare output ports from ``name`` or ``(name, width)`` specs."""
        return self._add_ports(Direction.OUTPUT, specs)

    def _add_ports(self, direction: Direction, specs) -> "ModuleBuilder":
        self._check_open()
        for spec in specs:
            if isinstance(spec, str):
                name, width = spec, 1
            else:
                name, width = spec
            self._module.add_port(name, direction, width)
        return self

    # -- nets / instances ------------------------------------------------------

    def net(self, name: str, width: int = 1) -> "ModuleBuilder":
        """Declare an internal net."""
        self._check_open()
        self._module.add_net(name, width)
        return self

    def nets(self, *specs) -> "ModuleBuilder":
        """Declare several nets from ``name`` or ``(name, width)`` specs."""
        self._check_open()
        for spec in specs:
            if isinstance(spec, str):
                self._module.add_net(spec)
            else:
                self._module.add_net(*spec)
        return self

    def instance(
        self, name: str, module_name: str, parameters: dict | None = None, **connections
    ) -> Instance:
        """Add an instance; keyword args are port→net connections.

        Connections must reference already-declared nets (or implicit port
        nets) so that typos surface immediately.
        """
        self._check_open()
        for net_name in connections.values():
            if net_name not in self._module.nets:
                raise RTLValidationError(
                    f"instance {name!r} in {self._module.name!r} connects to "
                    f"undeclared net {net_name!r}"
                )
        return self._module.add_instance(name, module_name, connections, parameters)

    def assign(self, target: str, source: str) -> "ModuleBuilder":
        """Add a continuous assignment between declared nets."""
        self._check_open()
        for net_name in (target, source):
            if net_name not in self._module.nets:
                raise RTLValidationError(
                    f"assign in {self._module.name!r} references undeclared "
                    f"net {net_name!r}"
                )
        self._module.add_assign(target, source)
        return self

    def attribute(self, key: str, value) -> "ModuleBuilder":
        """Attach free-form metadata to the module."""
        self._check_open()
        self._module.attributes[key] = value
        return self

    # -- finish -------------------------------------------------------------------

    def build(self) -> Module:
        """Finalize and return the module; the builder becomes read-only."""
        self._built = True
        return self._module

    def _check_open(self) -> None:
        if self._built:
            raise RTLValidationError(
                f"ModuleBuilder for {self._module.name!r} already built"
            )


class DesignBuilder:
    """Builds a :class:`~repro.rtl.ir.Design` from module builders/modules."""

    def __init__(self, name: str):
        self._design = Design(name)

    def module(self, name: str, attributes: dict | None = None) -> ModuleBuilder:
        """Start a new module builder whose result is auto-registered."""
        builder = ModuleBuilder(name, attributes)
        # Register eagerly so recursive generators can reference the module.
        self._design.add_module(builder._module)
        return builder

    def add(self, module: Module) -> "DesignBuilder":
        """Register a pre-built module."""
        self._design.add_module(module)
        return self

    def top(self, name: str) -> "DesignBuilder":
        """Set the top module."""
        self._design.top = name
        return self

    def build(self) -> Design:
        """Return the design (validation is the caller's choice)."""
        return self._design
