"""Primitive cell library.

Primitives are leaf cells that may appear inside *basic modules* (the
paper's term for a Verilog module that instantiates no other modules — gates
and flip-flops inside it do not break basic-ness).  Each primitive carries:

* a fixed port map, so connectivity through primitives can be analysed, and
* a :class:`~repro.resources.ResourceVector` cost, which the resource
  estimator sums to approximate post-synthesis utilisation.

The library is intentionally FPGA-*independent* at the RTL level — the same
primitive maps to different physical resources per device — but we keep a
single representative cost per cell, calibrated so the generated
BrainWave-like accelerator lands near the utilisation reported in Table 2 of
the paper (see ``repro/accel/generator.py`` for the calibration notes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..resources import ResourceVector
from .ir import Direction, Port


@dataclass(frozen=True)
class PrimitiveCell:
    """A leaf cell: name, port map and resource cost."""

    name: str
    ports: dict = field(default_factory=dict)
    cost: ResourceVector = field(default_factory=ResourceVector.zero)
    #: Family tag used by reports ("logic", "register", "dsp", "memory").
    family: str = "logic"


def _ports(*specs) -> dict:
    """Helper: build a port dict from ``(name, direction, width)`` tuples."""
    table = {}
    for name, direction, width in specs:
        table[name] = Port(name, direction, width)
    return table


_IN = Direction.INPUT
_OUT = Direction.OUTPUT

#: The primitive cell registry, keyed by cell name.
REGISTRY: dict[str, PrimitiveCell] = {}


def register(cell: PrimitiveCell) -> PrimitiveCell:
    """Add a cell to the registry (idempotent for identical cells)."""
    existing = REGISTRY.get(cell.name)
    if existing is not None and existing != cell:
        raise ValueError(f"conflicting registration for primitive {cell.name!r}")
    REGISTRY[cell.name] = cell
    return cell


def lookup(name: str) -> PrimitiveCell | None:
    """Find a primitive by name, or ``None`` when it is a regular module."""
    return REGISTRY.get(name)


def is_primitive(name: str) -> bool:
    """True when ``name`` names a registered primitive cell."""
    return name in REGISTRY


# ---------------------------------------------------------------------------
# Logic gates
# ---------------------------------------------------------------------------

for _gate in ("AND2", "OR2", "XOR2", "NAND2", "NOR2"):
    register(
        PrimitiveCell(
            name=_gate,
            ports=_ports(("a", _IN, 1), ("b", _IN, 1), ("y", _OUT, 1)),
            cost=ResourceVector(luts=0.5),
            family="logic",
        )
    )

register(
    PrimitiveCell(
        name="NOT",
        ports=_ports(("a", _IN, 1), ("y", _OUT, 1)),
        cost=ResourceVector(luts=0.25),
        family="logic",
    )
)

register(
    PrimitiveCell(
        name="MUX2",
        ports=_ports(("a", _IN, 1), ("b", _IN, 1), ("sel", _IN, 1), ("y", _OUT, 1)),
        cost=ResourceVector(luts=0.5),
        family="logic",
    )
)

register(
    PrimitiveCell(
        name="LUT6",
        ports=_ports(
            ("i0", _IN, 1), ("i1", _IN, 1), ("i2", _IN, 1),
            ("i3", _IN, 1), ("i4", _IN, 1), ("i5", _IN, 1), ("o", _OUT, 1),
        ),
        cost=ResourceVector(luts=1.0),
        family="logic",
    )
)

# ---------------------------------------------------------------------------
# Registers
# ---------------------------------------------------------------------------

register(
    PrimitiveCell(
        name="DFF",
        ports=_ports(("clk", _IN, 1), ("d", _IN, 1), ("q", _OUT, 1)),
        cost=ResourceVector(ffs=1.0),
        family="register",
    )
)

register(
    PrimitiveCell(
        name="DFFE",
        ports=_ports(("clk", _IN, 1), ("en", _IN, 1), ("d", _IN, 1), ("q", _OUT, 1)),
        cost=ResourceVector(ffs=1.0, luts=0.1),
        family="register",
    )
)

# ---------------------------------------------------------------------------
# Arithmetic macros (as inferred by synthesis)
# ---------------------------------------------------------------------------

register(
    PrimitiveCell(
        name="DSP_MAC",
        ports=_ports(
            ("clk", _IN, 1), ("a", _IN, 27), ("b", _IN, 18),
            ("c", _IN, 48), ("p", _OUT, 48),
        ),
        cost=ResourceVector(dsps=1.0, luts=12.0, ffs=30.0),
        family="dsp",
    )
)

register(
    PrimitiveCell(
        name="INT_ADD",
        ports=_ports(("a", _IN, 32), ("b", _IN, 32), ("y", _OUT, 32)),
        cost=ResourceVector(luts=32.0, ffs=32.0),
        family="logic",
    )
)

register(
    PrimitiveCell(
        name="FP16_MUL",
        ports=_ports(("clk", _IN, 1), ("a", _IN, 16), ("b", _IN, 16), ("y", _OUT, 16)),
        cost=ResourceVector(dsps=1.0, luts=90.0, ffs=120.0),
        family="dsp",
    )
)

register(
    PrimitiveCell(
        name="FP16_ADD",
        ports=_ports(("clk", _IN, 1), ("a", _IN, 16), ("b", _IN, 16), ("y", _OUT, 16)),
        cost=ResourceVector(luts=220.0, ffs=180.0),
        family="logic",
    )
)

#: A block-floating-point multiply-accumulate lane: narrow integer mantissa
#: multiply + shared exponent handling.  Cheap in LUTs, which is the whole
#: point of BFP in BrainWave.
register(
    PrimitiveCell(
        name="BFP_MAC",
        ports=_ports(
            ("clk", _IN, 1), ("a", _IN, 6), ("b", _IN, 6),
            ("acc_in", _IN, 24), ("acc_out", _OUT, 24),
        ),
        cost=ResourceVector(luts=18.0, ffs=24.0, dsps=0.17),
        family="dsp",
    )
)

# ---------------------------------------------------------------------------
# Memory macros
# ---------------------------------------------------------------------------

register(
    PrimitiveCell(
        name="BRAM36",
        ports=_ports(
            ("clk", _IN, 1), ("we", _IN, 1),
            ("addr_w", _IN, 9), ("addr_r", _IN, 9),
            ("din", _IN, 72), ("dout", _OUT, 72),
        ),
        # A BRAM36 stores 36Kb (512 x 72b).
        cost=ResourceVector(bram_bits=36.0 * 1024.0),
        family="memory",
    )
)

register(
    PrimitiveCell(
        name="URAM288",
        ports=_ports(
            ("clk", _IN, 1), ("we", _IN, 1),
            ("addr_w", _IN, 12), ("addr_r", _IN, 12),
            ("din", _IN, 72), ("dout", _OUT, 72),
        ),
        # A URAM288 stores 288Kb (4096 x 72b).
        cost=ResourceVector(uram_bits=288.0 * 1024.0),
        family="memory",
    )
)

register(
    PrimitiveCell(
        name="FIFO",
        ports=_ports(
            ("clk", _IN, 1), ("push", _IN, 1), ("pop", _IN, 1),
            ("din", _IN, 72), ("dout", _OUT, 72),
            ("full", _OUT, 1), ("empty", _OUT, 1),
        ),
        cost=ResourceVector(bram_bits=18.0 * 1024.0, luts=60.0, ffs=80.0),
        family="memory",
    )
)


def cell_cost(name: str) -> ResourceVector:
    """Resource cost of a primitive; zero for unknown names."""
    cell = REGISTRY.get(name)
    return cell.cost if cell is not None else ResourceVector.zero()
