"""Design validation.

Checks the structural invariants the downstream tools rely on.  Run this
before decomposing: the decomposer assumes connection targets exist and
that the hierarchy is acyclic.
"""

from __future__ import annotations

from ..errors import RTLValidationError, UnknownModuleError
from .ir import Design, Direction
from . import primitives


def validate_design(design: Design, allow_dangling: bool = True) -> list[str]:
    """Validate a design; raises on hard errors, returns soft warnings.

    Hard errors (raise :class:`RTLValidationError` /
    :class:`UnknownModuleError`):

    * missing top module
    * instance of an unknown module/primitive
    * connection to an undeclared net
    * connection to a port the instantiated module does not have
    * width mismatch between a port and its bound net
    * cyclic module hierarchy

    Soft warnings (returned): nets with multiple drivers, undriven output
    ports, dangling nets (unless ``allow_dangling`` is False, in which case
    they are hard errors).
    """
    warnings: list[str] = []
    design.top_module  # raises when no top is set / top missing
    _check_acyclic(design)

    for module in design.iter_modules():
        driver_count: dict[str, int] = {net: 0 for net in module.nets}
        touched: set = set()

        for assign in module.assigns:
            for net_name in (assign.target, assign.source):
                if net_name not in module.nets:
                    raise RTLValidationError(
                        f"{module.name}: assign references unknown net {net_name!r}"
                    )
            driver_count[assign.target] += 1
            touched.update((assign.target, assign.source))

        for inst in module.instances.values():
            if not design.has_module(inst.module_name) and not primitives.is_primitive(
                inst.module_name
            ):
                raise UnknownModuleError(
                    f"{module.name}: instance {inst.name!r} references unknown "
                    f"module {inst.module_name!r}"
                )
            ports = design.ports_of(inst.module_name)
            for port_name, net_name in inst.connections.items():
                if port_name not in ports:
                    raise RTLValidationError(
                        f"{module.name}: instance {inst.name!r} connects "
                        f"missing port {port_name!r} of {inst.module_name!r}"
                    )
                if net_name not in module.nets:
                    raise RTLValidationError(
                        f"{module.name}: instance {inst.name!r} connects to "
                        f"undeclared net {net_name!r}"
                    )
                port = ports[port_name]
                net = module.nets[net_name]
                if port.width != net.width:
                    raise RTLValidationError(
                        f"{module.name}: width mismatch on {inst.name}.{port_name} "
                        f"({port.width}) vs net {net_name} ({net.width})"
                    )
                touched.add(net_name)
                if port.direction is Direction.OUTPUT:
                    driver_count[net_name] += 1

        for port in module.ports.values():
            touched.add(port.name)
            if port.direction is Direction.INPUT:
                driver_count[port.name] += 1  # driven from outside

        for net_name, count in driver_count.items():
            if count > 1:
                warnings.append(
                    f"{module.name}: net {net_name!r} has {count} drivers"
                )

        for port in module.output_ports():
            if driver_count.get(port.name, 0) == 0 and (
                module.instances or module.assigns
            ):
                warnings.append(
                    f"{module.name}: output port {port.name!r} is undriven"
                )

        dangling = sorted(set(module.nets) - touched)
        for net_name in dangling:
            message = f"{module.name}: net {net_name!r} is dangling"
            if allow_dangling:
                warnings.append(message)
            else:
                raise RTLValidationError(message)

    return warnings


def _check_acyclic(design: Design) -> None:
    """Reject recursive module hierarchies."""
    WHITE, GREY, BLACK = 0, 1, 2
    state = {name: WHITE for name in design.modules}

    def visit(name: str, trail: tuple) -> None:
        state[name] = GREY
        for child in design.submodule_names(name):
            if state.get(child, BLACK) is GREY:
                cycle = " -> ".join(trail + (name, child))
                raise RTLValidationError(f"cyclic module hierarchy: {cycle}")
            if state.get(child) is WHITE:
                visit(child, trail + (name,))
        state[name] = BLACK

    for name in design.modules:
        if state[name] is WHITE:
            visit(name, ())
