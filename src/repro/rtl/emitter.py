"""Emit structural Verilog text from the IR.

The emitter and :mod:`repro.rtl.parser` round-trip: ``parse(emit(design))``
reconstructs an equivalent design.  This is used to exchange generated
accelerators with external tools and by the tests as a serialization check.
"""

from __future__ import annotations

from .ir import Design, Direction, Module

_DIRECTION_KEYWORD = {
    Direction.INPUT: "input",
    Direction.OUTPUT: "output",
    Direction.INOUT: "inout",
}


def _range_of(width: int) -> str:
    return f" [{width - 1}:0]" if width > 1 else ""


def emit_module(module: Module) -> str:
    """Render one module as structural Verilog."""
    lines: list[str] = []
    if module.attributes:
        rendered = ", ".join(
            f'{key} = "{value}"' for key, value in sorted(module.attributes.items())
            if isinstance(value, (str, int, float, bool))
        )
        if rendered:
            lines.append(f"(* {rendered} *)")

    port_names = ", ".join(module.ports)
    lines.append(f"module {module.name} ({port_names});")

    for port in module.ports.values():
        keyword = _DIRECTION_KEYWORD[port.direction]
        lines.append(f"  {keyword}{_range_of(port.width)} {port.name};")

    for net in module.nets.values():
        if net.name in module.ports:
            continue  # implicit port net
        lines.append(f"  wire{_range_of(net.width)} {net.name};")

    for assign in module.assigns:
        lines.append(f"  assign {assign.target} = {assign.source};")

    for inst in module.instances.values():
        params = ""
        if inst.parameters:
            rendered = ", ".join(
                f".{key}({_render_param(value)})"
                for key, value in inst.parameters.items()
            )
            params = f" #({rendered})"
        conns = ", ".join(
            f".{port}({net})" for port, net in inst.connections.items()
        )
        lines.append(f"  {inst.module_name}{params} {inst.name} ({conns});")

    lines.append("endmodule")
    return "\n".join(lines)


def _render_param(value) -> str:
    if isinstance(value, str):
        return f'"{value}"'
    return str(value)


def emit_design(design: Design) -> str:
    """Render all modules, dependencies first, top module last.

    The ordering makes the file valid for single-pass tools and makes the
    parser's "last module is top" convention reconstruct the right top.
    """
    emitted: list[str] = []
    done: set = set()

    def visit(name: str) -> None:
        if name in done or not design.has_module(name):
            return
        done.add(name)
        for dep in sorted(design.submodule_names(name)):
            visit(dep)
        emitted.append(emit_module(design.require_module(name)))

    # Emit unreachable modules too, before the top's cone.
    reachable = set(design.reachable_modules())
    for name in design.modules:
        if name not in reachable:
            visit(name)
    for name in design.reachable_modules()[::-1]:
        visit(name)
    # ``visit`` appends dependencies first; ensure top is last.
    top_text = emit_module(design.top_module)
    emitted = [text for text in emitted if text != top_text] + [top_text]
    return "\n\n".join(emitted) + "\n"
