"""Design-hierarchy utilities.

The decomposing tool's first step (paper Section 2.2.1, step 1) "parses the
input RTL design to extract all basic modules".  This module provides:

* :func:`is_basic_module` — the paper's basic-module predicate,
* :func:`basic_module_instances` — enumerate the hierarchical instances of
  basic modules under a root, with their hierarchical paths and boundary
  connectivity lifted to the root's net namespace,
* resource estimation for modules, instances, and whole designs.

Connectivity lifting is what lets the decomposer build a flat *block graph*
whose nodes are basic-module instances even though the source design is
hierarchical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..resources import ResourceVector
from .ir import Design, Module
from . import primitives


def is_basic_module(design: Design, module_name: str) -> bool:
    """True when the module instantiates no other *modules*.

    Primitive cells (gates, flip-flops, memory macros) do not count: the
    paper treats them as the contents of a basic module, not as submodules.
    """
    module = design.require_module(module_name)
    return all(
        not design.has_module(inst.module_name)
        for inst in module.instances.values()
    )


def iter_hierarchy(design: Design, root: str | None = None):
    """Yield ``(path, module_name, instance)`` for every hierarchical instance.

    ``path`` is the slash-joined instance path from the root (the root itself
    is yielded with path ``""`` and ``instance=None``).  Traversal is
    depth-first in declaration order, which gives deterministic block ids.
    """
    root = root or design.top

    def walk(module_name: str, path: str):
        module = design.require_module(module_name)
        for inst in module.instances.values():
            if not design.has_module(inst.module_name):
                continue  # primitive cell
            child_path = f"{path}/{inst.name}" if path else inst.name
            yield child_path, inst.module_name, inst
            yield from walk(inst.module_name, child_path)

    yield "", root, None
    yield from walk(root, "")


@dataclass
class BasicInstance:
    """One hierarchical instance of a basic module, with lifted connectivity.

    ``inputs``/``outputs`` map the basic module's port names to *root-level
    net keys*.  A net key is either a root net name (for nets visible at the
    root) or a unique hierarchical name for nets internal to intermediate
    modules — what matters to the decomposer is only that two instances that
    touch the same physical net get the same key.
    """

    path: str
    module_name: str
    inputs: dict = field(default_factory=dict)
    outputs: dict = field(default_factory=dict)

    @property
    def leaf_name(self) -> str:
        """The last path component (the local instance name)."""
        return self.path.rsplit("/", 1)[-1]


def basic_module_instances(
    design: Design, root: str | None = None
) -> list[BasicInstance]:
    """Enumerate basic-module instances under ``root`` with flat connectivity.

    Returns instances in deterministic depth-first order.  If the root module
    is itself basic, a single :class:`BasicInstance` with path ``""`` is
    returned.
    """
    root = root or design.top
    if is_basic_module(design, root):
        module = design.require_module(root)
        return [
            BasicInstance(
                path="",
                module_name=root,
                inputs={p.name: p.name for p in module.input_ports()},
                outputs={p.name: p.name for p in module.output_ports()},
            )
        ]

    results: list[BasicInstance] = []

    def lift(module_name: str, path: str, net_map: dict) -> None:
        """Walk ``module_name``; ``net_map`` maps local nets to global keys."""
        module = design.require_module(module_name)

        def key_for(local_net: str) -> str:
            if local_net in net_map:
                return net_map[local_net]
            # Internal net: globally unique hierarchical name.
            return f"{path}/{local_net}" if path else local_net

        # Resolve assigns as aliases within this module scope: both sides of
        # ``assign a = b`` refer to the same value, so give them one key.
        alias: dict[str, str] = {}
        for a in module.assigns:
            alias[a.target] = a.source

        def resolve(local_net: str) -> str:
            seen = set()
            while local_net in alias and local_net not in seen:
                seen.add(local_net)
                local_net = alias[local_net]
            return key_for(local_net)

        for inst in module.instances.values():
            if not design.has_module(inst.module_name):
                continue  # primitives stay inside their basic module
            child_path = f"{path}/{inst.name}" if path else inst.name
            child = design.require_module(inst.module_name)
            child_map = {}
            for port_name, net_name in inst.connections.items():
                if port_name in child.ports:
                    child_map[port_name] = resolve(net_name)
            if is_basic_module(design, inst.module_name):
                results.append(
                    BasicInstance(
                        path=child_path,
                        module_name=inst.module_name,
                        inputs={
                            p.name: child_map.get(p.name, f"{child_path}.{p.name}")
                            for p in child.input_ports()
                        },
                        outputs={
                            p.name: child_map.get(p.name, f"{child_path}.{p.name}")
                            for p in child.output_ports()
                        },
                    )
                )
            else:
                lift(inst.module_name, child_path, child_map)

    top_module = design.require_module(root)
    root_map = {p.name: p.name for p in top_module.ports.values()}
    lift(root, "", root_map)
    return results


# ---------------------------------------------------------------------------
# Resource estimation
# ---------------------------------------------------------------------------


def module_self_resources(module: Module) -> ResourceVector:
    """Resources of a module's *own* primitives and declared overrides.

    A module may declare ``attributes["resources"]`` (a
    :class:`ResourceVector` or dict) to override estimation — used for
    macro-ish modules whose synthesized cost is known.  Otherwise the cost is
    the sum of its primitive instances' costs.
    """
    declared = module.attributes.get("resources")
    if declared is not None:
        if isinstance(declared, ResourceVector):
            return declared
        return ResourceVector.from_dict(declared)
    acc = ResourceVector.zero()
    for inst in module.instances.values():
        cell = primitives.lookup(inst.module_name)
        if cell is not None:
            acc = acc + cell.cost
    return acc


def instance_resources(design: Design, module_name: str, _memo: dict | None = None) -> ResourceVector:
    """Total resources of one instance of ``module_name`` (recursive)."""
    memo = _memo if _memo is not None else {}
    if module_name in memo:
        return memo[module_name]
    if not design.has_module(module_name):
        return primitives.cell_cost(module_name)
    module = design.require_module(module_name)
    acc = module_self_resources(module)
    if module.attributes.get("resources") is None:
        for inst in module.instances.values():
            if design.has_module(inst.module_name):
                acc = acc + instance_resources(design, inst.module_name, memo)
    memo[module_name] = acc
    return acc


def design_resources(design: Design, root: str | None = None) -> ResourceVector:
    """Total resources of the design rooted at ``root`` (default: top)."""
    return instance_resources(design, root or design.top)
