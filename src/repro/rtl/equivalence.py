"""Structural equivalence checking.

The decomposing tool identifies *data parallelism* by checking whether two
blocks compute the same function (paper Section 2.2.1, steps 2-3, citing
combinational equivalence checkers).  Full SAT-based equivalence checking is
out of scope for a structural IR; instead we use the standard synthesis-tool
compromise — *structural* equivalence:

1. a fast canonical signature based on Weisfeiler-Lehman-style iterative
   colour refinement over the module's connectivity graph, and
2. for modules below a size threshold, an exact ``networkx`` graph-isomorphism
   confirmation, so signature collisions cannot produce false positives on
   the module sizes the decomposer actually compares.

Two instances of the *same* module are trivially equivalent; the interesting
case is separately-defined modules with identical structure (e.g. generated
tile engines), which the signature catches.
"""

from __future__ import annotations

import hashlib

import networkx as nx

from .ir import Design, Module

#: Modules with at most this many instances get exact isomorphism
#: confirmation on top of the hash comparison.
EXACT_CHECK_MAX_INSTANCES = 200

#: Number of WL refinement rounds.  Graph diameter of real module bodies is
#: small; 4 rounds separates everything we generate while staying cheap.
REFINEMENT_ROUNDS = 4


def _interface_signature(module: Module) -> str:
    """Signature of a module's port interface (names abstracted away).

    Data-parallel replicas may use different port *names*; what must match is
    the multiset of (direction, width) pairs.
    """
    shape = sorted((p.direction.value, p.width) for p in module.ports.values())
    return repr(shape)


def _connection_graph(design: Design, module: Module) -> nx.Graph:
    """Bipartite instance/net graph of a module body.

    Instance nodes are labelled by their *referenced module's signature*
    (recursing for submodules, cell name for primitives), net nodes by width.
    Edges are labelled by the port direction so that producer/consumer
    orientation matters.
    """
    graph = nx.Graph()
    for net in module.nets.values():
        graph.add_node(("net", net.name), label=f"net:{net.width}")
    for inst in module.instances.values():
        if design.has_module(inst.module_name):
            label = "mod:" + structural_signature(design, inst.module_name)
        else:
            label = "cell:" + inst.module_name
        node = ("inst", inst.name)
        graph.add_node(node, label=label)
        ports = design.ports_of(inst.module_name)
        for port_name, net_name in inst.connections.items():
            port = ports.get(port_name)
            direction = port.direction.value if port is not None else "?"
            if ("net", net_name) in graph:
                graph.add_edge(node, ("net", net_name), direction=direction)
    # Port nets get their direction stamped into the label so that inputs
    # and outputs of the module refine differently.
    for port in module.ports.values():
        node = ("net", port.name)
        if node in graph:
            graph.nodes[node]["label"] += f":{port.direction.value}"
    return graph


def _wl_hash(graph: nx.Graph) -> str:
    """Canonical hash of a labelled graph via WL colour refinement."""
    colours = {node: graph.nodes[node].get("label", "") for node in graph.nodes}
    for _ in range(REFINEMENT_ROUNDS):
        new_colours = {}
        for node in graph.nodes:
            neighbourhood = sorted(
                (graph.edges[node, nbr].get("direction", ""), colours[nbr])
                for nbr in graph.neighbors(node)
            )
            blob = colours[node] + "|" + repr(neighbourhood)
            new_colours[node] = hashlib.sha256(blob.encode()).hexdigest()[:16]
        colours = new_colours
    histogram = sorted(colours.values())
    return hashlib.sha256(repr(histogram).encode()).hexdigest()[:24]


# Signatures are cached per (design serial, module name).  The serial is
# Design.uid — process-unique, unlike id(), which CPython recycles and
# which let a freshly allocated design inherit a dead design's cached
# signatures (a rare, allocation-order-dependent corruption).  Designs are
# treated as immutable once decomposition starts; mutating a design after
# hashing it is a usage error.
_signature_cache: dict = {}


def structural_signature(design: Design, module_name: str) -> str:
    """Canonical structural signature of a module (or primitive cell).

    Equal signatures => structurally equivalent with overwhelming likelihood;
    use :func:`modules_equivalent` when exactness matters.
    """
    if not design.has_module(module_name):
        return "cell:" + module_name
    cache_key = (design.uid, module_name)
    cached = _signature_cache.get(cache_key)
    if cached is not None:
        return cached
    module = design.require_module(module_name)
    body = _wl_hash(_connection_graph(design, module))
    attrs = module.attributes.get("equiv_class", "")
    signature = hashlib.sha256(
        f"{_interface_signature(module)}|{body}|{attrs}".encode()
    ).hexdigest()[:24]
    _signature_cache[cache_key] = signature
    return signature


def clear_signature_cache() -> None:
    """Drop memoised signatures (tests mutate designs between checks)."""
    _signature_cache.clear()


def _node_match(a: dict, b: dict) -> bool:
    return a.get("label") == b.get("label")


def _edge_match(a: dict, b: dict) -> bool:
    return a.get("direction") == b.get("direction")


def modules_equivalent(design: Design, name_a: str, name_b: str) -> bool:
    """Decide structural equivalence of two modules.

    Fast path: identical names, then signature comparison.  For small
    modules a full isomorphism check confirms the signature verdict.
    """
    if name_a == name_b:
        return True
    primitive_a = not design.has_module(name_a)
    primitive_b = not design.has_module(name_b)
    if primitive_a or primitive_b:
        return name_a == name_b
    if structural_signature(design, name_a) != structural_signature(design, name_b):
        return False
    module_a = design.require_module(name_a)
    module_b = design.require_module(name_b)
    if (
        len(module_a.instances) > EXACT_CHECK_MAX_INSTANCES
        or len(module_b.instances) > EXACT_CHECK_MAX_INSTANCES
    ):
        return True  # trust the signature for very large bodies
    graph_a = _connection_graph(design, module_a)
    graph_b = _connection_graph(design, module_b)
    matcher = nx.algorithms.isomorphism.GraphMatcher(
        graph_a, graph_b, node_match=_node_match, edge_match=_edge_match
    )
    return matcher.is_isomorphic()
