"""Design flattening: elaborate a hierarchy down to primitive cells.

Supports the decomposer's step-1 fallback (paper Section 2.2.1): "if the
input RTL design contains large basic modules, the primitives in these
modules (e.g., logic gates and flip-flops) will be extracted and each of
them will be assigned to one soft block."  Flattening also serves external
netlist-level interchange and tests.

The flattened design has a single module whose instances are primitive
cells with hierarchical names (``lane0/sa/mac0``); internal nets of nested
modules get hierarchical names too, and connections through module ports
are resolved transitively (including ``assign`` aliases).
"""

from __future__ import annotations

from ..errors import RTLValidationError
from . import primitives
from .ir import Design, Module


def flatten_to_primitives(design: Design, root: str | None = None) -> Design:
    """Return a new single-module design containing only primitive cells.

    Port directions and widths of the root module are preserved; every
    primitive instance keeps its hierarchical path as its name.
    """
    root = root or design.top
    root_module = design.require_module(root)

    flat = Design(f"{design.name}.flat")
    out = Module(root)
    for port in root_module.ports.values():
        out.add_port(port.name, port.direction, port.width)
    flat.add_module(out)
    flat.top = root

    def ensure_net(name: str, width: int) -> str:
        if name not in out.nets:
            out.add_net(name, width)
        elif out.nets[name].width != width:
            raise RTLValidationError(
                f"flatten: net {name!r} used at widths "
                f"{out.nets[name].width} and {width}"
            )
        return name

    def walk(module_name: str, path: str, net_map: dict) -> None:
        module = design.require_module(module_name)

        alias = {a.target: a.source for a in module.assigns}

        def resolve(local_net: str) -> tuple:
            seen = set()
            while local_net in alias and local_net not in seen:
                seen.add(local_net)
                local_net = alias[local_net]
            if local_net in net_map:
                return net_map[local_net]
            width = module.nets[local_net].width if local_net in module.nets else 1
            global_name = f"{path}/{local_net}" if path else local_net
            return (global_name, width)

        for inst in module.instances.values():
            child_path = f"{path}/{inst.name}" if path else inst.name
            if primitives.is_primitive(inst.module_name):
                connections = {}
                cell = primitives.lookup(inst.module_name)
                for port_name, net_name in inst.connections.items():
                    global_name, width = resolve(net_name)
                    port = cell.ports.get(port_name)
                    if port is not None:
                        width = port.width if net_name not in module.nets else max(
                            width, 1
                        )
                    connections[port_name] = ensure_net(
                        global_name,
                        module.nets[net_name].width
                        if net_name in module.nets
                        else (port.width if port else 1),
                    )
                out.add_instance(child_path, inst.module_name, connections)
                continue
            child = design.require_module(inst.module_name)
            child_map = {}
            for port_name, net_name in inst.connections.items():
                if port_name in child.ports:
                    child_map[port_name] = resolve(net_name)
            walk(inst.module_name, child_path, child_map)

    root_map = {
        port.name: (port.name, port.width)
        for port in root_module.ports.values()
    }
    for port in root_module.ports.values():
        ensure_net(port.name, port.width)
    walk(root, "", root_map)
    return flat


def primitive_census(design: Design, root: str | None = None) -> dict:
    """Count primitive cells by type under ``root`` (after flattening)."""
    flat = flatten_to_primitives(design, root)
    census: dict[str, int] = {}
    for inst in flat.top_module.instances.values():
        census[inst.module_name] = census.get(inst.module_name, 0) + 1
    return census
