"""Structural RTL intermediate representation.

This subpackage is the substrate the decomposing tool (Section 2.2.1 of the
paper) operates on.  The paper decomposes accelerators "at the intermediate
RTL level" because RTL is FPGA-independent; we model RTL as a structural
module graph:

* :class:`~repro.rtl.ir.Design` — a set of named modules plus a top.
* :class:`~repro.rtl.ir.Module` — ports, nets, child instances, assigns.
* :class:`~repro.rtl.ir.Instance` — a named instantiation of another module
  (or of a primitive cell) with port-to-net connections.

A *basic module* — the unit the paper assigns to one leaf soft block — is a
module that instantiates no other (non-primitive) modules; see
:func:`~repro.rtl.hierarchy.is_basic_module`.

Supporting tools: a fluent :class:`~repro.rtl.builder.ModuleBuilder`, a
structural-Verilog parser/emitter pair for round-tripping designs to text,
a primitive cell library with resource costs, structural equivalence
checking (used to detect data parallelism), and design validation.
"""

from .ir import Design, Direction, Instance, Module, Net, Port
from .builder import DesignBuilder, ModuleBuilder
from .hierarchy import (
    basic_module_instances,
    design_resources,
    instance_resources,
    is_basic_module,
    iter_hierarchy,
)
from .equivalence import modules_equivalent, structural_signature
from .flatten import flatten_to_primitives, primitive_census
from .parser import parse_design
from .emitter import emit_design, emit_module
from .validate import validate_design

__all__ = [
    "Design",
    "DesignBuilder",
    "Direction",
    "Instance",
    "Module",
    "ModuleBuilder",
    "Net",
    "Port",
    "basic_module_instances",
    "design_resources",
    "emit_design",
    "flatten_to_primitives",
    "primitive_census",
    "emit_module",
    "instance_resources",
    "is_basic_module",
    "iter_hierarchy",
    "modules_equivalent",
    "parse_design",
    "structural_signature",
    "validate_design",
]
