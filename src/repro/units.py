"""Unit helpers used throughout the library.

The paper mixes several unit systems (Mb of BRAM, MHz clock frequencies,
microsecond network latencies, millisecond inference latencies).  To avoid
unit bugs, the library stores everything internally in *base* units:

* time        -> seconds
* frequency   -> hertz
* memory      -> bits
* bandwidth   -> bits per second

and exposes tiny constructor/formatter helpers so call sites read naturally
(``us(0.6)``, ``mhz(400)``, ``mbit(51.5)``).
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NS = 1e-9
US = 1e-6
MS = 1e-3


def ns(value: float) -> float:
    """Nanoseconds to seconds."""
    return value * NS


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * US


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * MS


def to_us(seconds: float) -> float:
    """Seconds to microseconds."""
    return seconds / US


def to_ms(seconds: float) -> float:
    """Seconds to milliseconds."""
    return seconds / MS


# --- frequency ---------------------------------------------------------------

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9


def mhz(value: float) -> float:
    """Megahertz to hertz."""
    return value * MHZ


def to_mhz(hertz: float) -> float:
    """Hertz to megahertz."""
    return hertz / MHZ


# --- memory ------------------------------------------------------------------

KBIT = 1 << 10
MBIT = 1 << 20


def kbit(value: float) -> float:
    """Kilobits (1024-based) to bits."""
    return value * KBIT


def mbit(value: float) -> float:
    """Megabits (1024-based) to bits."""
    return value * MBIT


def to_mbit(bits: float) -> float:
    """Bits to megabits."""
    return bits / MBIT


# --- bandwidth ---------------------------------------------------------------

GBPS = 1e9


def gbps(value: float) -> float:
    """Gigabits per second to bits per second."""
    return value * GBPS


# --- compute -----------------------------------------------------------------

TFLOPS = 1e12


def tflops(value: float) -> float:
    """TeraFLOP/s to FLOP/s."""
    return value * TFLOPS


def to_tflops(flops: float) -> float:
    """FLOP/s to TeraFLOP/s."""
    return flops / TFLOPS


# --- formatting --------------------------------------------------------------


def fmt_time(seconds: float) -> str:
    """Render a duration with a sensible unit, e.g. ``'0.136 ms'``."""
    if seconds == 0:
        return "0 s"
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.3g} s"
    if magnitude >= MS:
        return f"{seconds / MS:.3g} ms"
    if magnitude >= US:
        return f"{seconds / US:.3g} us"
    return f"{seconds / NS:.3g} ns"


def fmt_bits(bits: float) -> str:
    """Render a memory size, e.g. ``'51.5 Mb'``."""
    if abs(bits) >= MBIT:
        return f"{bits / MBIT:.3g} Mb"
    if abs(bits) >= KBIT:
        return f"{bits / KBIT:.3g} Kb"
    return f"{bits:.0f} b"
