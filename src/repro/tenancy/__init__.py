"""Multi-tenant fairness: quotas, weighted fair-share, priority preemption."""

from .policy import TenancyParameters, TenantParameters
from .scheduler import TenancyStats, TenantScheduler, TenantState

__all__ = [
    "TenancyParameters",
    "TenantParameters",
    "TenancyStats",
    "TenantScheduler",
    "TenantState",
]
