"""Tenant identities and tenancy policy knobs.

A :class:`TenantParameters` names one tenant and fixes its contract with
the cluster: a *priority class* (strict — a higher class is always served
first), a *weight* (fair-share ratio within one class), resource quotas
(virtual blocks and replica units concurrently resident), an admission
bound on queued work, and whether the tenant's deployments may be
victimised by priority preemption.

:class:`TenancyParameters` configures the scheduler itself — preemption
on/off, the drain charged before a victim's checkpoint, victim bounds and
the sweep cooldown that keeps a starved premium tenant from levelling the
whole cluster in one pass.

Both are frozen dataclasses validated at construction, mirroring
:class:`~repro.autoscale.policy.AutoscaleParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..units import ms, us


@dataclass(frozen=True)
class TenantParameters:
    """One tenant's identity, guarantees and limits."""

    #: Tenant name; ``""`` is reserved for untenanted (legacy) traffic.
    name: str
    #: Strict priority class — dispatch always prefers a higher class, and
    #: preemption may only take blocks *down* the priority order.
    priority: int = 0
    #: Fair-share weight among tenants of the same priority class (start-
    #: time fair queueing: a tenant at weight 2 accrues virtual time half
    #: as fast, so it receives twice the share under contention).
    weight: float = 1.0
    #: Maximum virtual blocks concurrently resident across the tenant's
    #: deployments (``None`` = unlimited).  Enforced at the allocation
    #: point, so it can never be exceeded, only declined.
    block_quota: int | None = None
    #: Maximum replica units concurrently resident (``None`` = unlimited).
    replica_quota: int | None = None
    #: Maximum tasks queued at once; arrivals beyond it are shed at
    #: admission (``None`` = unlimited).
    queue_quota: int | None = None
    #: Whether a higher-priority tenant may reclaim this tenant's blocks
    #: via checkpoint + requeue.
    preemptible: bool = True

    def __post_init__(self):
        if not isinstance(self.name, str):
            raise ReproError("tenant name must be a string")
        if self.name != self.name.strip() or "\n" in self.name:
            raise ReproError(f"malformed tenant name {self.name!r}")
        if self.weight <= 0:
            raise ReproError("tenant weight must be positive")
        if self.block_quota is not None and self.block_quota < 1:
            raise ReproError("block_quota must be >= 1 (or None)")
        if self.replica_quota is not None and self.replica_quota < 1:
            raise ReproError("replica_quota must be >= 1 (or None)")
        if self.queue_quota is not None and self.queue_quota < 1:
            raise ReproError("queue_quota must be >= 1 (or None)")


@dataclass(frozen=True)
class TenancyParameters:
    """Policy knobs for the tenancy scheduler."""

    #: Whether a starved higher-priority tenant may checkpoint + requeue
    #: lower-priority deployments to reclaim their blocks.
    preemption_enabled: bool = True
    #: Drain charged per preempted deployment before its checkpoint is
    #: taken (run to an instruction boundary, flush queues) — the same
    #: cost the migration engine charges before a live move.
    drain_s: float = us(50.0)
    #: Most deployments one preemption sweep may victimise.
    max_victims: int = 4
    #: Minimum spacing between preemption sweeps; within the window a
    #: starved task simply waits for the in-flight teardowns to land.
    cooldown_s: float = ms(1.0)
    #: When True the controller only reuses idle deployments owned by the
    #: requesting tenant, so block attribution (and therefore quota
    #: enforcement) is exact.  Off restores cross-tenant reuse.
    isolation: bool = True

    def __post_init__(self):
        if self.drain_s < 0:
            raise ReproError("drain_s must be >= 0")
        if self.max_victims < 1:
            raise ReproError("max_victims must be >= 1")
        if self.cooldown_s < 0:
            raise ReproError("cooldown_s must be >= 0")
