"""Weighted fair-share + strict-priority scheduling with preemption.

:class:`TenantScheduler` is a :class:`~repro.cluster.simulator.Scheduler`
layered over an inner scheduler — a bare
:class:`~repro.runtime.systems.ProposedSystem` or a
:class:`~repro.serving.frontend.ServingFrontend` (which keeps admission
control, deadlines, retries and breakers; the tenancy layer wraps it the
way the frontend wraps the system).  It adds:

* **tenant identities** — every task carries ``task.tenant``; per-tenant
  state tracks pending/running work, fair-share virtual time and outcome
  counters;
* **quotas** — block/replica ceilings enforced *at the allocation point*
  via the controller's ``placement_guard``, so a tenant can be declined
  but never overshoot (zero-violation by construction), with instantaneous
  usage read off the :class:`~repro.autoscale.accounting.ReplicaLedger`'s
  tenant axis; queue quotas shed at admission;
* **dispatch order** — the simulator's optional ``dispatch_key`` hook:
  strict priority classes first, start-time fair queueing within a class
  (each start advances the tenant's virtual time by ``service/weight``, so
  a weight-2 tenant receives twice the share of a weight-1 peer under
  contention);
* **preemption = checkpoint + requeue** — when a higher-priority tenant's
  task fails placement on *capacity* (not quota), lower-priority
  preemptible deployments on the best board are drained, checkpointed to
  host memory (the migration engine's state-size model over the host
  link — the same arithmetic as recovery restores) and discarded; a
  running victim task is aborted and requeued, and on its next start it is
  charged only the checkpoint-restore stream plus its *remaining* service,
  so the preempted tenant loses the round trip but not the work.

Everything is off by default at the system level: untenanted runs never
construct this class, ``task.tenant == ""`` everywhere, and the fig12
goldens are bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..autoscale.accounting import ReplicaLedger
from ..cluster.simulator import Task
from ..errors import ReproError
from ..perf.profiling import PROFILER
from ..runtime.deployment import Deployment, DeploymentState
from .policy import TenancyParameters, TenantParameters


@dataclass
class TenantState:
    """Mutable runtime state of one tenant."""

    params: TenantParameters
    #: Start-time fair-queueing virtual time; advanced by
    #: ``service / weight`` at every start, floor-normalised on activation
    #: so an idle tenant cannot hoard credit.
    vtime: float = 0.0
    pending: int = 0
    running: int = 0
    offered: int = 0
    shed: int = 0
    completed: int = 0
    #: Task runs of this tenant aborted by preemption.
    preempted: int = 0
    #: Preemption sweeps this tenant triggered as the starved party.
    preemptions_triggered: int = 0
    latencies_s: list = field(default_factory=list)

    @property
    def active(self) -> bool:
        return self.pending > 0 or self.running > 0


@dataclass
class TenancyStats:
    """Aggregate tenancy-layer counters."""

    preemption_sweeps: int = 0
    deployments_preempted: int = 0
    #: Abort events (a task preempted twice counts twice).
    tasks_preempted: int = 0
    #: Distinct tasks ever preempted (the recovery-rate denominator).
    preempted_distinct: int = 0
    #: Distinct preempted tasks that subsequently ran to completion.
    preempted_completed: int = 0
    quota_sheds: int = 0
    #: Total drain + checkpoint-stream time charged to teardowns.
    checkpoint_s: float = 0.0
    #: Total restore-stream time charged to preempted tasks' restarts.
    restore_s: float = 0.0


class TenantScheduler:
    """Multi-tenant fairness layer over one inner scheduler."""

    name = "tenancy"

    def __init__(
        self,
        inner,
        tenants,
        params: TenancyParameters | None = None,
    ):
        self.inner = inner
        #: The placement-owning system (the frontend exposes its wrapped
        #: system; a bare system is its own).
        self.system = getattr(inner, "system", inner)
        self.controller = self.system.controller
        self.params = params or TenancyParameters()
        self.stats = TenancyStats()
        self._tenants: dict[str, TenantState] = {}
        for tenant in tenants:
            if not isinstance(tenant, TenantParameters):
                raise ReproError(
                    f"tenants must be TenantParameters, got {tenant!r}"
                )
            if tenant.name in self._tenants:
                raise ReproError(f"duplicate tenant {tenant.name!r}")
            self._tenants[tenant.name] = TenantState(params=tenant)
        # Quota usage is read off the ledger's tenant axis; adopt the
        # controller's ledger when one is already attached (autoscale
        # composition shares it) and attach one otherwise.
        if self.controller.ledger is None:
            self.controller.ledger = ReplicaLedger()
        self.ledger = self.controller.ledger
        self.controller.tenant_isolation = self.params.isolation
        self._simulator = None
        #: task_id -> Task for running work (victim lookup needs the Task).
        self._running_tasks: dict[int, Task] = {}
        #: task_id -> absolute finish time of the current run.
        self._finish_at: dict[int, float] = {}
        #: task_id -> (remaining_service_s, restore_stream_s) credit for a
        #: preempted task's next start.
        self._resume_credit: dict[int, tuple] = {}
        #: task_ids ever preempted (recovery-rate accounting).
        self._preempted_ever: set[int] = set()
        #: model_key -> preemption teardowns in flight (their completion
        #: frees the blocks the starved model is waiting for).
        self._preempt_pending: dict[str, int] = {}
        #: Earliest time the next preemption sweep may run.
        self._preempt_gate_s = 0.0
        #: task_id -> why its last try_start declined (drives retry_hint).
        self._decline_reason: dict[int, str] = {}

    # -- tenant registry -----------------------------------------------------

    def _state(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            # Unknown (incl. untenanted "") tenants get neutral defaults:
            # lowest priority, weight 1, no quotas, never preempted.
            state = TenantState(
                params=TenantParameters(name=name, preemptible=False)
            )
            self._tenants[name] = state
        return state

    def tenant(self, name: str) -> TenantState:
        """One tenant's runtime state (benches and tests read it)."""
        return self._state(name)

    def tenant_report(self) -> dict:
        """Per-tenant outcome summary."""
        report = {}
        for name in sorted(self._tenants):
            state = self._tenants[name]
            latencies = sorted(state.latencies_s)
            report[name] = {
                "priority": state.params.priority,
                "weight": state.params.weight,
                "block_quota": state.params.block_quota,
                "replica_quota": state.params.replica_quota,
                "offered": state.offered,
                "shed": state.shed,
                "completed": state.completed,
                "preempted": state.preempted,
                "peak_open_blocks": self.ledger.peak_open_blocks.get(name, 0),
                "peak_open_replicas": (
                    self.ledger.peak_open_replicas.get(name, 0)
                ),
                "mean_latency_s": (
                    sum(latencies) / len(latencies) if latencies else 0.0
                ),
            }
        return report

    def quota_violations(self) -> dict:
        """Tenants whose *peak* resident usage ever exceeded a quota —
        empty by construction (the guard declines before the allocator),
        and the bench asserts exactly that."""
        violations = {}
        for name, state in self._tenants.items():
            quota = state.params.block_quota
            peak = self.ledger.peak_open_blocks.get(name, 0)
            if quota is not None and peak > quota:
                violations[name] = {"kind": "blocks", "peak": peak,
                                    "quota": quota}
            rquota = state.params.replica_quota
            rpeak = self.ledger.peak_open_replicas.get(name, 0)
            if rquota is not None and rpeak > rquota:
                violations[name] = {"kind": "replicas", "peak": rpeak,
                                    "quota": rquota}
        return violations

    # -- Scheduler protocol --------------------------------------------------

    def bind_simulator(self, simulator) -> None:
        self._simulator = simulator
        bind = getattr(self.inner, "bind_simulator", None)
        if bind is not None:
            bind(simulator)

    def dispatch_key(self, task: Task) -> tuple:
        """Strict priority classes, fair-share virtual time within one,
        arrival FIFO as the tiebreak."""
        state = self._state(task.tenant)
        return (-state.params.priority, state.vtime, task.arrival_s,
                task.task_id)

    def observe_queue(self, pending_by_model: dict) -> None:
        observe = getattr(self.inner, "observe_queue", None)
        if observe is not None:
            observe(pending_by_model)

    def has_pending_timers(self) -> bool:
        timers = getattr(self.inner, "has_pending_timers", None)
        return timers() if timers is not None else False

    def admit(self, task: Task, now: float) -> bool:
        state = self._state(task.tenant)
        state.offered += 1
        quota = state.params.queue_quota
        if quota is not None and state.pending >= quota:
            state.shed += 1
            self.stats.quota_sheds += 1
            PROFILER.incr("tenancy.queue_sheds")
            return False
        inner_admit = getattr(self.inner, "admit", None)
        if inner_admit is not None and not inner_admit(task, now):
            state.shed += 1
            return False
        if not state.active:
            # Activation floor: an idle tenant re-enters at the active
            # minimum, not at its stale (possibly tiny) virtual time —
            # otherwise a long-idle tenant would lock out its class.
            active = [
                s.vtime for s in self._tenants.values() if s.active
            ]
            if active:
                state.vtime = max(state.vtime, min(active))
        state.pending += 1
        return True

    def should_drop(self, task: Task, now: float) -> bool:
        drop = getattr(self.inner, "should_drop", None)
        if drop is not None and drop(task, now):
            self._state(task.tenant).pending -= 1
            return True
        return False

    def retry_hint(self, task: Task, now: float) -> float:
        reason = self._decline_reason.get(task.task_id)
        if reason in ("quota", "preempt"):
            # Quota: only a release/discard (a version bump) helps.
            # Preempt: the teardown's completion is an external event that
            # bumps the version itself.
            return math.inf
        hint = getattr(self.inner, "retry_hint", None)
        return hint(task, now) if hint is not None else now

    def try_start(self, task: Task, now: float) -> float | None:
        state = self._state(task.tenant)
        if self._preempt_pending.get(task.model_key, 0) > 0:
            # Blocks for this model are already being reclaimed; starting
            # another sweep before they land would over-evict.
            self._decline_reason[task.task_id] = "preempt"
            return None
        controller = self.controller
        guard = self._guard_for(state)
        failures_before = controller.stats.placement_failures
        quota_before = controller.stats.quota_rejections
        controller.placement_guard = guard
        try:
            service = self.inner.try_start(task, now)
        finally:
            controller.placement_guard = None
        if service is None:
            if controller.stats.placement_failures > failures_before:
                reason = "capacity"
                if self._maybe_preempt(task, state, now):
                    reason = "preempt"
            elif controller.stats.quota_rejections > quota_before:
                reason = "quota"
            else:
                reason = "inner"
            self._decline_reason[task.task_id] = reason
            return None
        self._decline_reason.pop(task.task_id, None)
        state.pending -= 1
        state.running += 1
        credit = self._resume_credit.pop(task.task_id, None)
        if credit is not None:
            # Checkpointed restart: pay whatever placement overhead the
            # inner start actually charged (reconfig + weight load for a
            # fresh deployment), the checkpoint's restore stream, and only
            # the service the preempted run had left.
            remaining, restore = credit
            deployment = self.system.running_deployment(task.task_id)
            overhead = (
                max(0.0, service - deployment.service_s)
                if deployment is not None
                else 0.0
            )
            service = overhead + restore + remaining
            self.stats.restore_s += restore
            PROFILER.incr("tenancy.preempted_restarts")
        state.vtime += service / state.params.weight
        self._running_tasks[task.task_id] = task
        self._finish_at[task.task_id] = now + service
        return service

    def on_finish(self, task: Task, now: float) -> None:
        state = self._state(task.tenant)
        state.running -= 1
        state.completed += 1
        state.latencies_s.append(now - task.arrival_s)
        self._running_tasks.pop(task.task_id, None)
        self._finish_at.pop(task.task_id, None)
        if task.task_id in self._preempted_ever:
            self.stats.preempted_completed += 1
        self.inner.on_finish(task, now)

    # -- quota guard ---------------------------------------------------------

    def _guard_for(self, state: TenantState):
        params = state.params
        if params.block_quota is None and params.replica_quota is None:
            return None
        ledger = self.ledger
        footprint = self.controller.plan_footprint

        def guard(plan, name=params.name, blocks=params.block_quota,
                  replicas=params.replica_quota):
            if blocks is not None and (
                ledger.open_blocks(name) + footprint(plan) > blocks
            ):
                return False
            if replicas is not None and (
                ledger.open_replicas(tenant=name) + plan.replicas > replicas
            ):
                return False
            return True

        return guard

    # -- preemption ----------------------------------------------------------

    def _maybe_preempt(self, task: Task, state: TenantState,
                       now: float) -> bool:
        """A capacity-starved task of a higher class: drain, checkpoint and
        discard enough lower-class preemptible deployments on one board per
        needed replica.  Returns whether a sweep started."""
        if not self.params.preemption_enabled:
            return False
        if now < self._preempt_gate_s:
            return False
        priority = state.params.priority
        controller = self.controller
        entry = controller.catalog.entry_by_key(task.model_key)
        plans = sorted(entry.sorted_plans(), key=controller.plan_footprint)
        guard = self._guard_for(state)
        for plan in plans:
            if guard is not None and not guard(plan):
                continue  # reclaiming blocks the tenant may not hold is moot
            victims = self._plan_victims(plan, priority)
            if victims is not None:
                self._execute_preemption(victims, task, state, now)
                return True
        return False

    def _victim_ok(self, deployment: Deployment, priority: int) -> bool:
        if deployment.state not in (DeploymentState.IDLE,
                                    DeploymentState.BUSY):
            return False
        if deployment.pending_recovery:
            return False
        owner = self._tenants.get(deployment.tenant)
        if owner is None:
            return False  # unknown/untenanted deployments are never victims
        return (
            owner.params.preemptible and owner.params.priority < priority
        )

    def _plan_victims(self, plan, priority: int) -> list | None:
        """Choose victims opening one hole per replica of ``plan``, or
        ``None``.  Per device type, boards are scanned in stable id order;
        on each board idle victims go first, then busy LRU, and a board
        qualifies when its free blocks plus its victims' blocks cover one
        replica image."""
        controller = self.controller
        for device_type in sorted(plan.feasible_types):
            image = plan.images[device_type]
            needed = image.virtual_blocks
            taken: set[str] = set()
            victims: list[Deployment] = []
            boards_found = 0
            for board in controller.index.boards_by_id(device_type):
                candidates = [
                    d
                    for d in controller.deployments_on(board.fpga_id)
                    if d.deployment_id not in taken
                    and self._victim_ok(d, priority)
                ]
                candidates.sort(
                    key=lambda d: (not d.is_idle, d.last_used_s)
                )
                free = board.free_blocks
                chosen: list[Deployment] = []
                for victim in candidates:
                    if free >= needed:
                        break
                    free += sum(
                        p.virtual_blocks
                        for p in victim.placements
                        if p.fpga_id == board.fpga_id
                    )
                    chosen.append(victim)
                if free < needed or not chosen:
                    continue  # board can't be opened (or is already open)
                if len(victims) + len(chosen) > self.params.max_victims:
                    continue
                victims.extend(chosen)
                taken.update(v.deployment_id for v in chosen)
                boards_found += 1
                if boards_found == plan.replicas:
                    return victims
        return None

    def _checkpoint_cost(self, deployment: Deployment) -> tuple:
        """(teardown_s, restore_stream_s): drain + architectural state out
        over the host link, and the same state streamed back at restart —
        the recovery manager's restore arithmetic, reused."""
        engine = self.controller.migration
        state_bytes = sum(
            engine.state_bytes(deployment, index)
            for index in range(len(deployment.placements))
        )
        link = self.controller.cluster.host_link
        stream = link.latency_s + state_bytes * 8.0 / link.bandwidth_bps
        return self.params.drain_s + stream, stream

    def _execute_preemption(self, victims: list, task: Task,
                            state: TenantState, now: float) -> None:
        controller = self.controller
        self.stats.preemption_sweeps += 1
        state.preemptions_triggered += 1
        PROFILER.incr("tenancy.preemption_sweeps")
        for victim in victims:
            teardown_s, restore_s = self._checkpoint_cost(victim)
            self.stats.checkpoint_s += teardown_s
            if victim.state is DeploymentState.BUSY:
                self._abort_victim_task(victim, restore_s, now)
            # Blocks stay held through the drain + checkpoint stream; the
            # MIGRATING state keeps the deployment unservable and
            # unevictable until the teardown lands.
            victim.state = DeploymentState.MIGRATING
            self.stats.deployments_preempted += 1
            controller.stats.deployments_preempted += 1
            PROFILER.incr("tenancy.deployments_preempted")
            model_key = task.model_key
            self._preempt_pending[model_key] = (
                self._preempt_pending.get(model_key, 0) + 1
            )

            def teardown(fire_now, victim=victim, model_key=model_key):
                controller.discard(victim)
                self._preempt_pending[model_key] -= 1

            if self._simulator is not None:
                self._simulator.schedule_external(teardown_s, teardown)
            else:
                teardown(now)
        self._preempt_gate_s = now + self.params.cooldown_s

    def _abort_victim_task(self, victim: Deployment, restore_s: float,
                           now: float) -> None:
        """Checkpoint + requeue the task running on a busy victim."""
        running_id = next(
            (
                task_id
                for task_id in self._running_tasks
                if self.system.running_deployment(task_id) is victim
            ),
            None,
        )
        if running_id is None:
            return  # raced: the finish landed in this very pass
        victim_task = self._running_tasks.pop(running_id)
        self.system.abort_task(victim_task)
        finish_at = self._finish_at.pop(running_id, now)
        remaining = max(0.0, finish_at - now)
        self._resume_credit[running_id] = (remaining, restore_s)
        if running_id not in self._preempted_ever:
            self._preempted_ever.add(running_id)
            self.stats.preempted_distinct += 1
        owner = self._state(victim_task.tenant)
        owner.running -= 1
        owner.pending += 1
        owner.preempted += 1
        self.stats.tasks_preempted += 1
        self.controller.stats.tasks_preempted += 1
        PROFILER.incr("tenancy.tasks_preempted")
        requeue = getattr(self.inner, "requeue", None)
        if requeue is not None:
            requeue(victim_task, now)
        if self._simulator is not None:
            self._simulator.abort_running(victim_task)
