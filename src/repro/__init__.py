"""repro — a multi-layer virtualization framework for heterogeneous cloud
FPGAs.

A faithful, simulation-backed reproduction of Zha & Li, *"When
Application-Specific ISA Meets FPGAs"* (ASPLOS 2021).  The package layers:

* :mod:`repro.rtl`      — structural RTL IR (the decomposition substrate)
* :mod:`repro.isa`      — the BrainWave-like application-specific ISA
* :mod:`repro.accel`    — the parameterised accelerator: generator,
  functional simulator, cycle-level timing model
* :mod:`repro.core`     — **the paper's contribution**: the soft-block
  system abstraction, decomposing and partitioning tools
* :mod:`repro.vital`    — the ViTAL-like hardware-specific abstraction
* :mod:`repro.cluster`  — the heterogeneous FPGA cluster simulator
* :mod:`repro.runtime`  — the runtime management system
* :mod:`repro.perf`     — latency/overlap/throughput models
* :mod:`repro.workloads`— DeepBench models and Table-1 synthetic mixes
* :mod:`repro.experiments` — drivers for every table and figure

Quickstart::

    from repro import accel, core

    design = accel.generate_accelerator(accel.BW_V37)
    decomposed = core.decompose(design, accel.CONTROL_MODULES)
    tree = core.partition(decomposed, iterations=2)
    print(core.render_tree(decomposed.data_root, max_depth=2))
"""

from . import (
    accel,
    cluster,
    core,
    errors,
    isa,
    perf,
    resources,
    rtl,
    runtime,
    units,
    vital,
    workloads,
)
from .errors import ReproError
from .resources import ResourceVector

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ResourceVector",
    "__version__",
    "accel",
    "cluster",
    "core",
    "errors",
    "isa",
    "perf",
    "resources",
    "rtl",
    "runtime",
    "units",
    "vital",
    "workloads",
]
