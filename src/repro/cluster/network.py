"""Inter-FPGA ring network timing model.

The cluster's FPGAs are connected by a "secondary bidirectional ring
network" (Section 4.2).  Section 4.3's Fig. 11 experiment inserts a
programmable counter+FIFO module to *add* latency to this network; the
``added_latency_s`` argument reproduces that knob.

The model:

* per-hop store-and-forward latency (serialisation + router),
* shared link bandwidth,
* an all-to-all *exchange* primitive matching the scale-out pattern: each of
  ``k`` replicas broadcasts its hidden-state slice to the others, and no
  replica proceeds until it holds the full vector (the barrier the sync
  module implements).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..units import gbps, us


@dataclass(frozen=True)
class NetworkParameters:
    """Ring link characteristics.

    Defaults model the serial transceiver links of the custom cluster:
    ~25.6 Gb/s usable per direction after protocol overhead, ~0.1 us of
    fixed per-hop latency (SerDes + elastic buffering at each end).
    """

    hop_latency_s: float = us(0.1)
    bandwidth_bps: float = gbps(25.6)
    bytes_per_element: int = 2  # float16 on the wire
    #: Store-and-forward stages on the exchange path: the synchronisation
    #: template module (Fig. 8b) buffers each slice through its FIFO at the
    #: sender and again at the receiver before the combining read can
    #: complete, so a slice pays serialisation twice.
    store_forward_stages: int = 2


class RingNetwork:
    """A bidirectional ring over named nodes."""

    def __init__(self, node_ids: list, params: NetworkParameters | None = None):
        if len(node_ids) < 2:
            raise SimulationError("a ring needs at least two nodes")
        self.node_ids = list(node_ids)
        self.params = params or NetworkParameters()
        self._position = {node: i for i, node in enumerate(self.node_ids)}

    def hops(self, src: str, dst: str) -> int:
        """Minimal hop count between two nodes (bidirectional ring)."""
        try:
            a, b = self._position[src], self._position[dst]
        except KeyError as missing:
            raise SimulationError(f"unknown ring node {missing}") from None
        distance = abs(a - b)
        return min(distance, len(self.node_ids) - distance)

    def transfer_time(
        self, src: str, dst: str, data_bytes: float, added_latency_s: float = 0.0
    ) -> float:
        """One point-to-point transfer.

        The zero-hop case (``src == dst``) models intra-board state
        movement — a migration drain that lands back on the same board, a
        loopback through the sync module: the data still streams through
        one FIFO, so it is charged exactly one serialisation pass, but no
        per-hop link latency and no Fig. 11 added latency (the counter
        module sits on the ring links, which the transfer never enters).
        """
        hops = self.hops(src, dst)
        serialisation = 8.0 * data_bytes / self.params.bandwidth_bps
        if hops == 0:
            return serialisation
        return hops * (self.params.hop_latency_s + serialisation) + added_latency_s

    def exchange_time(
        self,
        members: list,
        slice_elements: int,
        added_latency_s: float = 0.0,
    ) -> float:
        """All-to-all slice exchange among ``members`` (the h_t barrier).

        Each member broadcasts its slice; a member is ready when the last
        slice arrives.  With full-duplex links the broadcasts proceed in
        parallel, so the critical path is the farthest pair: max hop count
        times (hop latency + serialisation of one slice), plus any latency
        the Fig. 11 knob added per direction.
        """
        if len(members) < 2:
            return 0.0
        slice_bytes = slice_elements * self.params.bytes_per_element
        serialisation = 8.0 * slice_bytes / self.params.bandwidth_bps
        worst_hops = max(
            self.hops(a, b) for a in members for b in members if a != b
        )
        return (
            worst_hops * self.params.hop_latency_s
            + self.params.store_forward_stages * serialisation
            + max(0, worst_hops - 1) * serialisation
            + added_latency_s
        )

    def diameter(self) -> int:
        """Largest minimal hop count in the ring."""
        return len(self.node_ids) // 2
