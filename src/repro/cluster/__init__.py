"""The FPGA cluster substrate.

Models the paper's custom-built evaluation platform (Section 4.2): four
FPGAs (3x XCVU37P + 1x XCKU115) attached to a host over PCIe, connected to
each other by a secondary bidirectional ring network.  Includes:

* :mod:`~repro.cluster.events`    — a deterministic discrete-event queue.
* :mod:`~repro.cluster.network`   — the ring network timing model, with the
  programmable added-latency knob of Section 4.3 (Fig. 11).
* :mod:`~repro.cluster.topology`  — cluster construction (boards + ring).
* :mod:`~repro.cluster.simulator` — the discrete-event system simulator
  behind the Fig. 12 throughput evaluation.
"""

from .events import EventQueue
from .network import RingNetwork, NetworkParameters
from .topology import FPGACluster, paper_cluster, homogeneous_cluster, scaled_cluster
from .simulator import ClusterSimulator, Task, SimulationResult

__all__ = [
    "ClusterSimulator",
    "EventQueue",
    "FPGACluster",
    "NetworkParameters",
    "RingNetwork",
    "SimulationResult",
    "Task",
    "homogeneous_cluster",
    "paper_cluster",
    "scaled_cluster",
]
