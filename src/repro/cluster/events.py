"""A deterministic discrete-event queue.

Ties are broken by insertion order, so simulations are reproducible
independent of callback identity.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..errors import SimulationError


class EventQueue:
    """Min-heap of timed callbacks."""

    def __init__(self):
        self._heap: list = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.processed = 0

    def schedule(self, when: float, callback: Callable, *args) -> None:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self.now - 1e-15:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self.now}"
            )
        heapq.heappush(self._heap, (when, next(self._sequence), callback, args))

    def schedule_in(self, delay: float, callback: Callable, *args) -> None:
        """Schedule relative to the current time."""
        self.schedule(self.now + delay, callback, *args)

    @property
    def empty(self) -> bool:
        return not self._heap

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self._heap:
            return False
        when, _seq, callback, args = heapq.heappop(self._heap)
        self.now = when
        callback(*args)
        self.processed += 1
        return True

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Drain the queue (optionally up to time ``until``); returns the
        final simulation time."""
        for _ in range(max_events):
            if not self._heap:
                return self.now
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return self.now
            self.step()
        raise SimulationError(f"exceeded {max_events} events — runaway simulation?")
