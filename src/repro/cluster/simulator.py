"""Discrete-event cluster simulator.

Drives the Fig. 12 system evaluation: a stream of inference tasks arrives,
a *scheduler* (one of the three systems under comparison — proposed,
restricted-policy, AS-ISA baseline) places each task on the cluster, tasks
occupy resources for their service time, and aggregate throughput is
measured as completed tasks per second of makespan.

The simulator is system-agnostic: schedulers implement the small
:class:`Scheduler` protocol.  Pending tasks queue FIFO per model so results
are deterministic.

Dispatch is incremental: when a model's task fails to start, the simulator
records a *watermark* — the resource-state version it failed under plus the
scheduler's earliest time-gate hint (:meth:`Scheduler.retry_hint`) — and
skips every task of that model until resources change (an arrival, start or
finish bumps the version) or the clock reaches the hint.  A skipped attempt
is one the scheduler would provably have declined, so schedules (and
therefore experiment outputs) are identical to exhaustive re-scanning while
the number of placement attempts drops by orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..errors import SimulationError
from ..perf.profiling import PROFILER
from .events import EventQueue


@dataclass
class Task:
    """One inference task.

    ``model_key`` identifies the benchmark model (e.g. ``"gru-h1536-t375"``);
    the scheduler resolves it against its catalog.
    """

    task_id: int
    model_key: str
    arrival_s: float
    size_class: str = ""
    start_s: float = -1.0
    finish_s: float = -1.0
    #: Optional functional-execution input stream ``(timesteps, input_dim)``.
    #: Consumed by the request-coalescing executor
    #: (:mod:`repro.runtime.batching`); ``None`` means a deterministic
    #: per-task stream is generated on demand.  Ignored by pure-timing runs.
    payload: object = None
    #: Final hidden state once a batch executor has run this task.
    output: object = None
    #: Owning tenant (multi-tenancy layer); ``""`` means untenanted and
    #: preserves the single-tenant paths bit-identically.
    tenant: str = ""

    @property
    def latency_s(self) -> float:
        """Queueing + service latency (valid after completion)."""
        return self.finish_s - self.arrival_s

    @property
    def service_s(self) -> float:
        return self.finish_s - self.start_s


class Scheduler(Protocol):
    """What a system-under-test must implement."""

    def try_start(self, task: Task, now: float) -> float | None:
        """Attempt to start ``task``; returns its service time in seconds,
        or ``None`` when resources are currently unavailable."""

    def on_finish(self, task: Task, now: float) -> None:
        """Release whatever ``try_start`` reserved."""

    def has_fast_path(self, task: Task) -> bool:
        """Optional: True when ``task`` can start without reconfiguration
        (an idle deployment of its model is resident).  The simulator serves
        fast-path tasks first to preserve locality.  Must depend only on
        ``task.model_key`` and scheduler state — the dispatch loop caches
        the answer per model within one pass."""

    def retry_hint(self, task: Task, now: float) -> float:
        """Optional: after ``try_start`` declined ``task``, the earliest
        future time a retry could succeed *without* any resource release in
        between (``math.inf`` when only a release can help).  Hints must be
        conservative (never later than the true unblock time); the simulator
        uses them to skip provably fruitless attempts."""

    def admit(self, task: Task, now: float) -> bool:
        """Optional (serving layer): called once at arrival, before the
        task is queued.  Returning ``False`` sheds the task — it is recorded
        in :attr:`SimulationResult.dropped` and never dispatched."""

    def should_drop(self, task: Task, now: float) -> bool:
        """Optional (serving layer): called at dequeue, before placement is
        attempted.  Returning ``True`` drops the task (deadline expiry,
        exhausted retry budget) without it ever occupying a board."""

    def has_pending_timers(self) -> bool:
        """Optional (serving layer): ``True`` while any queued task holds a
        live time gate (deadline, retry backoff) that will eventually fire.
        Suppresses the idle-cluster deadlock detector, which otherwise has
        no way to tell a waiting queue from a wedged one."""

    def dispatch_key(self, task: Task) -> tuple:
        """Optional (tenancy layer): total dispatch order for one scan pass.
        When present it *replaces* the :meth:`has_fast_path` locality sort —
        the scheduler owns ordering entirely (priority classes, weighted
        fair shares).  Like ``has_fast_path``, the key must be stable while
        one pass's sort runs; state updated by starts feeds the next pass."""


@dataclass
class SimulationResult:
    """Aggregate outcome of one run."""

    system: str
    completed: list = field(default_factory=list)
    #: Tasks shed at admission or dropped at dequeue (serving layer only;
    #: empty for schedulers without admission control).
    dropped: list = field(default_factory=list)
    makespan_s: float = 0.0

    @property
    def throughput(self) -> float:
        """Completed tasks per second (the Fig. 12 metric)."""
        if self.makespan_s <= 0:
            return 0.0
        return len(self.completed) / self.makespan_s

    def mean_latency(self) -> float:
        if not self.completed:
            return 0.0
        return sum(t.latency_s for t in self.completed) / len(self.completed)

    def per_class_counts(self) -> dict:
        counts: dict[str, int] = {}
        for task in self.completed:
            counts[task.size_class] = counts.get(task.size_class, 0) + 1
        return counts


class ClusterSimulator:
    """Runs one task stream against one scheduler."""

    #: Re-dispatch interval while tasks wait on time-gated policies
    #: (eviction staleness windows).
    RETRY_INTERVAL_S = 0.005
    #: Consecutive fruitless retries with nothing running => deadlock.
    MAX_IDLE_RETRIES = 64

    #: Compact the pending list once this many tombstones accumulate (and
    #: they outnumber the live entries) — keeps removal O(1) amortized.
    COMPACT_THRESHOLD = 64

    def __init__(self, scheduler: Scheduler, system_name: str = "system"):
        self.scheduler = scheduler
        self.system_name = system_name
        self.queue = EventQueue()
        self._pending: list[Task] = []
        #: Task ids removed from the queue but not yet compacted out of
        #: ``_pending``.  ``list.remove`` is O(n) per call, which turns the
        #: dispatch loop quadratic at 100k-task backlogs; tombstoning keeps
        #: each removal O(1) while preserving FIFO-per-model scan order
        #: exactly (compaction only deletes, never reorders).
        self._pending_dead: set[int] = set()
        self._result = SimulationResult(system=system_name)
        self._dispatching = False
        self._running_count = 0
        self._retry_scheduled = False
        self._idle_retries = 0
        #: Monotonic version of cluster resource state; bumped whenever an
        #: arrival, start or finish could change a try_start outcome.
        self._resource_version = 0
        #: model key -> (version it failed under, earliest useful retry time).
        self._blocked: dict[str, tuple[int, float]] = {}
        #: Scheduler-driven events in flight (live migrations): they hold
        #: resources and will bump the version when they complete, so an
        #: idle queue is not a deadlock while any are outstanding.
        self._external_inflight = 0
        #: task_id -> run epoch.  A preemption (:meth:`abort_running`) bumps
        #: the epoch so the already-scheduled finish event for the aborted
        #: run is recognised as stale and ignored; the requeued task's next
        #: start schedules a finish carrying the new epoch.
        self._run_epoch: dict[int, int] = {}
        bind = getattr(scheduler, "bind_simulator", None)
        if bind is not None:
            bind(self)

    # -- pending-queue bookkeeping ------------------------------------------------

    def _remove_pending(self, task: Task) -> None:
        """Tombstone one queued task (O(1) amortized; order preserved)."""
        self._pending_dead.add(task.task_id)
        dead = len(self._pending_dead)
        if dead >= self.COMPACT_THRESHOLD and dead * 2 > len(self._pending):
            self._pending = [
                t for t in self._pending if t.task_id not in self._pending_dead
            ]
            self._pending_dead.clear()

    def _pending_tasks(self) -> list:
        """Live queued tasks in arrival-scan order (tombstones elided)."""
        if not self._pending_dead:
            return list(self._pending)
        return [t for t in self._pending if t.task_id not in self._pending_dead]

    @property
    def pending_count(self) -> int:
        return len(self._pending) - len(self._pending_dead)

    # -- scheduler-driven events (live migrations) -------------------------------

    def schedule_external(self, delay_s: float, callback) -> None:
        """Schedule a first-class non-task event ``callback(now)``.

        The migration engine uses this to hold source and destination
        blocks for the duration of a move: resources change at *begin*
        (immediately, in the scheduler's own call) and again at *finish*
        (this event), so migrations compete honestly with serving traffic.
        Completion invalidates every watermark and re-dispatches.
        """
        if delay_s < 0:
            raise SimulationError(f"negative external-event delay {delay_s}")
        self._external_inflight += 1
        self.queue.schedule_in(delay_s, self._external_fire, callback)

    def _external_fire(self, callback) -> None:
        self._external_inflight -= 1
        callback(self.queue.now)
        PROFILER.incr("simulator.external_events")
        self._resource_version += 1
        self._dispatch()

    # -- preemption (tenancy layer) ----------------------------------------------

    def abort_running(self, task: Task) -> None:
        """Abort a *running* task and requeue it (preemption).

        The task's already-scheduled finish event becomes stale (epoch
        guard) and the task re-enters the pending queue immediately —
        at its original scan position when its tombstone is still live,
        at the tail otherwise.  The caller (the tenancy scheduler) is
        responsible for the board-side teardown and for crediting any
        checkpointed progress on the next start.
        """
        if task.start_s < 0 or task.finish_s >= 0:
            raise SimulationError(
                f"abort_running: task {task.task_id} is not running"
            )
        self._run_epoch[task.task_id] = self._run_epoch.get(task.task_id, 0) + 1
        self._running_count -= 1
        task.start_s = -1.0
        if task.task_id in self._pending_dead:
            # Not yet compacted: resurrect the original queue entry so the
            # per-model FIFO scan order is preserved exactly.
            self._pending_dead.discard(task.task_id)
        else:
            self._pending.append(task)
        PROFILER.incr("simulator.aborted_runs")
        self._resource_version += 1
        self._dispatch()

    # -- event handlers ----------------------------------------------------------

    def _arrive(self, task: Task) -> None:
        admit = getattr(self.scheduler, "admit", None)
        if admit is not None and not admit(task, self.queue.now):
            # Shed at the door: never queued, never dispatched.  Admission
            # state (queue depths, token buckets) is the scheduler's.
            self._result.dropped.append(task)
            PROFILER.incr("simulator.admission_sheds")
            return
        self._pending.append(task)
        # A new arrival changes queue pressure, which admission/expansion
        # policies observe — previously blocked models must be re-attempted.
        self._resource_version += 1
        self._dispatch()

    def _dispatch(self) -> None:
        """Start every pending task the scheduler can place right now.

        Head-of-line blocking is intentional *per model class only*: we scan
        the whole queue so a small task can slip past a blocked large one
        (all three evaluated systems admit out-of-order placement), but
        tasks of the same model stay FIFO because the scan preserves order.

        Tasks whose model is below its watermark — failed at this resource
        version, clock still short of the scheduler's retry hint — are
        skipped without consulting the scheduler: within one version the
        scheduler's answer for that model cannot have changed, and same-model
        tasks later in the scan hold strictly weaker time gates.
        """
        if self._dispatching:
            return  # avoid re-entrant scans from nested on_finish calls
        self._dispatching = True
        fast_path = getattr(self.scheduler, "has_fast_path", None)
        dispatch_key = getattr(self.scheduler, "dispatch_key", None)
        observe = getattr(self.scheduler, "observe_queue", None)
        retry_hint = getattr(self.scheduler, "retry_hint", None)
        should_drop = getattr(self.scheduler, "should_drop", None)
        try:
            progress = True
            while progress:
                progress = False
                if observe is not None:
                    # Give the scheduler a view of queue pressure per model
                    # (admission/expansion decisions need it).
                    counts: dict = {}
                    for pending_task in self._pending:
                        if pending_task.task_id in self._pending_dead:
                            continue
                        counts[pending_task.model_key] = (
                            counts.get(pending_task.model_key, 0) + 1
                        )
                    observe(counts)
                scan = self._pending_tasks()
                if dispatch_key is not None:
                    # The tenancy layer owns dispatch order outright:
                    # priority classes first, weighted fair shares within
                    # one class.  Key purity over a pass mirrors the
                    # has_fast_path contract below.
                    scan.sort(key=dispatch_key)
                elif fast_path is not None:
                    # Locality pass: tasks whose model is already resident
                    # start first, so a cold task never evicts a hot model
                    # out from under its queued work.  The answer is a pure
                    # function of the model key and no state changes while
                    # the sort runs, so it is resolved once per model per
                    # pass — a deep backlog would otherwise pay a resident-
                    # deployment scan per queued task per pass.
                    fast_by_model: dict = {}
                    for pending_task in scan:
                        if pending_task.model_key not in fast_by_model:
                            fast_by_model[pending_task.model_key] = bool(
                                fast_path(pending_task)
                            )
                    scan.sort(
                        key=lambda t: (
                            not fast_by_model[t.model_key], t.arrival_s
                        )
                    )
                now = self.queue.now
                for task in scan:
                    if should_drop is not None and should_drop(task, now):
                        # Dropped at dequeue (deadline expiry, exhausted
                        # retry budget): the task never occupies a board.
                        # Checked before the watermark so an expiry is
                        # never delayed by a blocked model's time gate.
                        self._remove_pending(task)
                        self._result.dropped.append(task)
                        PROFILER.incr("simulator.dequeue_drops")
                        self._resource_version += 1
                        progress = True
                        self._idle_retries = 0
                        continue
                    watermark = self._blocked.get(task.model_key)
                    if (
                        watermark is not None
                        and watermark[0] == self._resource_version
                        and now < watermark[1]
                    ):
                        PROFILER.incr("simulator.watermark_skips")
                        continue
                    service = self.scheduler.try_start(task, now)
                    PROFILER.incr("simulator.try_start_attempts")
                    if service is None:
                        hint = (
                            retry_hint(task, now)
                            if retry_hint is not None
                            else now  # no hint: retry every pass (exhaustive)
                        )
                        self._blocked[task.model_key] = (
                            self._resource_version,
                            hint,
                        )
                        continue
                    if service < 0:
                        raise SimulationError(
                            f"scheduler returned negative service time {service}"
                        )
                    self._remove_pending(task)
                    task.start_s = now
                    self._running_count += 1
                    self._blocked.pop(task.model_key, None)
                    # Starting a task reshapes resources (allocation, possible
                    # evictions, queue depth): every watermark is stale.
                    self._resource_version += 1
                    self.queue.schedule_in(
                        service,
                        self._finish,
                        task,
                        self._run_epoch.get(task.task_id, 0),
                    )
                    progress = True
                    self._idle_retries = 0
        finally:
            self._dispatching = False
        if self.pending_count and not self._retry_scheduled:
            # Time-gated policies (eviction staleness) need the clock to
            # advance before a blocked task can be placed; poll.
            if self._running_count == 0 and self._external_inflight == 0:
                timers = getattr(self.scheduler, "has_pending_timers", None)
                waiting = timers is not None and timers()
                if not waiting:
                    self._idle_retries += 1
                    if self._idle_retries > self.MAX_IDLE_RETRIES:
                        left = self._pending_tasks()
                        stuck = sorted({t.model_key for t in left})
                        raise SimulationError(
                            f"{self.system_name}: {len(left)} tasks "
                            f"stuck with an idle cluster (models: {stuck})"
                        )
            self._retry_scheduled = True
            self.queue.schedule_in(self.RETRY_INTERVAL_S, self._retry)

    def _retry(self) -> None:
        self._retry_scheduled = False
        self._dispatch()

    def _finish(self, task: Task, epoch: int = 0) -> None:
        if self._run_epoch.get(task.task_id, 0) != epoch:
            # Stale completion of a preempted run: the task was aborted and
            # requeued after this event was scheduled.  Ignore it.  The
            # epoch entry is deliberately never popped — a still-in-flight
            # stale event would otherwise match the dict's default again.
            return
        task.finish_s = self.queue.now
        self._running_count -= 1
        self.scheduler.on_finish(task, self.queue.now)
        self._result.completed.append(task)
        self._resource_version += 1
        self._dispatch()

    # -- entry point -----------------------------------------------------------------

    def run(self, tasks: list) -> SimulationResult:
        """Simulate the full task stream to completion."""
        if not tasks:
            raise SimulationError("no tasks to simulate")
        for task in tasks:
            self.queue.schedule(task.arrival_s, self._arrive, task)
        self.queue.run()
        PROFILER.incr("simulator.events", self.queue.processed)
        if self.pending_count:
            left = self._pending_tasks()
            stuck = sorted({t.model_key for t in left})
            raise SimulationError(
                f"{self.system_name}: {len(left)} tasks never placed "
                f"(models: {stuck}) — scheduler cannot serve this workload"
            )
        self._result.makespan_s = self.queue.now - min(t.arrival_s for t in tasks)
        return self._result
