"""Cluster construction.

:func:`paper_cluster` reproduces the evaluation platform of Section 4.2:
three XCVU37P boards and one XCKU115, PCIe-attached to one host, joined by
a bidirectional ring.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..units import us, gbps
from ..vital.device import FPGAModel, XCKU115, XCVU37P
from ..vital.virtual_block import PhysicalFPGA
from .network import NetworkParameters, RingNetwork


@dataclass(frozen=True)
class HostLink:
    """PCIe attachment characteristics (task dispatch path)."""

    latency_s: float = us(2.0)
    bandwidth_bps: float = gbps(100.0)


class FPGACluster:
    """A heterogeneous pool of physical FPGAs plus the ring network."""

    def __init__(
        self,
        boards: list,
        network_params: NetworkParameters | None = None,
        host_link: HostLink | None = None,
        pod_size: int | None = None,
    ):
        if not boards:
            raise SimulationError("a cluster needs at least one board")
        if pod_size is not None and pod_size < 1:
            raise SimulationError(f"pod size must be positive, got {pod_size}")
        self.boards: dict[str, PhysicalFPGA] = {b.fpga_id: b for b in boards}
        if len(self.boards) != len(boards):
            raise SimulationError("duplicate FPGA ids in cluster")
        self.host_link = host_link or HostLink()
        #: Advisory control-plane shard size; the controller's pod router
        #: reads it when no explicit ``pod_size`` is configured there.
        self.pod_size = pod_size
        if len(boards) >= 2:
            self.network = RingNetwork(
                [b.fpga_id for b in boards], network_params
            )
        else:
            self.network = None

    # -- queries -------------------------------------------------------------

    def board(self, fpga_id: str) -> PhysicalFPGA:
        try:
            return self.boards[fpga_id]
        except KeyError:
            raise SimulationError(f"unknown FPGA {fpga_id!r}") from None

    def boards_of_type(self, device_type: str) -> list:
        """Boards of one device type, stable order."""
        return [
            board
            for board in self.boards.values()
            if board.model.name == device_type
        ]

    def device_types(self) -> list:
        """Distinct device types present, stable order."""
        seen: list[str] = []
        for board in self.boards.values():
            if board.model.name not in seen:
                seen.append(board.model.name)
        return seen

    def total_free_blocks(self) -> dict:
        """Free virtual blocks per device type."""
        free: dict[str, int] = {}
        for board in self.boards.values():
            free[board.model.name] = free.get(board.model.name, 0) + board.free_blocks
        return free

    def reset(self) -> None:
        """Release every virtual block (fresh simulation run)."""
        for board in self.boards.values():
            board.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = {}
        for board in self.boards.values():
            kinds[board.model.name] = kinds.get(board.model.name, 0) + 1
        return f"FPGACluster({kinds})"


def paper_cluster(network_params: NetworkParameters | None = None) -> FPGACluster:
    """The Section 4.2 evaluation platform: 3x XCVU37P + 1x XCKU115."""
    boards = [
        PhysicalFPGA("vu37p-0", XCVU37P),
        PhysicalFPGA("vu37p-1", XCVU37P),
        PhysicalFPGA("vu37p-2", XCVU37P),
        PhysicalFPGA("ku115-0", XCKU115),
    ]
    return FPGACluster(boards, network_params=network_params)


def homogeneous_cluster(
    model: FPGAModel, count: int, network_params: NetworkParameters | None = None
) -> FPGACluster:
    """A same-type cluster (used by ablations and tests)."""
    boards = [
        PhysicalFPGA(f"{model.name.lower()}-{i}", model) for i in range(count)
    ]
    return FPGACluster(boards, network_params=network_params)


def scaled_cluster(
    board_count: int,
    network_params: NetworkParameters | None = None,
    pod_size: int | None = None,
) -> FPGACluster:
    """A ``board_count``-board pool with the paper platform's 3:1
    VU37P:KU115 device mix, repeated along the ring (scale benches and
    1000-board chaos tests)."""
    if board_count < 1:
        raise SimulationError(
            f"cluster needs at least one board, got {board_count}"
        )
    boards = []
    vu = ku = 0
    for i in range(board_count):
        if i % 4 == 3:
            boards.append(PhysicalFPGA(f"ku115-{ku}", XCKU115))
            ku += 1
        else:
            boards.append(PhysicalFPGA(f"vu37p-{vu}", XCVU37P))
            vu += 1
    return FPGACluster(boards, network_params=network_params,
                       pod_size=pod_size)
