"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

* ``inventory``         — the system/substrate inventory.
* ``decompose``         — generate an instance and print its soft-block tree.
* ``partition``         — print the partition tree and frontiers.
* ``assemble``          — assemble an ISA source file to binary.
* ``disassemble``       — decode a binary back to assembly.
* ``table2 .. fig12``   — regenerate one table/figure.
* ``isolation``         — Section 4.4's sharing-isolation result.
* ``compile-overhead``  — Section 4.3's compile-cost accounting.
* ``inject-faults``     — seeded board-failure run with automatic recovery.
* ``serve``             — bursty stream through the overload-robust
  serving frontend (admission, deadlines, retries, breakers, brownout).
* ``tenancy``           — premium + best-effort tenant mix under overload
  (quotas, weighted fair share, priority preemption).
* ``cluster-status``    — per-board occupancy, free histograms, fragmentation.
* ``all``               — regenerate everything (what EXPERIMENTS.md records).
"""

from __future__ import annotations

import argparse
import sys

from . import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Multi-layer virtualization framework for heterogeneous cloud "
            "FPGAs (ASPLOS'21 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("inventory", help="package/system inventory")

    for name, needs_tiles in (("decompose", True), ("partition", True)):
        p = sub.add_parser(name, help=f"{name} an accelerator instance")
        p.add_argument("--tiles", type=int, default=8,
                       help="tile engines in the instance (default 8)")
        p.add_argument("--device", default="XCVU37P",
                       choices=["XCVU37P", "XCKU115"])
        if name == "partition":
            p.add_argument("--iterations", type=int, default=2)
        else:
            p.add_argument("--depth", type=int, default=3,
                           help="tree rendering depth")

    p = sub.add_parser("assemble", help="assemble ISA source to binary")
    p.add_argument("source", help="assembly source file")
    p.add_argument("output", help="binary output file")

    p = sub.add_parser("disassemble", help="decode an ISA binary")
    p.add_argument("binary", help="binary input file")

    for name in ("table2", "table3", "table4", "fig11", "fig12",
                 "compile-overhead", "isolation", "all"):
        p = sub.add_parser(name, help=f"regenerate {name}")
        if name in ("fig12", "all"):
            p.add_argument("--tasks", type=int, default=150)
            p.add_argument("--seeds", type=int, default=1,
                           help="seeds to average over")

    p = sub.add_parser(
        "inject-faults",
        help="run the serving stream under seeded board failures with "
        "automatic checkpoint-based recovery",
    )
    p.add_argument("--mtbf", type=float, default=1.0,
                   help="per-board mean time between failures, seconds "
                   "(default 1.0)")
    p.add_argument("--mttr", type=float, default=0.08,
                   help="mean time to repair, seconds (default 0.08)")
    p.add_argument("--seed", type=int, default=7,
                   help="fault-timeline seed (default 7)")
    p.add_argument("--tasks", type=int, default=120,
                   help="tasks in the serving stream (default 120)")
    p.add_argument("--degraded-fraction", type=float, default=0.0,
                   help="fraction of faults that drain instead of failing "
                   "hard (default 0)")

    p = sub.add_parser(
        "serve",
        help="run a bursty request stream through the overload-robust "
        "serving frontend (admission control, deadlines, retries, "
        "breakers, brownout)",
    )
    p.add_argument("--tasks", type=int, default=240,
                   help="requests in the stream (default 240)")
    p.add_argument("--load", type=float, default=2.0,
                   help="offered load as a multiple of the saturating "
                   "rate (default 2.0)")
    p.add_argument("--deadline", type=float, default=0.25,
                   help="per-request deadline, seconds after arrival "
                   "(default 0.25)")
    p.add_argument("--queue-depth", type=int, default=12,
                   help="per-model admission queue bound (default 12)")
    p.add_argument("--mtbf", type=float, default=0.0,
                   help="arm the fault injector at this per-board MTBF "
                   "in seconds (0 = fault-free, the default)")
    p.add_argument("--seed", type=int, default=7,
                   help="fault-timeline seed (default 7)")
    p.add_argument("--arrival", default="mmpp",
                   help="inter-arrival process shaping the stream "
                   "(poisson, uniform, mmpp, diurnal, pareto, lognormal)")
    p.add_argument("--autoscale", action="store_true",
                   help="arm the elastic replica autoscaler over the "
                   "frontend (repro.autoscale)")
    p.add_argument("--json", action="store_true",
                   help="emit the full metrics block (admission counters, "
                   "SLO attainment, drop counts) as JSON instead of prose")

    p = sub.add_parser(
        "tenancy",
        help="run a premium + best-effort tenant mix under 2x overload "
        "through the multi-tenant fairness layer (quotas, weighted fair "
        "share, priority preemption with checkpoint + requeue)",
    )
    p.add_argument("--tasks", type=int, default=160,
                   help="total tasks across both tenants (default 160)")
    p.add_argument("--trace", default="poisson",
                   help="inter-arrival process shaping both streams "
                   "(poisson, uniform, mmpp, diurnal, pareto, lognormal)")
    p.add_argument("--output", default=None,
                   help="also write the full BENCH_tenancy-style report "
                   "to this path")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON instead of prose")

    p = sub.add_parser(
        "cluster-status",
        help="per-board occupancy, per-type free histograms, fragmentation",
    )
    p.add_argument(
        "--deploy",
        action="append",
        default=[],
        metavar="MODEL_KEY",
        help="deploy this model before reporting (repeatable); infeasible "
        "placements are reported, not fatal",
    )
    return parser


def _instance(args):
    from .accel.config import BW_K115, BW_V37

    base = BW_V37 if args.device == "XCVU37P" else BW_K115
    return base.with_tiles(args.tiles, name=f"cli-{args.tiles}t")


def _cmd_inventory(_args, out) -> int:
    from .accel import BW_K115, BW_V37
    from .vital.device import DEVICE_TYPES

    print(f"repro {__version__}", file=out)
    print("\naccelerator instances:", file=out)
    for config in (BW_V37, BW_K115):
        print(
            f"  {config.name}: {config.tiles} tiles, "
            f"{config.peak_flops / 1e12:.1f} TFLOPS peak",
            file=out,
        )
    print("\ndevice types:", file=out)
    for device in DEVICE_TYPES.values():
        print(
            f"  {device.name}: {device.usable_blocks} virtual blocks, "
            f"{device.frequency_hz / 1e6:.0f} MHz",
            file=out,
        )
    print("\nexperiments: table2 table3 table4 fig11 fig12 "
          "compile-overhead isolation", file=out)
    return 0


def _cmd_decompose(args, out) -> int:
    from .accel import CONTROL_MODULES, generate_accelerator
    from .core import decompose, render_tree

    decomposed = decompose(
        generate_accelerator(_instance(args)), CONTROL_MODULES
    )
    print(render_tree(decomposed.data_root, max_depth=args.depth), file=out)
    print(
        f"\nroot pattern: {decomposed.root_pattern.value}; "
        f"scale-down applicable: {decomposed.supports_scale_down()}",
        file=out,
    )
    return 0


def _cmd_partition(args, out) -> int:
    from .accel import CONTROL_MODULES, generate_accelerator
    from .core import decompose, partition
    from .core.visualize import render_partition

    decomposed = decompose(
        generate_accelerator(_instance(args)), CONTROL_MODULES
    )
    tree = partition(decomposed, iterations=args.iterations)
    print(render_partition(tree), file=out)
    print(f"\nfrontier sizes: {[len(f) for f in tree.frontiers()]}", file=out)
    return 0


def _cmd_assemble(args, out) -> int:
    from pathlib import Path

    from .isa import assemble, encode_program

    source = Path(args.source).read_text()
    program = assemble(source, name=Path(args.source).stem)
    blob = encode_program(program)
    Path(args.output).write_bytes(blob)
    print(
        f"{len(program)} instructions -> {len(blob)} bytes "
        f"({args.output})",
        file=out,
    )
    return 0


def _cmd_disassemble(args, out) -> int:
    from pathlib import Path

    from .isa import decode_program, disassemble

    program = decode_program(
        Path(args.binary).read_bytes(), name=Path(args.binary).stem
    )
    print(disassemble(program), file=out)
    return 0


def _cmd_cluster_status(args, out) -> int:
    from .cluster import paper_cluster
    from .runtime import Catalog, build_system
    from .vital import VitalCompiler

    cluster = paper_cluster()
    system = build_system("proposed", cluster, Catalog(VitalCompiler()))
    controller = system.controller
    for key in args.deploy:
        try:
            controller.deploy(key)
        except Exception as error:  # infeasible request: report, keep going
            print(f"deploy {key}: {error}", file=out)

    model_of = {
        deployment.deployment_id: deployment.model_key
        for deployment in controller.deployments.values()
    }
    print("board occupancy:", file=out)
    for fpga_id in sorted(cluster.boards):
        board = cluster.boards[fpga_id]
        residents = sorted(
            model_of.get(owner, owner) for owner in board.owners()
        )
        resident_text = ", ".join(residents) if residents else "-"
        print(
            f"  {fpga_id:10s} {board.model.name:9s} "
            f"{board.used_blocks:2d}/{len(board.blocks):2d} blocks used  "
            f"[{resident_text}]",
            file=out,
        )

    print("\nfree-block histogram per device type:", file=out)
    for device_type in controller.index.device_types():
        free_counts = sorted(
            board.free_blocks
            for board in controller.index.boards_by_id(device_type)
        )
        total = sum(free_counts)
        print(
            f"  {device_type:9s} free={free_counts} (total {total})",
            file=out,
        )

    print("\nfragmentation (1 - largest hole / total free):", file=out)
    for device_type, value in sorted(controller.fragmentation().items()):
        print(f"  {device_type:9s} {value:.3f}", file=out)
    return 0


def _cmd_inject_faults(args, out) -> int:
    from .experiments.bench_faults import _build_tasks, run_point

    tasks = _build_tasks(args.tasks)
    point = run_point(
        tasks,
        mtbf_s=args.mtbf,
        mttr_s=args.mttr,
        seed=args.seed,
        degraded_fraction=args.degraded_fraction,
    )
    print(
        f"stream: {point['completed']} tasks completed in "
        f"{point['makespan_s'] * 1e3:.1f} ms simulated "
        f"({point['throughput_tasks_per_s']:.1f} tasks/s)",
        file=out,
    )
    print(
        f"faults: {point['boards_failed']} board failures, "
        f"{point['boards_repaired']} repairs "
        f"(mtbf {args.mtbf:g}s, mttr {args.mttr:g}s, seed {args.seed})",
        file=out,
    )
    print(
        f"recovery: {point['deployments_failed']} deployments lost, "
        f"{point['recoveries']} recovered "
        f"({point['scale_down_recoveries']} scaled down, "
        f"{point['recovery_retries']} retries, "
        f"{point['recovery_failures']} abandoned)",
        file=out,
    )
    print(
        f"cost: {point['lost_work_s'] * 1e3:.2f} ms work lost, "
        f"availability {point['availability']:.3f}, "
        f"p99 latency {point['p99_latency_s'] * 1e3:.2f} ms",
        file=out,
    )
    return 0


def _cmd_serve(args, out) -> int:
    import json

    from .experiments.bench_serving import run_point, serving_parameters
    from dataclasses import replace

    params = replace(
        serving_parameters(),
        default_deadline_s=args.deadline,
        max_queue_depth=args.queue_depth,
    )
    point = run_point(
        args.tasks,
        args.load,
        mtbf_s=args.mtbf if args.mtbf > 0 else None,
        params=params,
        fault_seed=args.seed,
        arrival=args.arrival,
        autoscale=args.autoscale,
    )
    if args.json:
        print(json.dumps(point, indent=1), file=out)
        return 0
    print(
        f"stream: {point['offered']} offered at "
        f"{point['offered_rate_per_s']:.0f} req/s "
        f"(x{point['load_factor']:g} saturation), deadline "
        f"{args.deadline * 1e3:.0f} ms",
        file=out,
    )
    print(
        f"admission: {point['admitted']} admitted, {point['shed']} shed, "
        f"{point['expired']} expired, {point['abandoned']} abandoned, "
        f"{point['breaker_rejections']} breaker-rejected",
        file=out,
    )
    print(
        f"service: {point['completed']} completed, SLO attainment "
        f"{point['slo_admitted']:.3f} (admitted basis), "
        f"goodput {point['goodput_per_s']:.0f} req/s, "
        f"p50 {point['p50_latency_s'] * 1e3:.2f} ms, "
        f"p99 {point['p99_latency_s'] * 1e3:.2f} ms",
        file=out,
    )
    print(
        f"resilience: {point['placement_retries']} placement retries, "
        f"breakers {point['breaker_opens']} opened / "
        f"{point['breaker_half_opens']} half-open / "
        f"{point['breaker_closes']} closed, "
        f"brownout {point['brownout_entries']} entries / "
        f"{point['brownout_switches']} plan switches",
        file=out,
    )
    if point["mtbf_s"]:
        print(
            f"faults: {point['boards_failed']} board failures, "
            f"{point['recoveries']} deployments recovered "
            f"(mtbf {point['mtbf_s']:g}s, seed {args.seed})",
            file=out,
        )
    if "autoscale" in point:
        a = point["autoscale"]
        print(
            f"autoscale: {a['scale_ups']} ups "
            f"({a['widenings']} widened / {a['additions']} added), "
            f"{a['scale_downs']} downs "
            f"({a['retirements']} retired / {a['narrowings']} narrowed), "
            f"{a['suppressed']} fault-suppressed, peak units "
            f"{a['peak_units']}",
            file=out,
        )
    return 0


def _cmd_tenancy(args, out) -> int:
    import json

    from .experiments.bench_tenancy import PREMIUM, run_bench

    report = run_bench(
        task_count=args.tasks, output=args.output, trace=args.trace
    )
    if args.json:
        print(json.dumps(report, indent=1), file=out)
        return 0
    workload = report["workload"]
    print(
        f"workload: {workload['task_count']} tasks on "
        f"{workload['boards']} boards ({workload['pod_size']}-board pods), "
        f"x{workload['overload_factor']:g} overload, {workload['trace']} "
        f"arrivals",
        file=out,
    )
    for tenant in workload["tenants"]:
        print(
            f"  tenant {tenant['name']}: priority {tenant['priority']}, "
            f"weight {tenant['weight']:g}, block quota "
            f"{tenant['block_quota']}, "
            f"{'preemptible' if tenant['preemptible'] else 'protected'}",
            file=out,
        )
    for key in ("premium_solo", "mixed_untenanted", "mixed_tenancy"):
        arm = report[key]
        premium = arm["tenants"].get(PREMIUM, {})
        print(
            f"{key}: {arm['completed']}/{arm['offered']} completed, "
            f"premium p99 {premium.get('p99_s', 0.0) * 1e3:.2f} ms, "
            f"quota rejections {arm['quota_rejections']}",
            file=out,
        )
    tenancy = report["mixed_tenancy"]["tenancy"]
    print(
        f"preemption: {tenancy['preemption_sweeps']} sweeps, "
        f"{tenancy['deployments_preempted']} deployments / "
        f"{tenancy['tasks_preempted']} tasks preempted, recovery rate "
        f"{tenancy['recovery_rate']:.3f}, checkpoint cost "
        f"{tenancy['checkpoint_s'] * 1e3:.3f} ms",
        file=out,
    )
    gate = report["gate"]
    print(
        f"gate: p99 ratio {gate['p99_ratio']:.2f} <= "
        f"{gate['p99_bound_factor']:g}, quota violations "
        f"{gate['quota_violations']}, recovery "
        f"{gate['recovery_rate']:.3f} -> "
        f"{'PASS' if gate['pass'] else 'FAIL'}",
        file=out,
    )
    return 0


def _run_experiment(name: str, args, out) -> int:
    from . import experiments
    from .experiments import (
        compile_overhead,
        fig11,
        fig12,
        isolation,
        table2,
        table3,
        table4,
    )

    if name == "table2":
        print(table2.render(experiments.run_table2()), file=out)
    elif name == "table3":
        print(table3.render(experiments.run_table3()), file=out)
    elif name == "table4":
        print(table4.render(experiments.run_table4()), file=out)
    elif name == "fig11":
        print(fig11.render(experiments.run_fig11()), file=out)
    elif name == "fig12":
        seeds = tuple(range(1, getattr(args, "seeds", 1) + 1))
        rows = experiments.run_fig12(
            task_count=getattr(args, "tasks", 150), seeds=seeds
        )
        print(fig12.render(rows), file=out)
    elif name == "compile-overhead":
        print(compile_overhead.render(experiments.run_compile_overhead()),
              file=out)
    elif name == "isolation":
        print(isolation.render(experiments.run_isolation()), file=out)
    return 0


def main(argv=None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    command = args.command
    if command == "inventory":
        return _cmd_inventory(args, out)
    if command == "decompose":
        return _cmd_decompose(args, out)
    if command == "partition":
        return _cmd_partition(args, out)
    if command == "assemble":
        return _cmd_assemble(args, out)
    if command == "disassemble":
        return _cmd_disassemble(args, out)
    if command == "cluster-status":
        return _cmd_cluster_status(args, out)
    if command == "inject-faults":
        return _cmd_inject_faults(args, out)
    if command == "serve":
        return _cmd_serve(args, out)
    if command == "tenancy":
        return _cmd_tenancy(args, out)
    if command == "all":
        for name in ("table2", "table3", "table4", "fig11", "fig12",
                     "compile-overhead", "isolation"):
            print(f"\n=== {name} ===\n", file=out)
            _run_experiment(name, args, out)
        return 0
    return _run_experiment(command, args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
