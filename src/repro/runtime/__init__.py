"""The runtime management system (paper Section 2.3, Fig. 7).

* :mod:`~repro.runtime.catalog`    — the mapping-results database: for every
  benchmark model, demand-sized accelerator instances compiled for every
  feasible device type at every deployment width (1 FPGA, 2-FPGA
  scale-down, ...), with bitstream artifacts cached across instances.
* :mod:`~repro.runtime.deployment` — live deployment records.
* :mod:`~repro.runtime.controller` — the system controller: searches the
  database under the greedy fewest-FPGAs-first policy, sends configuration
  requests to the HS abstraction's low-level controller, and supports the
  restricted (same-device-type) policy of Fig. 12.
* :mod:`~repro.runtime.systems`    — the three systems compared in the
  evaluation: the proposed framework, the restricted-policy variant, and
  the AS-ISA-only baseline.
"""

from .api import ClusterStatus, HypervisorAPI, TaskHandle
from .batching import BatchExecutor, BatchingParameters, BatchingStats
from .catalog import Catalog, CatalogEntry, DeploymentPlan, ReplicaImage
from .deployment import Deployment, DeploymentState
from .controller import SystemController, PlacementPolicy, PlanOrder
from .systems import BaselineSystem, ProposedSystem, RestrictedSystem, build_system

__all__ = [
    "BaselineSystem",
    "BatchExecutor",
    "BatchingParameters",
    "BatchingStats",
    "ClusterStatus",
    "HypervisorAPI",
    "TaskHandle",
    "Catalog",
    "CatalogEntry",
    "Deployment",
    "DeploymentPlan",
    "DeploymentState",
    "PlacementPolicy",
    "PlanOrder",
    "ProposedSystem",
    "ReplicaImage",
    "RestrictedSystem",
    "SystemController",
    "build_system",
]
