"""The high-level system API (paper Fig. 7).

"This system controller also provides APIs for communicating with the
high-level system to enable an easy system integration."  This module is
that surface: a hypervisor/orchestrator integrates against
:class:`HypervisorAPI` without touching virtual blocks, catalogs or the
low-level controller directly.

The API is synchronous and handle-based: ``submit`` reserves an accelerator
for one inference task (deploying or queueing as needed) and returns a
:class:`TaskHandle`; ``complete`` releases it.  ``status`` reports cluster
occupancy for dashboards/schedulers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import AllocationError, DeploymentError
from .controller import SystemController


@dataclass(frozen=True)
class TaskHandle:
    """Opaque handle for one admitted task."""

    handle_id: int
    model_key: str
    deployment_id: str
    fpga_ids: tuple
    #: Predicted service time (seconds), including any reconfiguration the
    #: admission triggered.
    predicted_service_s: float


@dataclass
class ClusterStatus:
    """Occupancy snapshot for the high-level system."""

    free_blocks: dict = field(default_factory=dict)
    deployments: list = field(default_factory=list)
    models_resident: list = field(default_factory=list)


class HypervisorAPI:
    """What the hypervisor calls (Fig. 7's top arrow)."""

    def __init__(self, controller: SystemController):
        self._controller = controller
        self._handles: dict[int, TaskHandle] = {}
        self._ids = itertools.count(1)

    # -- task lifecycle ---------------------------------------------------------

    def submit(self, model_key: str, now: float = 0.0) -> TaskHandle | None:
        """Admit one inference task for ``model_key``.

        Reuses an idle deployment when one is resident, deploys otherwise,
        and returns ``None`` when the cluster cannot serve the task right
        now (the caller queues and retries — admission control stays with
        the high-level system).
        """
        deployment = self._controller.find_idle_deployment(model_key)
        reconfig = 0.0
        if deployment is None:
            try:
                deployment, reconfig = self._controller.deploy(
                    model_key, now=now, waited_s=0.0
                )
            except AllocationError:
                return None
        deployment.acquire()
        handle = TaskHandle(
            handle_id=next(self._ids),
            model_key=model_key,
            deployment_id=deployment.deployment_id,
            fpga_ids=tuple(deployment.member_fpgas),
            predicted_service_s=reconfig + deployment.service_s,
        )
        self._handles[handle.handle_id] = handle
        return handle

    def complete(self, handle: TaskHandle, now: float = 0.0) -> None:
        """Report a task finished; frees its accelerator for reuse."""
        if self._handles.pop(handle.handle_id, None) is None:
            raise DeploymentError(
                f"unknown or already-completed handle {handle.handle_id}"
            )
        deployment = self._controller.deployments.get(handle.deployment_id)
        if deployment is None:
            raise DeploymentError(
                f"deployment {handle.deployment_id} no longer exists"
            )
        self._controller.release(deployment, now)

    def in_flight(self) -> int:
        """Tasks admitted but not yet completed."""
        return len(self._handles)

    # -- introspection -------------------------------------------------------------

    def status(self) -> ClusterStatus:
        """Cluster occupancy snapshot."""
        controller = self._controller
        return ClusterStatus(
            free_blocks=controller.cluster.total_free_blocks(),
            deployments=[
                {
                    "id": d.deployment_id,
                    "model": d.model_key,
                    "state": d.state.value,
                    "fpgas": d.member_fpgas,
                    "tasks_served": d.tasks_served,
                }
                for d in controller.deployments.values()
            ],
            models_resident=sorted(
                {d.model_key for d in controller.deployments.values()}
            ),
        )

    def evict_idle(self, model_key: str) -> int:
        """Explicitly evict idle deployments of one model (hypervisor-driven
        reclamation); returns how many were torn down."""
        victims = [
            d
            for d in list(self._controller.deployments.values())
            if d.model_key == model_key and d.is_idle
        ]
        for victim in victims:
            self._controller.evict(victim)
        return len(victims)
