"""Pod-sharded control plane: per-pod placement indices behind one router.

A flat :class:`~repro.runtime.controller.PlacementIndex` over a
thousand-board pool makes every placement query touch state proportional
to the whole cluster.  Production FPGA pools (Funky; Zeng et al. — see
PAPERS.md) shard devices behind hierarchical allocators instead; this
module is that layer:

* boards are grouped into *pods* (configurable size, default
  :data:`DEFAULT_POD_SIZE`, in cluster declaration order — adjacent ring
  positions land in the same pod, which keeps multi-replica assignments
  ring-local);
* each pod owns a private :class:`PlacementIndex` over its boards only, so
  occupancy and health notifications never touch other pods;
* the :class:`PodRouter` fronts them with aggregate summaries
  (``max_free``, ``count_with_at_least`` as per-pod probes), a
  per-``(model, pod)`` feasibility cache validated by the pod index's
  mutation ``version``, and *lazy merged* candidate iteration: placement
  consumes boards in exactly the flat policy order, but only as many as
  the search actually needs, and only from pods whose summary says they
  could host the image.

Equivalence contract: for every placement policy the router's candidate
order over the whole cluster is identical to the flat index's order (the
per-pod entry lists are disjoint slices of the same global order, and the
merge is stable on the unique ``(free, fpga_id)`` / ``fpga_id`` keys), so
schedules are bit-identical to the flat controller — on the 4-board
Fig. 12 cluster a single pod *is* the flat index — while the probe count
per search stops growing with the cluster.
"""

from __future__ import annotations

import heapq

from ..cluster.topology import FPGACluster
from .controller import PlacementIndex, PlacementPolicy

#: Boards per pod when neither the controller nor the cluster pins one.
DEFAULT_POD_SIZE = 32


class Pod:
    """One shard: a pod id plus a private index over its member boards."""

    __slots__ = ("pod_id", "index", "board_ids")

    def __init__(self, pod_id: int, boards: list):
        self.pod_id = pod_id
        self.index = PlacementIndex(boards)
        self.board_ids = [board.fpga_id for board in boards]

    def total_free_blocks(self) -> int:
        """Aggregate free blocks across the pod (promise ordering)."""
        return sum(
            board.free_blocks
            for device_type in self.index.device_types()
            for board in self.index.boards_by_id(device_type)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Pod({self.pod_id}, {len(self.board_ids)} boards)"


class PodRouter:
    """Routes placement queries to per-pod indices.

    Implements the flat :class:`PlacementIndex` query surface (so the
    defragmentation planner, the CLI and the invariant tests work
    unchanged) plus the routing API the controller's placement search
    uses: :meth:`iter_candidates`, :meth:`any_feasible` and
    :meth:`defrag_pod_order`.
    """

    def __init__(self, cluster: FPGACluster, pod_size: int | None = None):
        boards = list(cluster.boards.values())
        size = pod_size
        if size is None:
            size = getattr(cluster, "pod_size", None)
        if size is None:
            size = DEFAULT_POD_SIZE
        if size < 1:
            raise ValueError(f"pod size must be positive, got {size}")
        self.pod_size = size
        self.pods = [
            Pod(pod_id, boards[at : at + size])
            for pod_id, at in enumerate(range(0, len(boards), size))
        ]
        self._boards = {board.fpga_id: board for board in boards}
        self._pod_by_board = {
            fpga_id: pod for pod in self.pods for fpga_id in pod.board_ids
        }
        #: (model_key, pod_id) -> (pod index version, feasible?).  The
        #: invalidation rule is entirely version-based: any occupancy or
        #: health mutation inside the pod bumps its index version, and the
        #: next probe recomputes; mutations in *other* pods leave the
        #: entry valid, which is the point of sharding.
        self._feasibility_cache: dict = {}

    # -- topology ------------------------------------------------------------

    def pod_of(self, fpga_id: str) -> Pod:
        return self._pod_by_board[fpga_id]

    def pod_count(self) -> int:
        return len(self.pods)

    # -- flat-compatible queries ----------------------------------------------

    def device_types(self) -> list:
        types: set = set()
        for pod in self.pods:
            types.update(pod.index.device_types())
        return sorted(types)

    def max_free(self, device_type: str) -> int:
        return max((pod.index.max_free(device_type) for pod in self.pods),
                   default=0)

    def count_with_at_least(self, device_type: str, blocks: int) -> int:
        total = 0
        for pod in self.pods:
            if pod.index.max_free(device_type) < blocks:
                continue  # summary says no qualifying board in this pod
            total += pod.index.count_with_at_least(device_type, blocks)
        return total

    def boards_best_fit(self, device_type: str) -> list:
        """Boards of one type, fullest-that-fits first ((free, id) order)."""
        merged = heapq.merge(
            *(pod.index.entries_with_at_least(device_type, 0)
              for pod in self.pods)
        )
        return [self._boards[fpga_id] for _, fpga_id in merged]

    def boards_worst_fit(self, device_type: str) -> list:
        """Boards of one type, emptiest first ((-free, id) order)."""
        entries = [
            entry
            for pod in self.pods
            for entry in pod.index.entries_with_at_least(device_type, 0)
        ]
        entries.sort(key=lambda entry: (-entry[0], entry[1]))
        return [self._boards[fpga_id] for _, fpga_id in entries]

    def boards_by_id(self, device_type: str) -> list:
        """Placeable boards of one type in stable fpga-id order."""
        boards = [
            board
            for pod in self.pods
            for board in pod.index.boards_by_id(device_type)
        ]
        boards.sort(key=lambda board: board.fpga_id)
        return boards

    # -- routed candidate iteration -------------------------------------------

    def iter_candidates(self, requirements: dict, policy: PlacementPolicy):
        """Boards able (by free count) to host their type's image, yielded
        lazily in the flat placement-policy order.

        ``requirements`` maps device type -> minimum free blocks (the
        type's replica-image footprint).  Pods whose summary rules them out
        contribute no stream; within contributing pods a bisect skips the
        infeasible prefix, so the search consumes exactly the boards the
        flat index would have picked from, in the same order, without ever
        materialising the cluster-wide candidate list.
        """
        boards = self._boards
        if policy is PlacementPolicy.BEST_FIT:
            streams = [
                pod.index.entries_with_at_least(device_type, need)
                for device_type in sorted(requirements)
                for need in (requirements[device_type],)
                for pod in self.pods
                if pod.index.max_free(device_type) >= need
            ]
            for _, fpga_id in heapq.merge(*streams):
                yield boards[fpga_id]
        elif policy is PlacementPolicy.WORST_FIT:
            key = lambda entry: (-entry[0], entry[1])  # noqa: E731
            streams = [
                sorted(pod.index.entries_with_at_least(device_type, need),
                       key=key)
                for device_type in sorted(requirements)
                for need in (requirements[device_type],)
                for pod in self.pods
                if pod.index.max_free(device_type) >= need
            ]
            for _, fpga_id in heapq.merge(*streams, key=key):
                yield boards[fpga_id]
        else:  # FIRST_FIT: stable fpga-id order
            streams = [
                [
                    board.fpga_id
                    for board in pod.index.boards_by_id(device_type)
                    if board.free_blocks >= need
                ]
                for device_type in sorted(requirements)
                for need in (requirements[device_type],)
                for pod in self.pods
                if pod.index.max_free(device_type) >= need
            ]
            for fpga_id in heapq.merge(*streams):
                yield boards[fpga_id]

    # -- feasibility routing ---------------------------------------------------

    def pod_feasible(self, model_key: str, pod: Pod, feasible_fn) -> bool:
        """Whether any plan of ``model_key`` could put one replica in
        ``pod`` — cached per ``(model, pod)``, revalidated by version."""
        cache_key = (model_key, pod.pod_id)
        version = pod.index.version
        cached = self._feasibility_cache.get(cache_key)
        if cached is not None and cached[0] == version:
            return cached[1]
        feasible = any(
            feasible_fn(model_key, device_type,
                        pod.index.max_free(device_type))
            for device_type in pod.index.device_types()
        )
        self._feasibility_cache[cache_key] = (version, feasible)
        return feasible

    def any_feasible(self, model_key: str, feasible_fn) -> bool:
        """Capacity fast-reject across pods.

        Feasibility is monotone in free capacity, so "some pod can host a
        replica" is exactly the flat index's "the global max-free board
        can host a replica" — the answers agree, only the cache locality
        differs.
        """
        return any(
            self.pod_feasible(model_key, pod, feasible_fn)
            for pod in self.pods
        )

    def defrag_pod_order(self) -> list:
        """Pods worth attempting a pod-local defragmentation in, most
        promising first: aggregate free capacity descending (pod id breaks
        ties for determinism).  Deliberately NOT filtered by placement
        feasibility — defragmentation exists exactly for pods where the
        feasibility probe fails on hole size despite sufficient aggregate
        free capacity."""
        return sorted(
            self.pods, key=lambda pod: (-pod.total_free_blocks(), pod.pod_id)
        )

    # -- invariants ------------------------------------------------------------

    def check_consistent(self) -> bool:
        """Every pod index matches a from-scratch recount AND the pods
        partition the cluster exactly (chaos/invariant tests)."""
        seen: set = set()
        for pod in self.pods:
            if not pod.index.check_consistent():
                return False
            for fpga_id in pod.board_ids:
                if fpga_id in seen:
                    return False
                seen.add(fpga_id)
        return seen == set(self._boards)
