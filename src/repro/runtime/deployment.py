"""Live deployment records.

A deployment is one accelerator (possibly scaled down into replicas)
resident on the cluster: which boards host which replica, how many virtual
blocks each occupies, and whether a task is currently running on it.
Deployments persist between tasks of the same model (persistent-NN serving)
and are evicted LRU when the controller needs their blocks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import DeploymentError
from .catalog import DeploymentPlan


class DeploymentState(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"
    #: Being moved to other boards: source and destination blocks are both
    #: occupied, and the deployment can neither serve nor be evicted until
    #: the move completes (:mod:`repro.migration.engine`).
    MIGRATING = "migrating"
    #: Being rebuilt after a board failure: destination blocks are held
    #: while the last checkpoint streams back in; not servable or
    #: evictable until the restore completes (:mod:`repro.faults`).
    RECOVERING = "recovering"


@dataclass
class ReplicaPlacement:
    """One replica resident on one board."""

    fpga_id: str
    device_type: str
    virtual_blocks: int
    block_indices: list = field(default_factory=list)


@dataclass
class Deployment:
    """One resident accelerator."""

    deployment_id: str
    model_key: str
    plan: DeploymentPlan
    placements: list = field(default_factory=list)
    state: DeploymentState = DeploymentState.IDLE
    #: Cached per-task service latency (seconds), computed at creation.
    service_s: float = 0.0
    #: Last time this deployment finished a task (LRU eviction key).
    last_used_s: float = 0.0
    tasks_served: int = 0
    #: Completed live migrations (defrag moves included).
    migrations: int = 0
    #: When this deployment was instantiated (anchors checkpoint cadence).
    created_s: float = 0.0
    #: Time the periodic-checkpoint clock last restarted: creation, or the
    #: completion of a recovery (a restore *is* a fresh checkpoint).
    checkpoint_origin_s: float = 0.0
    #: Set when a board under this deployment failed while it was busy,
    #: migrating or mid-restore; the recovery manager picks it up at the
    #: next state transition instead of yanking blocks out from under the
    #: in-flight operation.
    pending_recovery: bool = False
    #: Completed failure recoveries.
    recoveries: int = 0
    #: Owning tenant (set from the controller's tenant context at
    #: instantiation; ``""`` = untenanted).  Quota accounting and the
    #: preemption victim scan key off this.
    tenant: str = ""

    @property
    def member_fpgas(self) -> list:
        return [placement.fpga_id for placement in self.placements]

    def last_checkpoint_s(self, now: float, interval_s: float) -> float:
        """Most recent periodic-checkpoint time at or before ``now``.

        The cadence policy is arithmetic rather than event-driven: a
        checkpoint is taken every ``interval_s`` seconds starting at
        :attr:`checkpoint_origin_s`, so the last one needs no per-deployment
        DES events to track.  Work since that instant is what a failure
        loses.
        """
        if interval_s <= 0 or now <= self.checkpoint_origin_s:
            return self.checkpoint_origin_s
        periods = int((now - self.checkpoint_origin_s) / interval_s)
        return self.checkpoint_origin_s + periods * interval_s

    @property
    def is_idle(self) -> bool:
        return self.state is DeploymentState.IDLE

    def acquire(self) -> None:
        if self.state is not DeploymentState.IDLE:
            raise DeploymentError(
                f"deployment {self.deployment_id} is not idle"
            )
        self.state = DeploymentState.BUSY

    def release(self, now: float) -> None:
        if self.state is not DeploymentState.BUSY:
            raise DeploymentError(
                f"deployment {self.deployment_id} is not busy"
            )
        self.state = DeploymentState.IDLE
        self.last_used_s = now
        self.tasks_served += 1
