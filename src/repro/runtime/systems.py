"""The three systems compared in the evaluation (Fig. 12).

* :class:`ProposedSystem` — the full multi-layer framework: virtual-block
  sharing, heterogeneous multi-FPGA deployment, scale-out overlap.
* :class:`RestrictedSystem` — same framework, but one accelerator may only
  span FPGAs of one device type (emulates the multi-FPGA support of
  existing HS abstractions).
* :class:`BaselineSystem` — AS ISA only: per-device allocation of the
  statically compiled device-matched accelerator, no spatial sharing, no
  communication/computation overlap for multi-FPGA models.

All three implement the :class:`~repro.cluster.simulator.Scheduler`
protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..accel.config import AcceleratorConfig
from ..accel.codegen import build_scaleout_programs
from ..accel.timing import CycleModel, TimingParameters, DEFAULT_TIMING
from ..cluster.simulator import Task
from ..cluster.topology import FPGACluster
from ..errors import AllocationError, ReproError
from ..perf.latency import BASE_INSTANCES, weight_load_seconds
from ..perf.overlap import scaleout_latency
from ..vital.bitstream import LowLevelController
from ..workloads.deepbench import ModelSpec, model_by_key
from .catalog import Catalog
from .controller import SystemController


class ProposedSystem:
    """The full multi-layer virtualization framework."""

    name = "proposed"

    def __init__(self, cluster: FPGACluster, catalog: Catalog,
                 timing: TimingParameters = DEFAULT_TIMING,
                 defrag: bool = False, migration_params=None,
                 recovery: bool = False, recovery_params=None,
                 batching=None, pod_size: int | None = None):
        self.cluster = cluster
        self.controller = SystemController(
            cluster,
            catalog,
            LowLevelController(catalog.compiler.store),
            same_type_only=self._same_type_only(),
            timing=timing,
            migration_enabled=defrag,
            migration_params=migration_params,
            recovery_enabled=recovery,
            recovery_params=recovery_params,
            pod_size=pod_size,
        )
        #: Optional request-coalescing functional executor
        #: (:class:`repro.runtime.batching.BatchExecutor`).  Off by
        #: default: pure-timing runs never touch the functional simulator,
        #: and timestamps are identical either way — batching only decides
        #: *how* task outputs are computed, never *when* events fire.
        self.batch_executor = None
        if batching is not None:
            from .batching import BatchExecutor, BatchingParameters

            if isinstance(batching, BatchingParameters):
                self.batch_executor = BatchExecutor(batching)
            else:
                self.batch_executor = batching
        self._running: dict[int, object] = {}
        #: Reactive queue-pressure expansion (grow an already-deployed
        #: model on demand).  An attached :class:`~repro.autoscale.
        #: Autoscaler` clears this and takes ownership of elasticity —
        #: two uncoordinated growth loops over-provision and fight each
        #: other's scale-downs.
        self.expansion_enabled = True
        #: Set when a :class:`~repro.cluster.simulator.ClusterSimulator`
        #: adopts this scheduler; migrations become first-class DES events.
        self._simulator = None
        #: model key -> in-flight defrag (avoid planning duplicates).
        self._defrag_pending: set[str] = set()

    @staticmethod
    def _same_type_only() -> bool:
        return False

    # -- Scheduler protocol -------------------------------------------------------

    #: Queue depth that justifies growing an already-deployed model by
    #: evicting someone else's stale idle copy.
    EXPANSION_PRESSURE = 4

    def bind_simulator(self, simulator) -> None:
        """Adopt the driving DES (gives defrag and failure recovery a
        clock to schedule on)."""
        self._simulator = simulator
        self.controller.bind_simulator(simulator)

    def has_fast_path(self, task: Task) -> bool:
        return self.controller.find_idle_deployment(task.model_key) is not None

    def running_deployment(self, task_id: int):
        """The deployment serving ``task_id`` right now (``None`` when the
        task is not running).  The serving layer reads this to attribute
        completions to boards for its circuit breakers."""
        return self._running.get(task_id)

    def observe_queue(self, pending_by_model: dict) -> None:
        self._queue_view = dict(pending_by_model)

    def _deployment_count(self, model_key: str) -> int:
        return self.controller.deployment_count(model_key)

    def _expansion_allowed(self, model_key: str) -> bool:
        """Fairness: a model with copies yields space to pending models
        that have none at all."""
        if not self.expansion_enabled:
            return False
        view = getattr(self, "_queue_view", {})
        for other_key, depth in view.items():
            if other_key == model_key or depth <= 0:
                continue
            if self._deployment_count(other_key) == 0:
                return False
        return view.get(model_key, 0) >= 2

    def try_start(self, task: Task, now: float) -> float | None:
        # Placement attribution: any deployment created while this task
        # places belongs to its tenant (the controller stamps new
        # deployments from this context; "" = untenanted, the default).
        self.controller.tenant_context = task.tenant
        try:
            return self._try_start(task, now)
        finally:
            self.controller.tenant_context = ""

    def _try_start(self, task: Task, now: float) -> float | None:
        seen = getattr(self, "_seen_models", None)
        if seen is None:
            seen = self._seen_models = {}
            self._seen_tasks = set()
        if task.task_id not in self._seen_tasks:
            # Count each task once (on its first attempt), so the observed
            # model mix is a property of the stream, not of how often the
            # dispatch loop happened to retry a blocked task.
            self._seen_tasks.add(task.task_id)
            seen[task.model_key] = seen.get(task.model_key, 0) + 1
        if task.model_key in self._defrag_pending:
            # A compaction for this model is in flight; until it completes
            # the controller provably cannot place it, so don't charge a
            # placement failure for re-asking.
            return None
        deployment = self.controller.find_idle_deployment(task.model_key)
        reconfig = 0.0
        if deployment is None:
            copies = self._deployment_count(task.model_key)
            if copies > 0 and not self._expansion_allowed(task.model_key):
                return None  # wait for the busy copy instead of expanding
            waited = now - task.arrival_s
            if copies > 0:
                # Expansion uses free blocks; eviction only under strong
                # queue pressure.
                view = getattr(self, "_queue_view", {})
                if view.get(task.model_key, 0) < self.EXPANSION_PRESSURE:
                    waited = 0.0
            # A heterogeneous (mixed-type) pairing takes a scarce device
            # type away from single-FPGA models.  The controller adapts to
            # the observed workload: mixed pairs are only worthwhile when
            # the stream is essentially single-model (otherwise the scarce
            # type serves the other models better).
            total_seen = sum(seen.values())
            other_seen = total_seen - seen.get(task.model_key, 0)
            allow_mixed = other_seen <= 0.05 * total_seen
            try:
                deployment, reconfig = self.controller.deploy(
                    task.model_key, now, waited_s=waited,
                    allow_mixed=allow_mixed,
                )
            except AllocationError:
                self._maybe_defrag(task.model_key, now)
                return None
        else:
            self.controller.stats.reuse_hits += 1
        deployment.acquire()
        self._running[task.task_id] = deployment
        if self.batch_executor is not None:
            self.batch_executor.submit(task, deployment.plan.replicas, now)
        return reconfig + deployment.service_s

    def on_finish(self, task: Task, now: float) -> None:
        deployment = self._running.pop(task.task_id)
        if self.batch_executor is not None:
            # The task's output must exist by the time its completion is
            # observable; a still-waiting group executes now (scalar
            # fallback when it degenerated to one lane).
            self.batch_executor.ensure_executed(task)
        self.controller.release(deployment, now)

    def abort_task(self, task: Task):
        """Detach a running task from its deployment without releasing it
        (priority preemption: the deployment is being checkpointed and torn
        down by the tenancy layer, not returned to idle).  Returns the
        deployment the task was running on."""
        deployment = self._running.pop(task.task_id)
        if self.batch_executor is not None:
            # Keep the coalescing executor's group state consistent; the
            # requeued task re-submits on its next start.
            self.batch_executor.ensure_executed(task)
        return deployment

    # -- defragmentation (migration subsystem; off unless ``defrag=True``) ---------

    def _maybe_defrag(self, model_key: str, now: float) -> bool:
        """After a placement failure, start the cheapest compaction that
        would open a hole for ``model_key`` — as a timed DES event when a
        simulator drives us, synchronously otherwise.  Returns whether a
        defrag was started."""
        controller = self.controller
        if not controller.migration_enabled or model_key in self._defrag_pending:
            return False
        plan = controller.plan_defrag(model_key)
        if plan is None:
            return False
        cost = controller.begin_defrag(plan, now)
        if self._simulator is None:
            controller.finish_defrag(plan, now)
            return True
        self._defrag_pending.add(model_key)

        def complete(finish_now: float, plan=plan, key=model_key) -> None:
            controller.finish_defrag(plan, finish_now)
            self._defrag_pending.discard(key)

        self._simulator.schedule_external(cost, complete)
        return True

    def retry_hint(self, task: Task, now: float) -> float:
        """Earliest time a declined task could start absent releases.

        Two of the controller's gates open purely with the clock: the
        requester ageing past the eviction-patience window, and an idle
        foreign deployment going stale enough to evict.  Everything else
        (queue pressure, deployment counts, free blocks) only moves on
        arrivals/starts/finishes, which the simulator tracks by version.
        Hints are biased a hair early so float rounding can only cause a
        harmless extra attempt, never a missed one.
        """
        controller = self.controller
        if task.model_key in self._defrag_pending:
            # A compaction is in flight for this model; its completion is
            # an external event that bumps the resource version itself.
            return math.inf
        patience = controller.eviction_patience_s
        if controller.deployment_count(task.model_key) > 0:
            if not self.expansion_enabled:
                # Elasticity belongs to the autoscaler: only a release or
                # its next scaling event (an external event that bumps the
                # resource version) can unblock this task.
                return math.inf
            view = getattr(self, "_queue_view", {})
            if view.get(task.model_key, 0) < self.EXPANSION_PRESSURE:
                # Expansion without pressure never evicts (waited is zeroed):
                # only a queue/resource change can help.
                return math.inf
        if now - task.arrival_s < patience:
            return task.arrival_s + patience - 1e-12
        # Eviction was allowed but found no stale victim: wake when the
        # oldest idle foreign deployment crosses the staleness window.
        # "Foreign" matches the eviction filter: another model, or — under
        # tenant isolation — another tenant's unreusable same-model copy.
        wakes = [
            d.last_used_s + patience
            for d in controller.deployments.values()
            if d.is_idle
            and (
                d.model_key != task.model_key
                or (
                    controller.tenant_isolation
                    and d.tenant != task.tenant
                )
            )
        ]
        if not wakes:
            return math.inf
        return min(wakes) - 1e-12


class RestrictedSystem(ProposedSystem):
    """Framework with the same-device-type restriction of Fig. 12."""

    name = "restricted"

    @staticmethod
    def _same_type_only() -> bool:
        return True


@dataclass
class _BaselineBoardState:
    """One board in the baseline system: statically programmed with the
    device-matched full accelerator, busy or free as a whole.

    ``resident_model`` tracks whose weights currently occupy the on-chip
    matrix memory; serving a different model first reloads weights over
    PCIe/DRAM (persistent-NN serving makes weight residency the asset)."""

    fpga_id: str
    device_type: str
    instance: AcceleratorConfig
    busy_until_task: int | None = None
    resident_model: str | None = None


class BaselineSystem:
    """AS ISA only: per-device granularity, static allocation.

    Every board permanently hosts its device-matched accelerator instance
    (resource allocation is fixed at offline compile time), one task runs
    per board, and models too large for one board occupy two boards with
    *manually partitioned*, non-overlapped communication (the paper's
    description of scale-out without the framework).  Boards prefer tasks
    of their resident model; switching models costs a weight reload.
    """

    name = "baseline"

    def __init__(self, cluster: FPGACluster,
                 timing: TimingParameters = DEFAULT_TIMING):
        self.cluster = cluster
        self.timing = timing
        self.boards = [
            _BaselineBoardState(
                fpga_id=board.fpga_id,
                device_type=board.model.name,
                instance=BASE_INSTANCES[board.model.name].with_frequency(
                    board.model.frequency_hz
                ),
            )
            for board in cluster.boards.values()
        ]
        self._running: dict[int, list] = {}
        self._latency_cache: dict = {}
        #: model key -> boards it was statically assigned to at "compile
        #: time".  Computed from the model pool without knowledge of the
        #: runtime composition — the static inflexibility the paper attacks.
        self._assignment: dict[str, list] = {}
        self._build_static_assignment()

    def _build_static_assignment(self) -> None:
        """Round-robin the known model pool over the boards offline."""
        from ..workloads.deepbench import MODEL_POOL

        pool = sorted(
            {spec.key: spec for specs in MODEL_POOL.values() for spec in specs}.values(),
            key=lambda spec: spec.key,
        )
        cursor = 0
        for spec in pool:
            placed = False
            for attempt in range(len(self.boards)):
                board = self.boards[(cursor + attempt) % len(self.boards)]
                if self._single_latency(spec, board) is not None:
                    self._assignment[spec.key] = [board]
                    cursor += attempt + 1
                    placed = True
                    break
            if placed:
                continue
            # Oversized model: statically assign a feasible board pair.
            for i, first in enumerate(self.boards):
                for second in self.boards[i + 1 :]:
                    if self._pair_latency(spec, [first, second]) is not None:
                        self._assignment[spec.key] = [first, second]
                        placed = True
                        break
                if placed:
                    break

    # -- latency ---------------------------------------------------------------------

    def _single_latency(self, spec: ModelSpec, board: _BaselineBoardState) -> float | None:
        key = ("single", spec.key, board.device_type)
        if key not in self._latency_cache:
            model = CycleModel(board.instance, self.timing)
            program = spec.program()
            self._latency_cache[key] = (
                model.latency(program).seconds if model.fits(program) else None
            )
        return self._latency_cache[key]

    def _pair_latency(self, spec: ModelSpec, pair: list) -> float | None:
        types = tuple(sorted(b.device_type for b in pair))
        key = ("pair", spec.key, types)
        if key not in self._latency_cache:
            self._latency_cache[key] = self._compute_pair_latency(spec, pair)
        return self._latency_cache[key]

    def _compute_pair_latency(self, spec: ModelSpec, pair: list) -> float | None:
        if spec.hidden % 2 != 0:
            return None
        # Manual partitioning: no reordering tool, so communication is
        # fully exposed (the overlap window is empty).
        try:
            programs = build_scaleout_programs(
                spec.kind, spec.metadata_weights(), spec.timesteps, 2,
                reorder=False,
            )
        except ReproError:
            return None
        members = [b.fpga_id for b in pair]
        worst = 0.0
        for board, program in zip(pair, programs):
            model = CycleModel(board.instance, self.timing)
            if not model.fits(program):
                return None
            report = scaleout_latency(
                program, model, self.cluster.network, members,
                params=self.timing,
            )
            worst = max(worst, report.total_s)
        return worst

    # -- Scheduler protocol ----------------------------------------------------------------

    @staticmethod
    def _switch_cost(spec: ModelSpec, boards: list) -> float:
        """Weight reload time for boards not already holding this model."""
        if all(board.resident_model == spec.key for board in boards):
            return 0.0
        return weight_load_seconds(spec.parameter_count)

    def _occupy(self, task: Task, spec: ModelSpec, boards: list) -> None:
        for board in boards:
            board.busy_until_task = task.task_id
            board.resident_model = spec.key
        self._running[task.task_id] = boards

    def try_start(self, task: Task, now: float) -> float | None:
        spec = model_by_key(task.model_key)
        boards = self._assignment.get(task.model_key)
        if boards is None:
            # A model outside the offline pool: assign it now, permanently
            # (recompiling the static allocation mid-run is not an option).
            self._build_static_assignment()
            self._assign_extra(spec)
            boards = self._assignment.get(task.model_key)
            if boards is None:
                return None
        if any(board.busy_until_task is not None for board in boards):
            return None
        if len(boards) == 1:
            latency = self._single_latency(spec, boards[0])
        else:
            latency = self._pair_latency(spec, boards)
        if latency is None:
            return None
        cost = self._switch_cost(spec, boards)
        self._occupy(task, spec, boards)
        return cost + latency

    def _assign_extra(self, spec: ModelSpec) -> None:
        """Statically place a model that was not in the offline pool."""
        for board in self.boards:
            if self._single_latency(spec, board) is not None:
                self._assignment[spec.key] = [board]
                return
        for i, first in enumerate(self.boards):
            for second in self.boards[i + 1 :]:
                if self._pair_latency(spec, [first, second]) is not None:
                    self._assignment[spec.key] = [first, second]
                    return

    def on_finish(self, task: Task, now: float) -> None:
        for board in self._running.pop(task.task_id):
            board.busy_until_task = None

    def retry_hint(self, task: Task, now: float) -> float:
        """Static allocation has no time gates: a declined task can only
        start after one of its assigned boards frees up (a finish)."""
        return math.inf


def build_system(
    name: str,
    cluster: FPGACluster,
    catalog: Catalog | None = None,
    timing: TimingParameters = DEFAULT_TIMING,
    defrag: bool = False,
    recovery: bool = False,
    recovery_params=None,
    batching=None,
    pod_size: int | None = None,
):
    """Factory over the three evaluated systems.

    ``defrag=True`` arms the checkpoint/restore + migration subsystem on
    the framework systems (the baseline has no virtualization layer to
    migrate through); ``recovery=True`` arms checkpoint-based failure
    recovery (:mod:`repro.faults`); ``batching`` (a
    :class:`repro.runtime.batching.BatchingParameters`) arms the
    request-coalescing functional executor; ``pod_size`` overrides the
    control-plane pod size (``None`` defers to the cluster's advisory
    value, then the router default).  The defaults keep schedules
    bit-identical to the pre-migration, pre-faults implementation.
    """
    if name == "baseline":
        return BaselineSystem(cluster, timing)
    if catalog is None:
        raise ReproError(f"system {name!r} needs a catalog")
    if name == "proposed":
        return ProposedSystem(cluster, catalog, timing, defrag=defrag,
                              recovery=recovery, recovery_params=recovery_params,
                              batching=batching, pod_size=pod_size)
    if name == "restricted":
        return RestrictedSystem(cluster, catalog, timing, defrag=defrag,
                                recovery=recovery, recovery_params=recovery_params,
                                batching=batching, pod_size=pod_size)
    raise ReproError(f"unknown system {name!r}")
