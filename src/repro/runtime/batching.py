"""Request coalescing: batch same-model functional executions.

The DES computes task *timing* from the cycle model; the functional
simulator computes task *outputs*.  Timing never depended on the
functional layer, so batching lives entirely on the output side: when the
runtime is asked to actually execute requests (``Task.payload`` inputs →
``Task.output`` hidden states), a :class:`BatchExecutor` coalesces tasks
of the same (model, plan width) into one
:class:`~repro.accel.batched.BatchedFunctionalSimulator` run instead of N
scalar runs.

Integration contract — *no change to DES event semantics*:

* ``submit(task, replicas, now)`` is called by the scheduler inside
  ``try_start`` after the deployment is acquired.  It only buffers; a full
  group (``max_batch`` lanes) executes immediately.
* ``ensure_executed(task)`` is called inside ``on_finish`` *before* the
  deployment is released: if the task's group has not yet filled, the
  partial group executes right then (falling back to the scalar simulator
  for singleton groups).  A task therefore always holds its output by the
  time its completion event is observable, at unchanged timestamps — the
  fig12 goldens are bit-identical with the executor on or off.

The executor is **off by default** (like migration, faults and serving):
schedulers only create one when handed :class:`BatchingParameters`.

Tasks without a payload get a deterministic per-task input stream seeded
by ``task_id`` — the same stream the scalar path would generate — so
batched-vs-scalar equivalence is checkable end-to-end through the DES.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..accel.batched import run_batched, run_scaleout_batched
from ..accel.codegen import OUT_BASE, build_scaleout_programs, make_codegen
from ..errors import ReproError
from ..perf.profiling import PROFILER
from ..workloads.deepbench import model_by_key


@dataclass(frozen=True)
class BatchingParameters:
    """Knobs for the request-coalescing executor.

    ``max_batch`` bounds group size (memory and latency of one batched
    run); ``weight_seed`` fixes the model weights used for functional
    execution; ``force_scalar`` pins every execution to the scalar
    fallback (equivalence harnesses compare against it).
    """

    max_batch: int = 8
    weight_seed: int = 0
    force_scalar: bool = False

    def __post_init__(self):
        if self.max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {self.max_batch}")


@dataclass
class BatchingStats:
    """Coalescing effectiveness counters."""

    submitted: int = 0
    executions: int = 0
    batched_lanes: int = 0
    scalar_lanes: int = 0
    full_batches: int = 0
    partial_flushes: int = 0
    #: lane-count histogram over executions (size -> count).
    batch_sizes: dict = field(default_factory=dict)

    def snapshot(self) -> dict:
        mean = (
            (self.batched_lanes + self.scalar_lanes) / self.executions
            if self.executions
            else 0.0
        )
        return {
            "submitted": self.submitted,
            "executions": self.executions,
            "batched_lanes": self.batched_lanes,
            "scalar_lanes": self.scalar_lanes,
            "full_batches": self.full_batches,
            "partial_flushes": self.partial_flushes,
            "mean_batch": mean,
            "batch_sizes": {str(k): v for k, v in sorted(self.batch_sizes.items())},
        }


class BatchExecutor:
    """Coalesces same-model functional executions into batched runs."""

    def __init__(self, params: BatchingParameters | None = None):
        self.params = params or BatchingParameters()
        #: (model_key, replicas) -> list of waiting tasks.
        self._groups: dict[tuple, list] = {}
        #: task_id -> group key, while the task waits.
        self._waiting: dict[int, tuple] = {}
        self._weights: dict[str, object] = {}
        self._codegens: dict[tuple, object] = {}
        self.stats = BatchingStats()

    # -- model artifacts (memoised per model/width) --------------------------

    def _weights_for(self, model_key: str):
        weights = self._weights.get(model_key)
        if weights is None:
            spec = model_by_key(model_key)
            weights = spec.real_weights(seed=self.params.weight_seed)
            self._weights[model_key] = weights
        return weights

    def _codegen_for(self, model_key: str, replicas: int, replica_index: int):
        key = (model_key, replicas, replica_index)
        gen = self._codegens.get(key)
        if gen is None:
            spec = model_by_key(model_key)
            gen = make_codegen(
                spec.kind,
                self._weights_for(model_key),
                spec.timesteps,
                replicas=replicas,
                replica_index=replica_index,
            )
            self._codegens[key] = gen
        return gen

    def default_payload(self, task) -> np.ndarray:
        """The deterministic input stream for a payload-less task."""
        spec = model_by_key(task.model_key)
        rng = np.random.default_rng(task.task_id)
        return rng.normal(0.0, 1.0, (spec.timesteps, spec.effective_input_dim))

    # -- coalescing ----------------------------------------------------------

    def submit(self, task, replicas: int, now: float) -> None:
        """Buffer ``task`` for batched execution; runs the group when it
        reaches ``max_batch`` lanes."""
        if task.task_id in self._waiting:
            return
        key = (task.model_key, replicas)
        group = self._groups.setdefault(key, [])
        group.append(task)
        self._waiting[task.task_id] = key
        self.stats.submitted += 1
        if len(group) >= self.params.max_batch:
            self.stats.full_batches += 1
            self._execute(key)

    def ensure_executed(self, task) -> None:
        """Execute ``task``'s group now if it is still waiting (called at
        task finish, before the deployment releases)."""
        key = self._waiting.get(task.task_id)
        if key is None:
            return
        self.stats.partial_flushes += 1
        self._execute(key)

    def flush(self) -> None:
        """Execute every waiting group (end-of-run drain)."""
        for key in list(self._groups):
            self._execute(key)

    # -- execution -----------------------------------------------------------

    def _execute(self, key: tuple) -> None:
        tasks = self._groups.pop(key, None)
        if not tasks:
            return
        model_key, replicas = key
        for task in tasks:
            self._waiting.pop(task.task_id, None)
        payloads = [
            task.payload if task.payload is not None else self.default_payload(task)
            for task in tasks
        ]
        spec = model_by_key(model_key)
        batch = len(tasks)
        scalar = self.params.force_scalar or batch == 1
        if replicas <= 1:
            gen = self._codegen_for(model_key, 1, 0)
            lanes = run_batched(
                gen.build(),
                [
                    (lambda xs: (lambda view: gen.preload_inputs(view, xs)))(xs)
                    for xs in payloads
                ],
                shared_preload=gen.preload_weights,
                force_scalar=self.params.force_scalar,
            )
            outputs = [
                lanes.lane_dram_read(i, OUT_BASE, spec.hidden) for i in range(batch)
            ]
            scalar = lanes.fallback
        else:
            outputs = self._execute_scaleout(spec, replicas, payloads)
        for task, output in zip(tasks, outputs):
            task.output = output
        self.stats.executions += 1
        self.stats.batch_sizes[batch] = self.stats.batch_sizes.get(batch, 0) + 1
        if scalar:
            self.stats.scalar_lanes += batch
        else:
            self.stats.batched_lanes += batch
        PROFILER.incr("runtime.batch.executions")
        PROFILER.incr("runtime.batch.lanes", batch)

    def _execute_scaleout(self, spec, replicas: int, payloads: list) -> list:
        gens = [
            self._codegen_for(spec.key, replicas, index) for index in range(replicas)
        ]
        programs = build_scaleout_programs(
            spec.kind, self._weights_for(spec.key), spec.timesteps, replicas
        )
        if self.params.force_scalar or len(payloads) == 1:
            # Scalar fallback: one scale-out co-simulation per lane.
            from ..accel.functional import run_scaleout

            PROFILER.incr("batched.scalar_fallbacks")
            outputs = []
            for xs in payloads:
                sims, _fabric = run_scaleout(
                    programs, preload=lambda sim, i: gens[i].preload(sim, xs)
                )
                outputs.append(self._gather(sims, gens, spec, lane=None))
            return outputs
        lanes, _fabric = run_scaleout_batched(
            programs,
            [
                (lambda xs: (lambda view, i: gens[i].preload_inputs(view, xs)))(xs)
                for xs in payloads
            ],
            shared_preload=lambda view, i: gens[i].preload_weights(view),
        )
        return [
            self._gather(lanes, gens, spec, lane=index)
            for index in range(len(payloads))
        ]

    @staticmethod
    def _gather(replica_sims, gens, spec, lane) -> np.ndarray:
        """Concatenate each replica's hidden-state slice into the full h."""
        parts = []
        for gen, sim in zip(gens, replica_sims):
            addr = OUT_BASE + gen.slice.start
            if lane is None:
                parts.append(sim.dram.read(addr, gen.slice.rows))
            else:
                parts.append(sim.lane_dram_read(lane, addr, gen.slice.rows))
        return np.concatenate(parts)
