"""The system controller (paper Fig. 7).

Maintains the mapping database (catalog), performs resource allocation with
the greedy runtime policy — "sorts the mapping results based on the number
of soft blocks in ascending order [and] tries to find a feasible allocation
starting from the first mapping result" — and sends configuration requests
to the HS abstraction's low-level controller.

Placement queries run against a :class:`PlacementIndex`: a per-device-type
bisect-maintained list of ``(free_blocks, fpga_id)`` entries kept current
by board occupancy notifications, so candidate selection is an index probe
instead of a cluster scan.  Deployment lookups are likewise indexed per
model.  Real FPGA-virtualization runtimes keep allocator state incremental
for the same reason; the policies themselves are unchanged.

Policy knobs reproduce the systems of Fig. 12:

* ``same_type_only=True`` is the *restricted* policy that emulates existing
  HS abstractions (one accelerator may only span FPGAs of one device type);
* ``pattern_aware=False`` is the ablation where the ViTAL partitioner is
  used instead of the pattern-guided one (more boundary crossings).
"""

from __future__ import annotations

import bisect
import enum
import itertools
from dataclasses import dataclass

from ..accel.timing import (
    CycleModel,
    TimingParameters,
    DEFAULT_TIMING,
    VirtualizationContext,
)
from ..cluster.topology import FPGACluster
from ..errors import AllocationError
from ..perf.latency import single_fpga_latency, weight_load_seconds
from ..perf.overlap import scaleout_latency
from ..perf.profiling import PROFILER
from ..units import ms
from ..vital.bitstream import LowLevelController
from ..vital.virtual_block import BoardHealth
from ..workloads.deepbench import model_by_key
from .catalog import Catalog, DeploymentPlan
from .deployment import Deployment, DeploymentState, ReplicaPlacement


class PlacementPolicy(enum.Enum):
    """How boards are chosen among feasible candidates."""

    #: Fill the fullest board that still fits (packs small tasks tightly).
    BEST_FIT = "best_fit"
    #: First feasible board in id order.
    FIRST_FIT = "first_fit"
    #: Emptiest board first (spreads load; worst packing — ablation).
    WORST_FIT = "worst_fit"


class PlanOrder(enum.Enum):
    """In which order deployment plans are tried (paper Section 2.3).

    The paper's greedy policy minimises the number of allocated FPGAs to
    minimise inter-FPGA communication; ``WIDEST_FIRST`` is the ablation that
    prefers maximum parallelism and pays the communication instead.
    """

    #: The paper's policy: fewest FPGAs first.
    FEWEST_FPGAS = "fewest_fpgas"
    #: Ablation: widest (most-FPGA) plans first.
    WIDEST_FIRST = "widest_first"


@dataclass
class ControllerStats:
    deployments_created: int = 0
    deployments_evicted: int = 0
    placement_failures: int = 0
    reuse_hits: int = 0
    #: Full placement searches actually run (post fast-reject).
    placement_searches: int = 0
    #: Placement attempts answered by the capacity fast-reject alone.
    fast_rejects: int = 0
    #: Defragmentation plans issued (migration subsystem enabled only).
    defrag_plans: int = 0
    #: Live migrations completed.
    migrations_completed: int = 0
    #: Board failures observed (fault subsystem).
    boards_failed: int = 0
    #: Boards put into drain mode (DEGRADED).
    boards_degraded: int = 0
    #: Boards returned to service.
    boards_repaired: int = 0
    #: Deployments lost to board failures.
    deployments_failed: int = 0
    #: Deployments successfully rebuilt after a failure.
    recoveries: int = 0
    #: Recoveries that had to re-plan at a different width (the paper's
    #: scale-down optimisation as a failure fallback).
    scale_down_recoveries: int = 0
    #: Backoff redeploy retries scheduled by the recovery manager.
    recovery_retries: int = 0
    #: Deployments abandoned after exhausting recovery retries.
    recovery_failures: int = 0
    #: Total backoff delay the recovery manager actually scheduled (the
    #: surfaced retry schedule; capped per attempt at ``retry_cap_s``).
    recovery_backoff_s: float = 0.0
    #: Simulated work lost to failures (time since last checkpoint).
    lost_work_s: float = 0.0
    #: Requests shed by serving admission control (queue bound/token bucket).
    requests_shed: int = 0
    #: Requests expired at dequeue (past deadline, never occupied a board).
    requests_expired: int = 0
    #: Requests abandoned after exhausting their serving retry budget.
    requests_abandoned: int = 0
    #: Placement attempts rejected because circuit breakers held every
    #: feasible board open.
    breaker_rejections: int = 0
    #: Idle deployments switched to a narrower plan under brownout.
    brownout_switches: int = 0


class PlacementIndex:
    """Per-device-type sorted free-capacity index over cluster boards.

    Each device type keeps a bisect-maintained ascending list of
    ``(free_blocks, fpga_id)``; boards push occupancy deltas through the
    :meth:`PhysicalFPGA.subscribe` hook, so the index stays exact even when
    callers allocate on boards directly (tests do).  Queries — best-fit
    candidate order, max free capacity, count of boards above a threshold —
    are O(log n) probes plus the slice actually consumed.

    Board health is surfaced here too: only ``HEALTHY`` boards carry index
    entries, so failed and draining boards are excluded from every
    placement query without the policies having to know about faults.  The
    index subscribes to :meth:`PhysicalFPGA.subscribe_health` and drops or
    re-admits entries on transitions.
    """

    def __init__(self, cluster: FPGACluster):
        self._boards: dict[str, object] = dict(cluster.boards)
        self._by_type: dict[str, list[tuple[int, str]]] = {}
        self._id_order: dict[str, list] = {}
        for board in cluster.boards.values():
            if board.health is BoardHealth.HEALTHY:
                self._by_type.setdefault(board.model.name, []).append(
                    (board.free_blocks, board.fpga_id)
                )
            else:
                self._by_type.setdefault(board.model.name, [])
            self._id_order.setdefault(board.model.name, []).append(board)
            board.subscribe(self._on_change)
            board.subscribe_health(self._on_health)
        for entries in self._by_type.values():
            entries.sort()
        for boards in self._id_order.values():
            boards.sort(key=lambda b: b.fpga_id)

    def _on_change(self, board, old_free: int) -> None:
        if board.health is not BoardHealth.HEALTHY:
            return  # unhealthy boards carry no entry to move
        entries = self._by_type[board.model.name]
        at = bisect.bisect_left(entries, (old_free, board.fpga_id))
        entries.pop(at)
        bisect.insort(entries, (board.free_blocks, board.fpga_id))

    def _on_health(self, board, old_health) -> None:
        was_placeable = old_health is BoardHealth.HEALTHY
        if was_placeable == (board.health is BoardHealth.HEALTHY):
            return  # DEGRADED <-> FAILED: absent either way
        entries = self._by_type[board.model.name]
        if was_placeable:
            at = bisect.bisect_left(entries, (board.free_blocks, board.fpga_id))
            entries.pop(at)
        else:
            bisect.insort(entries, (board.free_blocks, board.fpga_id))

    # -- queries -------------------------------------------------------------

    def device_types(self) -> list:
        return sorted(self._by_type)

    def max_free(self, device_type: str) -> int:
        """Largest free-block count on any board of ``device_type``."""
        entries = self._by_type.get(device_type)
        return entries[-1][0] if entries else 0

    def count_with_at_least(self, device_type: str, blocks: int) -> int:
        """How many boards of ``device_type`` have ``>= blocks`` free."""
        entries = self._by_type.get(device_type, [])
        return len(entries) - bisect.bisect_left(entries, (blocks, ""))

    def boards_best_fit(self, device_type: str) -> list:
        """Boards of one type, fullest-that-fits first ((free, id) order)."""
        boards = self._boards
        return [
            boards[fpga_id] for _, fpga_id in self._by_type.get(device_type, [])
        ]

    def boards_worst_fit(self, device_type: str) -> list:
        """Boards of one type, emptiest first ((-free, id) order)."""
        entries = self._by_type.get(device_type, [])
        boards = self._boards
        ordered = sorted(entries, key=lambda entry: (-entry[0], entry[1]))
        return [boards[fpga_id] for _, fpga_id in ordered]

    def boards_by_id(self, device_type: str) -> list:
        """Placeable boards of one type in stable fpga-id order."""
        return [
            board
            for board in self._id_order.get(device_type, [])
            if board.health is BoardHealth.HEALTHY
        ]

    def check_consistent(self) -> bool:
        """Index entries match a from-scratch recount (invariant tests).

        Only ``HEALTHY`` boards may carry entries, so the recount skips
        unhealthy boards — an entry for a failed board is an inconsistency.
        """
        for device_type, entries in self._by_type.items():
            expected = sorted(
                (board.recount_free_blocks(), board.fpga_id)
                for board in self._id_order[device_type]
                if board.health is BoardHealth.HEALTHY
            )
            if entries != expected:
                return False
        return True


class SystemController:
    """Resource allocation over one cluster, one catalog."""

    def __init__(
        self,
        cluster: FPGACluster,
        catalog: Catalog,
        low_level: LowLevelController,
        same_type_only: bool = False,
        pattern_aware: bool = True,
        placement: PlacementPolicy = PlacementPolicy.BEST_FIT,
        plan_order: "PlanOrder" = None,
        timing: TimingParameters = DEFAULT_TIMING,
        reconfig_s_per_block: float = ms(4.0),
        eviction_patience_s: float = ms(25.0),
        migration_enabled: bool = False,
        migration_params=None,
        recovery_enabled: bool = False,
        recovery_params=None,
    ):
        self.cluster = cluster
        self.catalog = catalog
        self.low_level = low_level
        self.same_type_only = same_type_only
        self.pattern_aware = pattern_aware
        self.placement = placement
        self.plan_order = plan_order or PlanOrder.FEWEST_FPGAS
        self.timing = timing
        self.reconfig_s_per_block = reconfig_s_per_block
        self.eviction_patience_s = eviction_patience_s
        #: Checkpoint/restore + defrag layer; OFF by default so existing
        #: schedules (and the Fig. 12 goldens) are untouched.
        self.migration_enabled = migration_enabled
        self._migration_params = migration_params
        self._migration_engine = None
        #: Fault-recovery layer; OFF by default for the same reason.
        self.recovery_enabled = recovery_enabled
        self._recovery_params = recovery_params
        self._recovery_manager = None
        #: The DES driving this controller, when one is (recovery and
        #: defrag schedule their completions on it; ``None`` = synchronous).
        self._simulator = None
        self.deployments: dict[str, Deployment] = {}
        self.index = PlacementIndex(cluster)
        self.stats = ControllerStats()
        #: Structured operational events (recovery abandonments, serving
        #: transitions); bounded so long chaos runs cannot grow it without
        #: limit.  Consumers read, they don't poll — it is a log, not a bus.
        self.events: list = []
        self.max_events = 4096
        #: Serving brownout: when set, ``deploy`` orders plans by block
        #: footprint ascending (narrowest scale-down plan first) so hot
        #: models shrink instead of monopolising the cluster.
        self.prefer_narrow = False
        self._ids = itertools.count(1)
        self._service_cache: dict = {}
        #: model key -> resident deployments in creation order.
        self._by_model: dict[str, list[Deployment]] = {}

    # -- public API (what the hypervisor calls) -------------------------------------

    def bind_simulator(self, simulator) -> None:
        """Adopt the DES driving this controller.

        Recovery restores and backoff retries become first-class timed
        events on it; without one they execute synchronously (tests, CLI
        one-shots).
        """
        self._simulator = simulator

    def find_idle_deployment(self, model_key: str) -> Deployment | None:
        """An already-resident idle deployment of this model, if any."""
        for deployment in self._by_model.get(model_key, ()):
            if deployment.is_idle:
                return deployment
        return None

    def deployment_count(self, model_key: str) -> int:
        """Resident deployments of one model (busy or idle)."""
        return len(self._by_model.get(model_key, ()))

    def deploy(
        self,
        model_key: str,
        now: float = 0.0,
        waited_s: float = 0.0,
        allow_mixed: bool = True,
    ) -> tuple:
        """Create a new deployment for ``model_key``.

        Returns ``(deployment, reconfig_seconds)``.  Follows the greedy
        policy: try the fewest-FPGAs plan first; when no placement exists,
        evict idle deployments LRU and retry; raise
        :class:`AllocationError` when the model cannot currently be placed.

        ``waited_s`` is how long the requesting task has queued.  Eviction
        is gated twice to prevent reconfiguration thrash on mixed streams:
        the model must have no resident deployment, and the requester must
        have waited out the patience window (which batches same-model work
        between reconfigurations).
        """
        PROFILER.incr("controller.deploy_calls")
        entry = self.catalog.entry(model_by_key(model_key))
        plans = entry.sorted_plans()
        if self.prefer_narrow:
            plans = sorted(plans, key=self.plan_footprint)
        elif self.plan_order is PlanOrder.WIDEST_FIRST:
            plans = list(reversed(plans))
        may_evict = waited_s >= self.eviction_patience_s
        while True:
            if self._any_plan_could_fit(model_key):
                for plan in plans:
                    assignment = self._find_placement(plan, allow_mixed=allow_mixed)
                    if assignment is not None:
                        return self._instantiate(plan, assignment, now)
            else:
                self.stats.fast_rejects += 1
                PROFILER.incr("controller.fast_rejects")
            if not may_evict or not self._evict_one_idle(now, model_key):
                self.stats.placement_failures += 1
                raise AllocationError(
                    f"no feasible allocation for {model_key} "
                    f"(free blocks: {self.cluster.total_free_blocks()})"
                )

    def emit_event(self, event) -> None:
        """Append a structured operational event (bounded ring)."""
        self.events.append(event)
        if len(self.events) > self.max_events:
            del self.events[: len(self.events) - self.max_events]

    @staticmethod
    def plan_footprint(plan: DeploymentPlan) -> int:
        """Total virtual blocks a plan occupies in its cheapest per-type
        image — the size ordering brownout and scale-down switches use."""
        return plan.replicas * min(
            image.virtual_blocks for image in plan.images.values()
        )

    def place_plan(self, plan: DeploymentPlan, now: float) -> tuple | None:
        """Place one specific plan right now, without eviction or plan
        search.  Returns ``(deployment, reconfig_seconds)`` or ``None``
        when no placement exists — the serving layer's brownout switch and
        probes use this to target an exact width."""
        assignment = self._find_placement(plan)
        if assignment is None:
            return None
        return self._instantiate(plan, assignment, now)

    def release(self, deployment: Deployment, now: float) -> None:
        """Return a deployment to idle after a task completes.

        If a board under the deployment failed while it was busy, the
        recovery deferred to this transition runs now — the task's results
        had already streamed out, but the replica configuration is gone and
        must be rebuilt before the deployment can serve again.
        """
        deployment.release(now)
        if deployment.pending_recovery and self.recovery_enabled:
            self.recovery.recover(deployment, now)

    def evict(self, deployment: Deployment) -> None:
        """Tear a deployment down and free its blocks."""
        if deployment.state is not DeploymentState.IDLE:
            raise AllocationError(
                f"cannot evict {deployment.state.value} deployment "
                f"{deployment.deployment_id}"
            )
        self.discard(deployment)
        self.stats.deployments_evicted += 1

    def discard(self, deployment: Deployment) -> None:
        """Drop a deployment regardless of state (the failure path).

        Releases whatever blocks it still holds — releasing on a failed
        board is mechanical bookkeeping, and blocks already reclaimed by a
        repair re-image release as a no-op — and removes it from the
        deployment indexes.  Callers outside the failure path want
        :meth:`evict`, which enforces idleness and counts the eviction.
        """
        for placement in deployment.placements:
            board = self.cluster.board(placement.fpga_id)
            self.low_level.release(board, deployment.deployment_id)
        self.deployments.pop(deployment.deployment_id, None)
        siblings = self._by_model.get(deployment.model_key)
        if siblings is not None:
            try:
                siblings.remove(deployment)
            except ValueError:
                pass
            if not siblings:
                del self._by_model[deployment.model_key]

    # -- board health (fault subsystem) -------------------------------------------------

    @property
    def recovery(self):
        """The failure-recovery manager (created on first use; import is
        lazy to keep :mod:`repro.faults` off the placement hot path)."""
        if self._recovery_manager is None:
            from ..faults.recovery import RecoveryManager

            self._recovery_manager = RecoveryManager(self, self._recovery_params)
        return self._recovery_manager

    def on_board_failure(self, board, now: float = 0.0) -> None:
        """A board died: exclude it from placement and recover residents.

        The health transition drops the board from the placement index;
        with recovery enabled every resident deployment is handed to the
        recovery manager (idle ones re-place immediately, busy/migrating/
        restoring ones defer to their next state transition).
        """
        if board.health is BoardHealth.FAILED:
            return
        board.set_health(BoardHealth.FAILED)
        self.stats.boards_failed += 1
        PROFILER.incr("faults.board_failures")
        if self.recovery_enabled:
            self.recovery.on_board_failure(board, now)

    def on_board_degraded(self, board, now: float = 0.0) -> None:
        """Put a board in drain mode: residents keep serving, no new
        placements land on it (the index drops it like a failure, but no
        state is lost and no recovery runs)."""
        if board.health is not BoardHealth.HEALTHY:
            return
        board.set_health(BoardHealth.DEGRADED)
        self.stats.boards_degraded += 1
        PROFILER.incr("faults.board_degraded")

    def on_board_repair(self, board, now: float = 0.0) -> None:
        """Return a board to service.

        Repairing a FAILED board re-images it: it comes back empty, so any
        blocks still attributed to deployments awaiting deferred recovery
        are reclaimed here (their teardown release later is a no-op).  A
        DEGRADED board simply resumes taking placements.
        """
        if board.health is BoardHealth.HEALTHY:
            return
        if board.health is BoardHealth.FAILED:
            board.reset()
        board.set_health(BoardHealth.HEALTHY)
        self.stats.boards_repaired += 1
        PROFILER.incr("faults.board_repairs")

    # -- migration / defragmentation ---------------------------------------------------

    @property
    def migration(self):
        """The migration engine (created on first use; import is lazy to
        keep :mod:`repro.migration` optional on the placement hot path)."""
        if self._migration_engine is None:
            from ..migration.engine import MigrationEngine

            self._migration_engine = MigrationEngine(
                self, self._migration_params
            )
        return self._migration_engine

    def fragmentation(self) -> dict:
        """Per-device-type external fragmentation (see
        :func:`repro.migration.defrag.cluster_fragmentation`)."""
        from ..migration.defrag import cluster_fragmentation

        return cluster_fragmentation(self.index)

    def plan_defrag(self, model_key: str):
        """The cheapest migration set that would let ``model_key`` place,
        or ``None`` — only when the subsystem is enabled and the failure
        is fragmentation rather than capacity."""
        if not self.migration_enabled:
            return None
        from ..migration.defrag import plan_defrag

        plan = plan_defrag(self, model_key, self.migration)
        if plan is not None:
            self.stats.defrag_plans += 1
            PROFILER.incr("controller.defrag_plans")
        return plan

    def begin_defrag(self, defrag_plan, now: float) -> float:
        """Start every migration in ``defrag_plan``; source and
        destination blocks stay occupied until :meth:`finish_defrag`.
        Returns the total charged cost (the caller schedules the finish
        that far in the future)."""
        total = 0.0
        for migration_plan in defrag_plan.migrations:
            total += self.migration.begin(migration_plan, now)
        return total

    def finish_defrag(self, defrag_plan, now: float) -> None:
        """Complete every migration in ``defrag_plan``."""
        for migration_plan in defrag_plan.migrations:
            self.migration.finish(migration_plan, now)
            self.stats.migrations_completed += 1

    # -- placement search --------------------------------------------------------------

    def _any_plan_could_fit(self, model_key: str) -> bool:
        """Capacity fast-reject: every placement needs at least one board
        able to host one replica image, so when no device type has that much
        free the whole plan loop is skipped (memoized in the catalog)."""
        feasible = self.catalog.placement_feasible
        max_free = self.index.max_free
        return any(
            feasible(model_key, device_type, max_free(device_type))
            for device_type in self.index.device_types()
        )

    def _boards_in_policy_order(self, device_type: str) -> list:
        if self.placement is PlacementPolicy.BEST_FIT:
            return self.index.boards_best_fit(device_type)
        if self.placement is PlacementPolicy.WORST_FIT:
            return self.index.boards_worst_fit(device_type)
        return self.index.boards_by_id(device_type)

    def _candidate_boards(self, plan: DeploymentPlan) -> list:
        boards = [
            board
            for device_type in plan.feasible_types
            for board in self.index.boards_by_id(device_type)
        ]
        if self.placement is PlacementPolicy.BEST_FIT:
            boards.sort(key=lambda b: (b.free_blocks, b.fpga_id))
        elif self.placement is PlacementPolicy.WORST_FIT:
            boards.sort(key=lambda b: (-b.free_blocks, b.fpga_id))
        else:
            boards.sort(key=lambda b: b.fpga_id)
        return boards

    def _find_placement(
        self, plan: DeploymentPlan, allow_mixed: bool = True
    ) -> list | None:
        """Choose one board per replica; ``None`` when impossible now.

        Among feasible assignments the controller prefers the lowest
        estimated service time (so a heterogeneous pairing is used only when
        no faster same-type pair is free), then packs best-fit.
        ``allow_mixed=False`` suppresses cross-type assignments (callers use
        it to keep scarce device types free for other queued models).
        """
        PROFILER.incr("controller.find_placement_calls")
        self.stats.placement_searches += 1
        options: list = []
        for device_type in plan.feasible_types:
            image = plan.images[device_type]
            # Index probe: a same-type assignment needs `replicas` boards
            # with enough free blocks — skip the pick when too few exist.
            if (
                self.index.count_with_at_least(device_type, image.virtual_blocks)
                < plan.replicas
            ):
                continue
            subset = self._boards_in_policy_order(device_type)
            chosen = self._pick_boards(plan, subset)
            if chosen is not None:
                options.append(chosen)
        if options:
            # Same-type assignments first: they are exactly what the
            # restricted policy would choose, so the unrestricted policy is
            # a strict superset — mixed pairings only when same-type is
            # impossible right now.
            return min(
                options,
                key=lambda assignment: self._estimate_service(plan, assignment),
            )
        if not self.same_type_only and plan.replicas > 1 and allow_mixed:
            return self._pick_boards(plan, self._candidate_boards(plan))
        return None

    def _estimate_service(self, plan: DeploymentPlan, assignment: list) -> float:
        """Service-time estimate for an assignment (cached per type mix)."""
        types = tuple(sorted(board.model.name for board, _ in assignment))
        key = (plan.model_key, plan.replicas, types)
        cached = self._service_cache.get(key)
        if cached is None:
            placements = [
                ReplicaPlacement(
                    fpga_id=board.fpga_id,
                    device_type=board.model.name,
                    virtual_blocks=image.virtual_blocks,
                )
                for board, image in assignment
            ]
            cached = self._service_time(plan, placements)
            self._service_cache[key] = cached
        return cached

    def _pick_boards(self, plan: DeploymentPlan, boards: list) -> list | None:
        chosen = []
        used = set()
        for _replica in range(plan.replicas):
            for board in boards:
                if board.fpga_id in used:
                    continue
                image = plan.images.get(board.model.name)
                if image is not None and board.can_host(image.virtual_blocks):
                    chosen.append((board, image))
                    used.add(board.fpga_id)
                    break
            else:
                return None
        return chosen

    def _evict_one_idle(self, now: float, requesting_model: str) -> bool:
        """Reclaim the least-recently-used *stale* idle deployment.

        Victims must be idle past the patience window and belong to a
        different model — hot models keep their copies, over-provisioned
        ones shrink (the rebalancing that keeps mixed streams from
        thrashing while still adapting to skew).
        """
        victims = [
            d
            for d in self.deployments.values()
            if d.is_idle
            and d.model_key != requesting_model
            and now - d.last_used_s >= self.eviction_patience_s
        ]
        if not victims:
            return False
        victim = min(victims, key=lambda d: d.last_used_s)
        self.evict(victim)
        return True

    # -- instantiation ------------------------------------------------------------------

    def _instantiate(self, plan: DeploymentPlan, assignment: list, now: float) -> tuple:
        deployment_id = f"dep-{next(self._ids)}"
        placements = []
        reconfig = 0.0
        for board, image in assignment:
            indices = self.low_level.configure(board, deployment_id, image.artifact)
            placements.append(
                ReplicaPlacement(
                    fpga_id=board.fpga_id,
                    device_type=board.model.name,
                    virtual_blocks=image.virtual_blocks,
                    block_indices=indices,
                )
            )
            reconfig += image.virtual_blocks * self.reconfig_s_per_block
        # Creating a deployment also loads the model's weights.
        reconfig += weight_load_seconds(
            model_by_key(plan.model_key).parameter_count
        )
        deployment = Deployment(
            deployment_id=deployment_id,
            model_key=plan.model_key,
            plan=plan,
            placements=placements,
            last_used_s=now,
            created_s=now,
            checkpoint_origin_s=now,
        )
        deployment.service_s = self._service_time(plan, placements)
        self.deployments[deployment_id] = deployment
        self._by_model.setdefault(plan.model_key, []).append(deployment)
        self.stats.deployments_created += 1
        return deployment, reconfig

    def _service_time(self, plan: DeploymentPlan, placements: list) -> float:
        """Per-task latency on this deployment (the simulator's service)."""
        if plan.replicas == 1:
            image = plan.image_for(placements[0].device_type)
            virt = VirtualizationContext(
                virtual_blocks=image.virtual_blocks,
                pattern_aware=self.pattern_aware,
            )
            return single_fpga_latency(
                plan.programs[0],
                image.instance,
                virtualization=virt,
                frequency_hz=image.frequency_hz,
                params=self.timing,
            ).seconds
        members = [p.fpga_id for p in placements]
        worst = 0.0
        for index, placement in enumerate(placements):
            image = plan.image_for(placement.device_type)
            virt = VirtualizationContext(
                virtual_blocks=image.virtual_blocks,
                pattern_aware=self.pattern_aware,
            )
            model = CycleModel(
                image.instance.with_frequency(image.frequency_hz), self.timing
            )
            report = scaleout_latency(
                plan.programs[min(index, len(plan.programs) - 1)],
                model,
                self.cluster.network,
                members,
                virtualization=virt,
                params=self.timing,
            )
            worst = max(worst, report.total_s)
        return worst
