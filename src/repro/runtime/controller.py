"""The system controller (paper Fig. 7).

Maintains the mapping database (catalog), performs resource allocation with
the greedy runtime policy — "sorts the mapping results based on the number
of soft blocks in ascending order [and] tries to find a feasible allocation
starting from the first mapping result" — and sends configuration requests
to the HS abstraction's low-level controller.

Placement queries run against a :class:`PlacementIndex`: a per-device-type
bisect-maintained list of ``(free_blocks, fpga_id)`` entries kept current
by board occupancy notifications, so candidate selection is an index probe
instead of a cluster scan.  Deployment lookups are likewise indexed per
model.  Real FPGA-virtualization runtimes keep allocator state incremental
for the same reason; the policies themselves are unchanged.

Policy knobs reproduce the systems of Fig. 12:

* ``same_type_only=True`` is the *restricted* policy that emulates existing
  HS abstractions (one accelerator may only span FPGAs of one device type);
* ``pattern_aware=False`` is the ablation where the ViTAL partitioner is
  used instead of the pattern-guided one (more boundary crossings).
"""

from __future__ import annotations

import bisect
import enum
import itertools
from dataclasses import dataclass

from ..accel.timing import (
    CycleModel,
    TimingParameters,
    DEFAULT_TIMING,
    VirtualizationContext,
)
from ..cluster.topology import FPGACluster
from ..errors import AllocationError
from ..perf.latency import single_fpga_latency, weight_load_seconds
from ..perf.overlap import scaleout_latency
from ..perf.profiling import PROFILER
from ..units import ms
from ..vital.bitstream import LowLevelController
from ..vital.virtual_block import BoardHealth
from ..workloads.deepbench import model_by_key
from .catalog import Catalog, DeploymentPlan
from .deployment import Deployment, DeploymentState, ReplicaPlacement


class PlacementPolicy(enum.Enum):
    """How boards are chosen among feasible candidates."""

    #: Fill the fullest board that still fits (packs small tasks tightly).
    BEST_FIT = "best_fit"
    #: First feasible board in id order.
    FIRST_FIT = "first_fit"
    #: Emptiest board first (spreads load; worst packing — ablation).
    WORST_FIT = "worst_fit"


class PlanOrder(enum.Enum):
    """In which order deployment plans are tried (paper Section 2.3).

    The paper's greedy policy minimises the number of allocated FPGAs to
    minimise inter-FPGA communication; ``WIDEST_FIRST`` is the ablation that
    prefers maximum parallelism and pays the communication instead.
    """

    #: The paper's policy: fewest FPGAs first.
    FEWEST_FPGAS = "fewest_fpgas"
    #: Ablation: widest (most-FPGA) plans first.
    WIDEST_FIRST = "widest_first"


@dataclass
class ControllerStats:
    deployments_created: int = 0
    deployments_evicted: int = 0
    placement_failures: int = 0
    reuse_hits: int = 0
    #: Full placement searches actually run (post fast-reject).
    placement_searches: int = 0
    #: Boards examined across all placement searches (the scan-cost metric
    #: the pod router keeps sub-linear in cluster size).
    boards_probed: int = 0
    #: Placement attempts answered by the capacity fast-reject alone.
    fast_rejects: int = 0
    #: Defragmentation plans issued (migration subsystem enabled only).
    defrag_plans: int = 0
    #: Live migrations completed.
    migrations_completed: int = 0
    #: Board failures observed (fault subsystem).
    boards_failed: int = 0
    #: Boards put into drain mode (DEGRADED).
    boards_degraded: int = 0
    #: Boards returned to service.
    boards_repaired: int = 0
    #: Deployments lost to board failures.
    deployments_failed: int = 0
    #: Deployments successfully rebuilt after a failure.
    recoveries: int = 0
    #: Recoveries that had to re-plan at a different width (the paper's
    #: scale-down optimisation as a failure fallback).
    scale_down_recoveries: int = 0
    #: Backoff redeploy retries scheduled by the recovery manager.
    recovery_retries: int = 0
    #: Deployments abandoned after exhausting recovery retries.
    recovery_failures: int = 0
    #: Total backoff delay the recovery manager actually scheduled (the
    #: surfaced retry schedule; capped per attempt at ``retry_cap_s``).
    recovery_backoff_s: float = 0.0
    #: Simulated work lost to failures (time since last checkpoint).
    lost_work_s: float = 0.0
    #: Requests shed by serving admission control (queue bound/token bucket).
    requests_shed: int = 0
    #: Requests expired at dequeue (past deadline, never occupied a board).
    requests_expired: int = 0
    #: Requests abandoned after exhausting their serving retry budget.
    requests_abandoned: int = 0
    #: Placement attempts rejected because circuit breakers held every
    #: feasible board open.
    breaker_rejections: int = 0
    #: Idle deployments switched to a narrower plan under brownout.
    brownout_switches: int = 0
    #: Placement attempts rejected by a tenant quota guard (counted apart
    #: from ``placement_failures``: a quota rejection is not a capacity
    #: shortfall, so it must trigger neither preemption nor defrag).
    quota_rejections: int = 0
    #: Deployments torn down by priority preemption (tenancy layer).
    deployments_preempted: int = 0
    #: Running tasks checkpointed + requeued by preemption.
    tasks_preempted: int = 0


class PlacementIndex:
    """Per-device-type sorted free-capacity index over a set of boards.

    Each device type keeps a bisect-maintained ascending list of
    ``(free_blocks, fpga_id)``; boards push occupancy deltas through the
    :meth:`PhysicalFPGA.subscribe` hook, so the index stays exact even when
    callers allocate on boards directly (tests do).  Queries — best-fit
    candidate order, max free capacity, count of boards above a threshold —
    are O(log n) probes plus the slice actually consumed.

    Board health is surfaced here too: only ``HEALTHY`` boards carry index
    entries, so failed and draining boards are excluded from every
    placement query without the policies having to know about faults.  The
    index subscribes to :meth:`PhysicalFPGA.subscribe_health` and drops or
    re-admits entries on transitions.

    The constructor accepts either a whole :class:`FPGACluster` or any
    iterable of boards — the pod router builds one index per pod over a
    slice of the cluster.  ``version`` counts every entry mutation; derived
    caches (the router's per-(model, pod) feasibility cache) validate
    against it instead of subscribing themselves.
    """

    def __init__(self, boards):
        if isinstance(boards, FPGACluster):
            boards = boards.boards.values()
        self._boards: dict[str, object] = {b.fpga_id: b for b in boards}
        self._by_type: dict[str, list[tuple[int, str]]] = {}
        self._id_order: dict[str, list] = {}
        #: Bumped on every entry mutation (occupancy or health); consumers
        #: cache derived answers keyed by this.
        self.version = 0
        for board in self._boards.values():
            if board.health is BoardHealth.HEALTHY:
                self._by_type.setdefault(board.model.name, []).append(
                    (board.free_blocks, board.fpga_id)
                )
            else:
                self._by_type.setdefault(board.model.name, [])
            self._id_order.setdefault(board.model.name, []).append(board)
            board.subscribe(self._on_change)
            board.subscribe_health(self._on_health)
        for entries in self._by_type.values():
            entries.sort()
        for boards_of_type in self._id_order.values():
            boards_of_type.sort(key=lambda b: b.fpga_id)

    def _pop_exact(self, entries: list, expected: tuple) -> None:
        """Remove ``expected`` from ``entries``, verifying it is present.

        A stale or duplicated notification used to pop whatever entry the
        bisect landed on — silently removing a *different* board's entry
        and corrupting the index.  Now a mismatch raises instead.
        """
        at = bisect.bisect_left(entries, expected)
        if at >= len(entries) or entries[at] != expected:
            raise AllocationError(
                f"placement index corruption: expected entry {expected!r} "
                f"is not present (stale or duplicate board notification)"
            )
        entries.pop(at)

    def _on_change(self, board, old_free: int) -> None:
        if board.health is not BoardHealth.HEALTHY:
            return  # unhealthy boards carry no entry to move
        entries = self._by_type[board.model.name]
        self._pop_exact(entries, (old_free, board.fpga_id))
        bisect.insort(entries, (board.free_blocks, board.fpga_id))
        self.version += 1

    def _on_health(self, board, old_health) -> None:
        was_placeable = old_health is BoardHealth.HEALTHY
        if was_placeable == (board.health is BoardHealth.HEALTHY):
            return  # DEGRADED <-> FAILED: absent either way
        entries = self._by_type[board.model.name]
        if was_placeable:
            self._pop_exact(entries, (board.free_blocks, board.fpga_id))
        else:
            bisect.insort(entries, (board.free_blocks, board.fpga_id))
        self.version += 1

    # -- queries -------------------------------------------------------------

    def device_types(self) -> list:
        return sorted(self._by_type)

    def max_free(self, device_type: str) -> int:
        """Largest free-block count on any board of ``device_type``."""
        entries = self._by_type.get(device_type)
        return entries[-1][0] if entries else 0

    def count_with_at_least(self, device_type: str, blocks: int) -> int:
        """How many boards of ``device_type`` have ``>= blocks`` free."""
        entries = self._by_type.get(device_type, [])
        return len(entries) - bisect.bisect_left(entries, (blocks, ""))

    def boards_best_fit(self, device_type: str) -> list:
        """Boards of one type, fullest-that-fits first ((free, id) order)."""
        boards = self._boards
        return [
            boards[fpga_id] for _, fpga_id in self._by_type.get(device_type, [])
        ]

    def boards_worst_fit(self, device_type: str) -> list:
        """Boards of one type, emptiest first ((-free, id) order)."""
        entries = self._by_type.get(device_type, [])
        boards = self._boards
        ordered = sorted(entries, key=lambda entry: (-entry[0], entry[1]))
        return [boards[fpga_id] for _, fpga_id in ordered]

    def boards_by_id(self, device_type: str) -> list:
        """Placeable boards of one type in stable fpga-id order."""
        return [
            board
            for board in self._id_order.get(device_type, [])
            if board.health is BoardHealth.HEALTHY
        ]

    def entries_with_at_least(self, device_type: str, blocks: int) -> list:
        """Sorted ``(free, fpga_id)`` entries with ``free >= blocks``.

        The ascending slice the placement policies consume: best-fit wants
        it as-is, worst-fit re-keys it descending.  Positioning is one
        bisect, so the infeasible prefix is never touched.
        """
        entries = self._by_type.get(device_type, [])
        return entries[bisect.bisect_left(entries, (blocks, "")) :]

    def board(self, fpga_id: str):
        return self._boards[fpga_id]

    def check_consistent(self) -> bool:
        """Index entries match a from-scratch recount (invariant tests).

        Only ``HEALTHY`` boards may carry entries, so the recount skips
        unhealthy boards — an entry for a failed board is an inconsistency.
        """
        for device_type, entries in self._by_type.items():
            expected = sorted(
                (board.recount_free_blocks(), board.fpga_id)
                for board in self._id_order[device_type]
                if board.health is BoardHealth.HEALTHY
            )
            if entries != expected:
                return False
        return True


class SystemController:
    """Resource allocation over one cluster, one catalog."""

    #: Most-promising pods a defragmentation attempt will plan inside
    #: before giving up — keeps the failure path's scan cost constant as
    #: the cluster grows (a single-pod cluster always tries its one pod).
    DEFRAG_POD_ATTEMPTS = 4

    def __init__(
        self,
        cluster: FPGACluster,
        catalog: Catalog,
        low_level: LowLevelController,
        same_type_only: bool = False,
        pattern_aware: bool = True,
        placement: PlacementPolicy = PlacementPolicy.BEST_FIT,
        plan_order: "PlanOrder" = None,
        timing: TimingParameters = DEFAULT_TIMING,
        reconfig_s_per_block: float = ms(4.0),
        eviction_patience_s: float = ms(25.0),
        migration_enabled: bool = False,
        migration_params=None,
        recovery_enabled: bool = False,
        recovery_params=None,
        pod_size: int | None = None,
    ):
        self.cluster = cluster
        self.catalog = catalog
        self.low_level = low_level
        self.same_type_only = same_type_only
        self.pattern_aware = pattern_aware
        self.placement = placement
        self.plan_order = plan_order or PlanOrder.FEWEST_FPGAS
        self.timing = timing
        self.reconfig_s_per_block = reconfig_s_per_block
        self.eviction_patience_s = eviction_patience_s
        #: Checkpoint/restore + defrag layer; OFF by default so existing
        #: schedules (and the Fig. 12 goldens) are untouched.
        self.migration_enabled = migration_enabled
        self._migration_params = migration_params
        self._migration_engine = None
        #: Fault-recovery layer; OFF by default for the same reason.
        self.recovery_enabled = recovery_enabled
        self._recovery_params = recovery_params
        self._recovery_manager = None
        #: The DES driving this controller, when one is (recovery and
        #: defrag schedule their completions on it; ``None`` = synchronous).
        self._simulator = None
        self.deployments: dict[str, Deployment] = {}
        # The control plane is sharded: boards group into pods, each with
        # its own PlacementIndex, behind a router that keeps per-pod
        # summaries and a per-(model, pod) feasibility cache.  One pod
        # (any cluster up to pod_size boards — the Fig. 12 platform) is
        # exactly the old flat index, query order included.
        from .pods import PodRouter  # import here: pods imports this module

        self.index = PodRouter(cluster, pod_size)
        self.pod_size = self.index.pod_size
        #: fpga_id -> deployment ids with a replica on that board, so the
        #: fault path scales with the board's residents, not the fleet.
        self._residents_by_board: dict[str, set] = {}
        self.stats = ControllerStats()
        #: Structured operational events (recovery abandonments, serving
        #: transitions); bounded so long chaos runs cannot grow it without
        #: limit.  Consumers read, they don't poll — it is a log, not a bus.
        self.events: list = []
        self.max_events = 4096
        #: Serving brownout: when set, ``deploy`` orders plans by block
        #: footprint ascending (narrowest scale-down plan first) so hot
        #: models shrink instead of monopolising the cluster.
        self.prefer_narrow = False
        self._ids = itertools.count(1)
        self._service_cache: dict = {}
        #: model key -> resident deployments in creation order.
        self._by_model: dict[str, list[Deployment]] = {}
        #: Optional :class:`~repro.autoscale.ReplicaLedger`: when set, every
        #: instantiation/discard is reported so resident capacity can be
        #: integrated exactly over time (the autoscale bench's cost metric).
        self.ledger = None
        #: Tenant on whose behalf the current placement runs (the tenancy
        #: scheduler sets it around each ``try_start``); new deployments are
        #: stamped with it.  ``""`` = untenanted, the single-tenant default.
        self.tenant_context = ""
        #: Optional quota guard ``callable(plan) -> bool`` consulted before
        #: any plan is instantiated; a False filters that plan out.  Set
        #: per-call by the tenancy scheduler, ``None`` otherwise.
        self.placement_guard = None
        #: When True, :meth:`find_idle_deployment` only reuses deployments
        #: owned by the current tenant context — tenants never ride each
        #: other's resident accelerators, so quota attribution stays exact.
        self.tenant_isolation = False

    # -- public API (what the hypervisor calls) -------------------------------------

    def bind_simulator(self, simulator) -> None:
        """Adopt the DES driving this controller.

        Recovery restores and backoff retries become first-class timed
        events on it; without one they execute synchronously (tests, CLI
        one-shots).
        """
        self._simulator = simulator

    def _now(self) -> float:
        """Current simulated time, or 0.0 in synchronous mode (paths that
        already carry ``now`` should pass it instead of calling this)."""
        if self._simulator is not None:
            return self._simulator.queue.now
        return 0.0

    def deployments_of(self, model_key: str) -> list:
        """Resident deployments of one model, in creation order."""
        return list(self._by_model.get(model_key, ()))

    def models_resident(self) -> list:
        """Model keys with at least one resident deployment."""
        return list(self._by_model)

    def find_idle_deployment(self, model_key: str) -> Deployment | None:
        """An already-resident idle deployment of this model, if any.

        With :attr:`tenant_isolation` on, only deployments owned by the
        current :attr:`tenant_context` qualify — reuse across tenants would
        let one tenant serve from blocks charged to another's quota.
        """
        tenant = self.tenant_context if self.tenant_isolation else None
        for deployment in self._by_model.get(model_key, ()):
            if deployment.is_idle and (
                tenant is None or deployment.tenant == tenant
            ):
                return deployment
        return None

    def deployment_count(self, model_key: str) -> int:
        """Resident deployments of one model (busy or idle)."""
        return len(self._by_model.get(model_key, ()))

    def deploy(
        self,
        model_key: str,
        now: float = 0.0,
        waited_s: float = 0.0,
        allow_mixed: bool = True,
    ) -> tuple:
        """Create a new deployment for ``model_key``.

        Returns ``(deployment, reconfig_seconds)``.  Follows the greedy
        policy: try the fewest-FPGAs plan first; when no placement exists,
        evict idle deployments LRU and retry; raise
        :class:`AllocationError` when the model cannot currently be placed.

        ``waited_s`` is how long the requesting task has queued.  Eviction
        is gated twice to prevent reconfiguration thrash on mixed streams:
        the model must have no resident deployment, and the requester must
        have waited out the patience window (which batches same-model work
        between reconfigurations).
        """
        PROFILER.incr("controller.deploy_calls")
        entry = self.catalog.entry(model_by_key(model_key))
        plans = entry.sorted_plans()
        if self.prefer_narrow:
            plans = sorted(plans, key=self.plan_footprint)
        elif self.plan_order is PlanOrder.WIDEST_FIRST:
            plans = list(reversed(plans))
        if self.placement_guard is not None:
            allowed = [plan for plan in plans if self.placement_guard(plan)]
            if not allowed:
                # Every plan would bust the tenant's quota.  Deliberately
                # not a placement_failure: quota exhaustion is a policy
                # outcome, and counting it as capacity would make the
                # serving retry/preemption machinery fight the quota.
                self.stats.quota_rejections += 1
                PROFILER.incr("controller.quota_rejections")
                raise AllocationError(
                    f"tenant quota: no plan for {model_key} fits within the "
                    f"quota of tenant {self.tenant_context!r}"
                )
            plans = allowed
        may_evict = waited_s >= self.eviction_patience_s
        while True:
            if self._any_plan_could_fit(model_key):
                for plan in plans:
                    assignment = self._find_placement(plan, allow_mixed=allow_mixed)
                    if assignment is not None:
                        return self._instantiate(plan, assignment, now)
            else:
                self.stats.fast_rejects += 1
                PROFILER.incr("controller.fast_rejects")
            if not may_evict or not self._evict_one_idle(now, model_key):
                self.stats.placement_failures += 1
                # Diagnostic from the pod summaries (O(pods)), not a
                # cluster walk — this raise is hot under backlog.
                largest = {
                    device_type: self.index.max_free(device_type)
                    for device_type in self.index.device_types()
                }
                raise AllocationError(
                    f"no feasible allocation for {model_key} "
                    f"(largest free hole per type: {largest})"
                )

    def emit_event(self, event) -> None:
        """Append a structured operational event (bounded ring)."""
        self.events.append(event)
        if len(self.events) > self.max_events:
            del self.events[: len(self.events) - self.max_events]

    @staticmethod
    def plan_footprint(plan: DeploymentPlan) -> int:
        """Total virtual blocks a plan occupies in its cheapest per-type
        image — the size ordering brownout and scale-down switches use."""
        return plan.replicas * min(
            image.virtual_blocks for image in plan.images.values()
        )

    def place_plan(self, plan: DeploymentPlan, now: float) -> tuple | None:
        """Place one specific plan right now, without eviction or plan
        search.  Returns ``(deployment, reconfig_seconds)`` or ``None``
        when no placement exists — the serving layer's brownout switch and
        probes use this to target an exact width."""
        if self.placement_guard is not None and not self.placement_guard(plan):
            self.stats.quota_rejections += 1
            PROFILER.incr("controller.quota_rejections")
            return None
        assignment = self._find_placement(plan)
        if assignment is None:
            return None
        return self._instantiate(plan, assignment, now)

    def release(self, deployment: Deployment, now: float) -> None:
        """Return a deployment to idle after a task completes.

        If a board under the deployment failed while it was busy, the
        recovery deferred to this transition runs now — the task's results
        had already streamed out, but the replica configuration is gone and
        must be rebuilt before the deployment can serve again.
        """
        deployment.release(now)
        if deployment.pending_recovery and self.recovery_enabled:
            self.recovery.recover(deployment, now)

    def evict(self, deployment: Deployment) -> None:
        """Tear a deployment down and free its blocks."""
        if deployment.state is not DeploymentState.IDLE:
            raise AllocationError(
                f"cannot evict {deployment.state.value} deployment "
                f"{deployment.deployment_id}"
            )
        self.discard(deployment)
        self.stats.deployments_evicted += 1

    def discard(self, deployment: Deployment) -> None:
        """Drop a deployment regardless of state (the failure path).

        Releases whatever blocks it still holds — releasing on a failed
        board is mechanical bookkeeping, and blocks already reclaimed by a
        repair re-image release as a no-op — and removes it from the
        deployment indexes.  Callers outside the failure path want
        :meth:`evict`, which enforces idleness and counts the eviction.
        """
        for placement in deployment.placements:
            board = self.cluster.board(placement.fpga_id)
            self.low_level.release(board, deployment.deployment_id)
            self.untrack_resident(placement.fpga_id, deployment.deployment_id)
        self.deployments.pop(deployment.deployment_id, None)
        if self.ledger is not None:
            self.ledger.on_discard(deployment, self._now())
        siblings = self._by_model.get(deployment.model_key)
        if siblings is not None:
            try:
                siblings.remove(deployment)
            except ValueError:
                pass
            if not siblings:
                del self._by_model[deployment.model_key]

    # -- board-residency reverse index ---------------------------------------------------

    def track_resident(self, fpga_id: str, deployment_id: str) -> None:
        """Record that a deployment has a replica on ``fpga_id``."""
        self._residents_by_board.setdefault(fpga_id, set()).add(deployment_id)

    def untrack_resident(self, fpga_id: str, deployment_id: str) -> None:
        residents = self._residents_by_board.get(fpga_id)
        if residents is not None:
            residents.discard(deployment_id)
            if not residents:
                del self._residents_by_board[fpga_id]

    def deployments_on(self, fpga_id: str) -> list:
        """Live deployments with a replica on ``fpga_id``, in creation
        order.  The failure-intake path uses this instead of scanning
        every deployment in the fleet."""
        residents = self._residents_by_board.get(fpga_id, ())
        return sorted(
            (
                self.deployments[deployment_id]
                for deployment_id in residents
                if deployment_id in self.deployments
            ),
            key=lambda d: int(d.deployment_id.rsplit("-", 1)[1]),
        )

    def check_residents_consistent(self) -> bool:
        """The reverse residency index equals a from-scratch rebuild from
        the deployment placement records (invariant tests)."""
        expected: dict[str, set] = {}
        for deployment in self.deployments.values():
            for placement in deployment.placements:
                expected.setdefault(placement.fpga_id, set()).add(
                    deployment.deployment_id
                )
        return expected == self._residents_by_board

    # -- board health (fault subsystem) -------------------------------------------------

    @property
    def recovery(self):
        """The failure-recovery manager (created on first use; import is
        lazy to keep :mod:`repro.faults` off the placement hot path)."""
        if self._recovery_manager is None:
            from ..faults.recovery import RecoveryManager

            self._recovery_manager = RecoveryManager(self, self._recovery_params)
        return self._recovery_manager

    def on_board_failure(self, board, now: float = 0.0) -> None:
        """A board died: exclude it from placement and recover residents.

        The health transition drops the board from the placement index;
        with recovery enabled every resident deployment is handed to the
        recovery manager (idle ones re-place immediately, busy/migrating/
        restoring ones defer to their next state transition).
        """
        if board.health is BoardHealth.FAILED:
            return
        board.set_health(BoardHealth.FAILED)
        self.stats.boards_failed += 1
        PROFILER.incr("faults.board_failures")
        if self.recovery_enabled:
            self.recovery.on_board_failure(board, now)

    def on_board_degraded(self, board, now: float = 0.0) -> None:
        """Put a board in drain mode: residents keep serving, no new
        placements land on it (the index drops it like a failure, but no
        state is lost and no recovery runs)."""
        if board.health is not BoardHealth.HEALTHY:
            return
        board.set_health(BoardHealth.DEGRADED)
        self.stats.boards_degraded += 1
        PROFILER.incr("faults.board_degraded")

    def on_board_repair(self, board, now: float = 0.0) -> None:
        """Return a board to service.

        Repairing a FAILED board re-images it: it comes back empty, so any
        blocks still attributed to deployments awaiting deferred recovery
        are reclaimed here (their teardown release later is a no-op).  A
        DEGRADED board simply resumes taking placements.
        """
        if board.health is BoardHealth.HEALTHY:
            return
        if board.health is BoardHealth.FAILED:
            board.reset()
        board.set_health(BoardHealth.HEALTHY)
        self.stats.boards_repaired += 1
        PROFILER.incr("faults.board_repairs")

    # -- migration / defragmentation ---------------------------------------------------

    @property
    def migration(self):
        """The migration engine (created on first use; import is lazy to
        keep :mod:`repro.migration` optional on the placement hot path)."""
        if self._migration_engine is None:
            from ..migration.engine import MigrationEngine

            self._migration_engine = MigrationEngine(
                self, self._migration_params
            )
        return self._migration_engine

    def fragmentation(self) -> dict:
        """Per-device-type external fragmentation (see
        :func:`repro.migration.defrag.cluster_fragmentation`)."""
        from ..migration.defrag import cluster_fragmentation

        return cluster_fragmentation(self.index)

    def plan_defrag(self, model_key: str):
        """The cheapest migration set that would let ``model_key`` place,
        or ``None`` — only when the subsystem is enabled and the failure
        is fragmentation rather than capacity.

        Planning is *pod-local*: the router orders pods by aggregate free
        capacity and the planner runs inside one pod's index at a time
        (victims and destinations both pod members), so the scan cost per
        attempt is bounded by the pod size, not the cluster.  On a
        single-pod cluster this is exactly the old cluster-wide plan.
        """
        if not self.migration_enabled:
            return None
        from ..migration.defrag import plan_defrag

        plan = None
        for pod in self.index.defrag_pod_order()[: self.DEFRAG_POD_ATTEMPTS]:
            plan = plan_defrag(self, model_key, self.migration, index=pod.index)
            if plan is not None:
                break
        if plan is not None:
            self.stats.defrag_plans += 1
            PROFILER.incr("controller.defrag_plans")
        return plan

    def begin_defrag(self, defrag_plan, now: float) -> float:
        """Start every migration in ``defrag_plan``; source and
        destination blocks stay occupied until :meth:`finish_defrag`.
        Returns the total charged cost (the caller schedules the finish
        that far in the future)."""
        total = 0.0
        for migration_plan in defrag_plan.migrations:
            total += self.migration.begin(migration_plan, now)
        return total

    def finish_defrag(self, defrag_plan, now: float) -> None:
        """Complete every migration in ``defrag_plan``."""
        for migration_plan in defrag_plan.migrations:
            self.migration.finish(migration_plan, now)
            self.stats.migrations_completed += 1

    # -- placement search --------------------------------------------------------------

    def _any_plan_could_fit(self, model_key: str) -> bool:
        """Capacity fast-reject: every placement needs at least one board
        able to host one replica image, so when no pod has a board with
        that much free the whole plan loop is skipped.  Answers come from
        the router's per-(model, pod) feasibility cache, revalidated by
        pod index version — a mutation in one pod invalidates one pod's
        entry, not the fleet's."""
        return self.index.any_feasible(
            model_key, self.catalog.placement_feasible
        )

    def _find_placement(
        self, plan: DeploymentPlan, allow_mixed: bool = True
    ) -> list | None:
        """Choose one board per replica; ``None`` when impossible now.

        Among feasible assignments the controller prefers the lowest
        estimated service time (so a heterogeneous pairing is used only when
        no faster same-type pair is free), then packs best-fit.
        ``allow_mixed=False`` suppresses cross-type assignments (callers use
        it to keep scarce device types free for other queued models).

        Candidates stream lazily out of the pod router in the flat policy
        order, so a search touches the few boards it actually picks from
        (plus one summary probe per pod) instead of the whole cluster.
        """
        PROFILER.incr("controller.find_placement_calls")
        self.stats.placement_searches += 1
        options: list = []
        for device_type in plan.feasible_types:
            image = plan.images[device_type]
            # Summary probe: a same-type assignment needs `replicas` boards
            # with enough free blocks — skip the pick when too few exist.
            if (
                self.index.count_with_at_least(device_type, image.virtual_blocks)
                < plan.replicas
            ):
                continue
            chosen = self._pick_boards(
                plan,
                self.index.iter_candidates(
                    {device_type: image.virtual_blocks}, self.placement
                ),
            )
            if chosen is not None:
                options.append(chosen)
        if options:
            # Same-type assignments first: they are exactly what the
            # restricted policy would choose, so the unrestricted policy is
            # a strict superset — mixed pairings only when same-type is
            # impossible right now.
            return min(
                options,
                key=lambda assignment: self._estimate_service(plan, assignment),
            )
        if not self.same_type_only and plan.replicas > 1 and allow_mixed:
            requirements = {
                device_type: plan.images[device_type].virtual_blocks
                for device_type in plan.feasible_types
            }
            return self._pick_boards(
                plan, self.index.iter_candidates(requirements, self.placement)
            )
        return None

    def _hop_signature(self, assignment: list) -> int:
        """Ring-distance identity of an assignment: the worst pairwise hop
        count among its boards.  ``_service_time`` depends on the member
        boards only through the all-to-all exchange's critical path, which
        is exactly this number — so it is the one piece of placement
        identity the service cache must key on."""
        if len(assignment) < 2:
            return 0
        network = self.cluster.network
        if network is None:
            return 0
        ids = [board.fpga_id for board, _ in assignment]
        return max(
            network.hops(a, b)
            for at, a in enumerate(ids)
            for b in ids[at + 1 :]
        )

    def _estimate_service(self, plan: DeploymentPlan, assignment: list) -> float:
        """Service-time estimate for an assignment.

        Cached per (model, replicas, ordered device types, ring-hop
        signature): the estimate is a pure function of exactly those
        inputs.  Keying on the type mix alone (the old key) let two
        assignments with identical types but different ring adjacency
        share one entry, so ``_find_placement``'s min() could pick the
        slower pair on the stale number.
        """
        types = tuple(board.model.name for board, _ in assignment)
        key = (plan.model_key, plan.replicas, types,
               self._hop_signature(assignment))
        cached = self._service_cache.get(key)
        if cached is None:
            placements = [
                ReplicaPlacement(
                    fpga_id=board.fpga_id,
                    device_type=board.model.name,
                    virtual_blocks=image.virtual_blocks,
                )
                for board, image in assignment
            ]
            cached = self._service_time(plan, placements)
            self._service_cache[key] = cached
        return cached

    def _pick_boards(self, plan: DeploymentPlan, boards) -> list | None:
        """First ``plan.replicas`` feasible boards from an iterable.

        One pass: candidate feasibility (image exists for the board's type,
        enough free blocks) is static while a search runs, so taking the
        first k feasible boards in stream order chooses exactly what the
        old per-replica rescan over a materialised list chose.
        """
        chosen: list = []
        probed = 0
        for board in boards:
            probed += 1
            image = plan.images.get(board.model.name)
            if image is not None and board.can_host(image.virtual_blocks):
                chosen.append((board, image))
                if len(chosen) == plan.replicas:
                    break
        self.stats.boards_probed += probed
        PROFILER.incr("controller.board_probes", probed)
        return chosen if len(chosen) == plan.replicas else None

    def _evict_one_idle(self, now: float, requesting_model: str) -> bool:
        """Reclaim the least-recently-used *stale* idle deployment.

        Victims must be idle past the patience window and belong to a
        different model — hot models keep their copies, over-provisioned
        ones shrink (the rebalancing that keeps mixed streams from
        thrashing while still adapting to skew).  Under tenant isolation
        the same-model exemption only shields the requesting tenant's own
        copies: another tenant's idle deployment cannot be reused anyway,
        so leaving it unevictable would wedge same-model cross-tenant
        traffic on a full cluster.
        """
        victims = [
            d
            for d in self.deployments.values()
            if d.is_idle
            and (
                d.model_key != requesting_model
                or (
                    self.tenant_isolation
                    and d.tenant != self.tenant_context
                )
            )
            and now - d.last_used_s >= self.eviction_patience_s
        ]
        if not victims:
            return False
        victim = min(victims, key=lambda d: d.last_used_s)
        self.evict(victim)
        return True

    # -- instantiation ------------------------------------------------------------------

    def _instantiate(self, plan: DeploymentPlan, assignment: list, now: float) -> tuple:
        deployment_id = f"dep-{next(self._ids)}"
        placements = []
        reconfig = 0.0
        for board, image in assignment:
            indices = self.low_level.configure(board, deployment_id, image.artifact)
            placements.append(
                ReplicaPlacement(
                    fpga_id=board.fpga_id,
                    device_type=board.model.name,
                    virtual_blocks=image.virtual_blocks,
                    block_indices=indices,
                )
            )
            reconfig += image.virtual_blocks * self.reconfig_s_per_block
        # Creating a deployment also loads the model's weights.
        reconfig += weight_load_seconds(
            model_by_key(plan.model_key).parameter_count
        )
        deployment = Deployment(
            deployment_id=deployment_id,
            model_key=plan.model_key,
            plan=plan,
            placements=placements,
            last_used_s=now,
            created_s=now,
            checkpoint_origin_s=now,
            tenant=self.tenant_context,
        )
        deployment.service_s = self._service_time(plan, placements)
        self.deployments[deployment_id] = deployment
        for placement in placements:
            self.track_resident(placement.fpga_id, deployment_id)
        self._by_model.setdefault(plan.model_key, []).append(deployment)
        self.stats.deployments_created += 1
        if self.ledger is not None:
            self.ledger.on_instantiate(deployment, now)
        return deployment, reconfig

    def _service_time(self, plan: DeploymentPlan, placements: list) -> float:
        """Per-task latency on this deployment (the simulator's service)."""
        if plan.replicas == 1:
            image = plan.image_for(placements[0].device_type)
            virt = VirtualizationContext(
                virtual_blocks=image.virtual_blocks,
                pattern_aware=self.pattern_aware,
            )
            return single_fpga_latency(
                plan.programs[0],
                image.instance,
                virtualization=virt,
                frequency_hz=image.frequency_hz,
                params=self.timing,
            ).seconds
        members = [p.fpga_id for p in placements]
        worst = 0.0
        for index, placement in enumerate(placements):
            image = plan.image_for(placement.device_type)
            virt = VirtualizationContext(
                virtual_blocks=image.virtual_blocks,
                pattern_aware=self.pattern_aware,
            )
            model = CycleModel(
                image.instance.with_frequency(image.frequency_hz), self.timing
            )
            report = scaleout_latency(
                plan.programs[min(index, len(plan.programs) - 1)],
                model,
                self.cluster.network,
                members,
                virtualization=virt,
                params=self.timing,
            )
            worst = max(worst, report.total_s)
        return worst
