"""The system controller (paper Fig. 7).

Maintains the mapping database (catalog), performs resource allocation with
the greedy runtime policy — "sorts the mapping results based on the number
of soft blocks in ascending order [and] tries to find a feasible allocation
starting from the first mapping result" — and sends configuration requests
to the HS abstraction's low-level controller.

Policy knobs reproduce the systems of Fig. 12:

* ``same_type_only=True`` is the *restricted* policy that emulates existing
  HS abstractions (one accelerator may only span FPGAs of one device type);
* ``pattern_aware=False`` is the ablation where the ViTAL partitioner is
  used instead of the pattern-guided one (more boundary crossings).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from ..accel.timing import (
    CycleModel,
    TimingParameters,
    DEFAULT_TIMING,
    VirtualizationContext,
)
from ..cluster.topology import FPGACluster
from ..errors import AllocationError
from ..perf.latency import single_fpga_latency, weight_load_seconds
from ..perf.overlap import scaleout_latency
from ..units import ms
from ..vital.bitstream import LowLevelController
from ..workloads.deepbench import model_by_key
from .catalog import Catalog, DeploymentPlan
from .deployment import Deployment, DeploymentState, ReplicaPlacement


class PlacementPolicy(enum.Enum):
    """How boards are chosen among feasible candidates."""

    #: Fill the fullest board that still fits (packs small tasks tightly).
    BEST_FIT = "best_fit"
    #: First feasible board in id order.
    FIRST_FIT = "first_fit"
    #: Emptiest board first (spreads load; worst packing — ablation).
    WORST_FIT = "worst_fit"


class PlanOrder(enum.Enum):
    """In which order deployment plans are tried (paper Section 2.3).

    The paper's greedy policy minimises the number of allocated FPGAs to
    minimise inter-FPGA communication; ``WIDEST_FIRST`` is the ablation that
    prefers maximum parallelism and pays the communication instead.
    """

    #: The paper's policy: fewest FPGAs first.
    FEWEST_FPGAS = "fewest_fpgas"
    #: Ablation: widest (most-FPGA) plans first.
    WIDEST_FIRST = "widest_first"


@dataclass
class ControllerStats:
    deployments_created: int = 0
    deployments_evicted: int = 0
    placement_failures: int = 0
    reuse_hits: int = 0


class SystemController:
    """Resource allocation over one cluster, one catalog."""

    def __init__(
        self,
        cluster: FPGACluster,
        catalog: Catalog,
        low_level: LowLevelController,
        same_type_only: bool = False,
        pattern_aware: bool = True,
        placement: PlacementPolicy = PlacementPolicy.BEST_FIT,
        plan_order: "PlanOrder" = None,
        timing: TimingParameters = DEFAULT_TIMING,
        reconfig_s_per_block: float = ms(4.0),
        eviction_patience_s: float = ms(25.0),
    ):
        self.cluster = cluster
        self.catalog = catalog
        self.low_level = low_level
        self.same_type_only = same_type_only
        self.pattern_aware = pattern_aware
        self.placement = placement
        self.plan_order = plan_order or PlanOrder.FEWEST_FPGAS
        self.timing = timing
        self.reconfig_s_per_block = reconfig_s_per_block
        self.eviction_patience_s = eviction_patience_s
        self.deployments: dict[str, Deployment] = {}
        self.stats = ControllerStats()
        self._ids = itertools.count(1)
        self._service_cache: dict = {}

    # -- public API (what the hypervisor calls) -------------------------------------

    def find_idle_deployment(self, model_key: str) -> Deployment | None:
        """An already-resident idle deployment of this model, if any."""
        for deployment in self.deployments.values():
            if deployment.model_key == model_key and deployment.is_idle:
                return deployment
        return None

    def deploy(
        self,
        model_key: str,
        now: float = 0.0,
        waited_s: float = 0.0,
        allow_mixed: bool = True,
    ) -> tuple:
        """Create a new deployment for ``model_key``.

        Returns ``(deployment, reconfig_seconds)``.  Follows the greedy
        policy: try the fewest-FPGAs plan first; when no placement exists,
        evict idle deployments LRU and retry; raise
        :class:`AllocationError` when the model cannot currently be placed.

        ``waited_s`` is how long the requesting task has queued.  Eviction
        is gated twice to prevent reconfiguration thrash on mixed streams:
        the model must have no resident deployment, and the requester must
        have waited out the patience window (which batches same-model work
        between reconfigurations).
        """
        entry = self.catalog.entry(model_by_key(model_key))
        plans = entry.sorted_plans()
        if self.plan_order is PlanOrder.WIDEST_FIRST:
            plans = list(reversed(plans))
        may_evict = waited_s >= self.eviction_patience_s
        while True:
            for plan in plans:
                assignment = self._find_placement(plan, allow_mixed=allow_mixed)
                if assignment is not None:
                    return self._instantiate(plan, assignment, now)
            if not may_evict or not self._evict_one_idle(now, model_key):
                self.stats.placement_failures += 1
                raise AllocationError(
                    f"no feasible allocation for {model_key} "
                    f"(free blocks: {self.cluster.total_free_blocks()})"
                )

    def release(self, deployment: Deployment, now: float) -> None:
        """Return a deployment to idle after a task completes."""
        deployment.release(now)

    def evict(self, deployment: Deployment) -> None:
        """Tear a deployment down and free its blocks."""
        if deployment.state is DeploymentState.BUSY:
            raise AllocationError(
                f"cannot evict busy deployment {deployment.deployment_id}"
            )
        for placement in deployment.placements:
            board = self.cluster.board(placement.fpga_id)
            self.low_level.release(board, deployment.deployment_id)
        del self.deployments[deployment.deployment_id]
        self.stats.deployments_evicted += 1

    # -- placement search --------------------------------------------------------------

    def _candidate_boards(self, plan: DeploymentPlan) -> list:
        boards = [
            board
            for board in self.cluster.boards.values()
            if board.model.name in plan.images
        ]
        if self.placement is PlacementPolicy.BEST_FIT:
            boards.sort(key=lambda b: (b.free_blocks, b.fpga_id))
        elif self.placement is PlacementPolicy.WORST_FIT:
            boards.sort(key=lambda b: (-b.free_blocks, b.fpga_id))
        else:
            boards.sort(key=lambda b: b.fpga_id)
        return boards

    def _find_placement(
        self, plan: DeploymentPlan, allow_mixed: bool = True
    ) -> list | None:
        """Choose one board per replica; ``None`` when impossible now.

        Among feasible assignments the controller prefers the lowest
        estimated service time (so a heterogeneous pairing is used only when
        no faster same-type pair is free), then packs best-fit.
        ``allow_mixed=False`` suppresses cross-type assignments (callers use
        it to keep scarce device types free for other queued models).
        """
        candidates = self._candidate_boards(plan)
        options: list = []
        for device_type in plan.feasible_types:
            subset = [b for b in candidates if b.model.name == device_type]
            chosen = self._pick_boards(plan, subset)
            if chosen is not None:
                options.append(chosen)
        if options:
            # Same-type assignments first: they are exactly what the
            # restricted policy would choose, so the unrestricted policy is
            # a strict superset — mixed pairings only when same-type is
            # impossible right now.
            return min(
                options,
                key=lambda assignment: self._estimate_service(plan, assignment),
            )
        if not self.same_type_only and plan.replicas > 1 and allow_mixed:
            return self._pick_boards(plan, candidates)
        return None

    def _estimate_service(self, plan: DeploymentPlan, assignment: list) -> float:
        """Service-time estimate for an assignment (cached per type mix)."""
        types = tuple(sorted(board.model.name for board, _ in assignment))
        key = (plan.model_key, plan.replicas, types)
        cached = self._service_cache.get(key)
        if cached is None:
            placements = [
                ReplicaPlacement(
                    fpga_id=board.fpga_id,
                    device_type=board.model.name,
                    virtual_blocks=image.virtual_blocks,
                )
                for board, image in assignment
            ]
            cached = self._service_time(plan, placements)
            self._service_cache[key] = cached
        return cached

    def _pick_boards(self, plan: DeploymentPlan, boards: list) -> list | None:
        chosen = []
        used = set()
        for _replica in range(plan.replicas):
            for board in boards:
                if board.fpga_id in used:
                    continue
                image = plan.images.get(board.model.name)
                if image is not None and board.can_host(image.virtual_blocks):
                    chosen.append((board, image))
                    used.add(board.fpga_id)
                    break
            else:
                return None
        return chosen

    def _evict_one_idle(self, now: float, requesting_model: str) -> bool:
        """Reclaim the least-recently-used *stale* idle deployment.

        Victims must be idle past the patience window and belong to a
        different model — hot models keep their copies, over-provisioned
        ones shrink (the rebalancing that keeps mixed streams from
        thrashing while still adapting to skew).
        """
        victims = [
            d
            for d in self.deployments.values()
            if d.is_idle
            and d.model_key != requesting_model
            and now - d.last_used_s >= self.eviction_patience_s
        ]
        if not victims:
            return False
        victim = min(victims, key=lambda d: d.last_used_s)
        self.evict(victim)
        return True

    # -- instantiation ------------------------------------------------------------------

    def _instantiate(self, plan: DeploymentPlan, assignment: list, now: float) -> tuple:
        deployment_id = f"dep-{next(self._ids)}"
        placements = []
        reconfig = 0.0
        for board, image in assignment:
            indices = self.low_level.configure(board, deployment_id, image.artifact)
            placements.append(
                ReplicaPlacement(
                    fpga_id=board.fpga_id,
                    device_type=board.model.name,
                    virtual_blocks=image.virtual_blocks,
                    block_indices=indices,
                )
            )
            reconfig += image.virtual_blocks * self.reconfig_s_per_block
        # Creating a deployment also loads the model's weights.
        reconfig += weight_load_seconds(
            model_by_key(plan.model_key).parameter_count
        )
        deployment = Deployment(
            deployment_id=deployment_id,
            model_key=plan.model_key,
            plan=plan,
            placements=placements,
            last_used_s=now,
        )
        deployment.service_s = self._service_time(plan, placements)
        self.deployments[deployment_id] = deployment
        self.stats.deployments_created += 1
        return deployment, reconfig

    def _service_time(self, plan: DeploymentPlan, placements: list) -> float:
        """Per-task latency on this deployment (the simulator's service)."""
        if plan.replicas == 1:
            image = plan.image_for(placements[0].device_type)
            virt = VirtualizationContext(
                virtual_blocks=image.virtual_blocks,
                pattern_aware=self.pattern_aware,
            )
            return single_fpga_latency(
                plan.programs[0],
                image.instance,
                virtualization=virt,
                frequency_hz=image.frequency_hz,
                params=self.timing,
            ).seconds
        members = [p.fpga_id for p in placements]
        worst = 0.0
        for index, placement in enumerate(placements):
            image = plan.image_for(placement.device_type)
            virt = VirtualizationContext(
                virtual_blocks=image.virtual_blocks,
                pattern_aware=self.pattern_aware,
            )
            model = CycleModel(
                image.instance.with_frequency(image.frequency_hz), self.timing
            )
            report = scaleout_latency(
                plan.programs[min(index, len(plan.programs) - 1)],
                model,
                self.cluster.network,
                members,
                virtualization=virt,
                params=self.timing,
            )
            worst = max(worst, report.total_s)
        return worst
