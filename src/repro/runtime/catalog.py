"""The mapping-results database (the "Database" box of Fig. 7).

For every benchmark model the catalog holds deployment plans at increasing
widths: 1 FPGA (a demand-sized instance), 2-FPGA scale-down, ... — each
compiled through the full offline pipeline: instance sizing -> RTL
generation -> decomposition -> ViTAL compilation per device type.  Results
are cached two ways:

* per ``(tile count, device type)`` for generated/decomposed designs — the
  paper's "10 different accelerator instances" are exactly this dedupe, and
* content-addressed bitstreams in the shared
  :class:`~repro.vital.bitstream.BitstreamStore`, which is what amortises
  scale-down compilation across instances (Section 4.3's 24.6% figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..accel.config import AcceleratorConfig
from ..accel.generator import CONTROL_MODULES, generate_accelerator
from ..accel.codegen import build_scaleout_programs
from ..accel.timing import CycleModel, TimingParameters, DEFAULT_TIMING
from ..core.decompose import decompose
from ..errors import CompileError, ReproError
from ..perf.latency import BASE_INSTANCES, demand_sized_instance
from ..vital.compiler import VitalCompiler
from ..workloads.deepbench import ModelSpec


@dataclass(frozen=True)
class ReplicaImage:
    """One replica of a deployment plan, compiled for one device type."""

    device_type: str
    instance: AcceleratorConfig
    virtual_blocks: int
    frequency_hz: float
    artifact: str


@dataclass
class DeploymentPlan:
    """One deployment width for one model.

    ``replicas`` FPGAs, each hosting one scaled-down replica; ``images``
    maps device-type name to the replica image for that type (replicas on
    different device types are allowed — the heterogeneous support).
    ``programs[i]`` is replica ``i``'s transformed ISA program.
    """

    model_key: str
    replicas: int
    images: dict = field(default_factory=dict)
    programs: list = field(default_factory=list)

    @property
    def feasible_types(self) -> list:
        return sorted(self.images)

    def image_for(self, device_type: str) -> ReplicaImage:
        try:
            return self.images[device_type]
        except KeyError:
            raise ReproError(
                f"{self.model_key} x{self.replicas} has no image for "
                f"{device_type}"
            ) from None


@dataclass
class CatalogEntry:
    """All deployment plans for one model, fewest-FPGAs first."""

    spec: ModelSpec
    plans: list = field(default_factory=list)
    _sorted_cache: list | None = field(default=None, init=False, repr=False)

    def sorted_plans(self) -> list:
        """The greedy policy's search order (ascending width), cached —
        ``deploy`` asks for it on every placement attempt."""
        if self._sorted_cache is None or len(self._sorted_cache) != len(self.plans):
            self._sorted_cache = sorted(self.plans, key=lambda plan: plan.replicas)
        return self._sorted_cache

    def min_replicas(self) -> int:
        if not self.plans:
            raise ReproError(f"{self.spec.key}: no feasible deployment plan")
        return min(plan.replicas for plan in self.plans)


class Catalog:
    """Builds and caches catalog entries through the offline tool chain."""

    def __init__(
        self,
        compiler: VitalCompiler | None = None,
        timing: TimingParameters = DEFAULT_TIMING,
        max_replicas: int = 2,
        weight_bits: int | None = None,
    ):
        self.compiler = compiler or VitalCompiler()
        self.timing = timing
        self.max_replicas = max_replicas
        self.weight_bits = weight_bits or BASE_INSTANCES["XCVU37P"].weight_bits
        self._entries: dict[str, CatalogEntry] = {}
        # (tiles, device_type) -> (decomposed, partition tree)
        self._design_cache: dict = {}
        # (model_key, device_type) -> min virtual blocks over any plan image
        self._min_blocks_cache: dict = {}
        # (model_key, device_type, free_blocks) -> bool
        self._feasibility_cache: dict = {}
        self.designs_generated = 0

    # -- public API ------------------------------------------------------------

    def min_image_blocks(self, model_key: str, device_type: str) -> int | None:
        """Smallest virtual-block demand any plan of ``model_key`` places on
        one board of ``device_type`` (``None`` when no plan has an image for
        that type).  Cached — the controller's fast-reject asks per attempt."""
        key = (model_key, device_type)
        if key not in self._min_blocks_cache:
            entry = self._entries.get(model_key)
            if entry is None:
                raise ReproError(
                    f"min_image_blocks: no catalog entry for {model_key!r}"
                )
            blocks = [
                plan.images[device_type].virtual_blocks
                for plan in entry.plans
                if device_type in plan.images
            ]
            self._min_blocks_cache[key] = min(blocks) if blocks else None
        return self._min_blocks_cache[key]

    def placement_feasible(
        self, model_key: str, device_type: str, free_blocks: int
    ) -> bool:
        """Whether any plan of ``model_key`` could put a replica on a
        ``device_type`` board with ``free_blocks`` free.

        A necessary condition for placement (each replica needs one board
        hosting one image), memoized per ``(model, type, free)`` so the
        runtime's hot no-capacity path costs one dict probe.
        """
        key = (model_key, device_type, free_blocks)
        cached = self._feasibility_cache.get(key)
        if cached is None:
            needed = self.min_image_blocks(model_key, device_type)
            cached = needed is not None and needed <= free_blocks
            self._feasibility_cache[key] = cached
        return cached

    def entry(self, spec: ModelSpec) -> CatalogEntry:
        """The catalog entry for ``spec`` (built on first request)."""
        cached = self._entries.get(spec.key)
        if cached is not None:
            return cached
        entry = self._build_entry(spec)
        self._entries[spec.key] = entry
        return entry

    def entry_by_key(self, model_key: str) -> CatalogEntry:
        """The catalog entry for a model key (built on first request).

        The migration/defrag layer resolves cross-type remaps through
        this: every plan's ``images`` dict is the per-type mapping
        database, so moving a replica to another device type is a lookup,
        not a recompile.
        """
        from ..workloads.deepbench import model_by_key

        return self.entry(model_by_key(model_key))

    def compatible_types(self, model_key: str) -> list:
        """Device types holding an image for any plan of ``model_key``
        (the set a live deployment can migrate across)."""
        entry = self.entry_by_key(model_key)
        types: set[str] = set()
        for plan in entry.plans:
            types.update(plan.images)
        return sorted(types)

    def instance_count(self) -> int:
        """Distinct accelerator instances generated so far (the paper's
        "10 different accelerator instances" inventory)."""
        return len(self._design_cache)

    # -- construction ------------------------------------------------------------------

    def _build_entry(self, spec: ModelSpec) -> CatalogEntry:
        entry = CatalogEntry(spec=spec)
        replicas = 1
        while replicas <= self.max_replicas:
            plan = self._build_plan(spec, replicas)
            if plan is not None:
                entry.plans.append(plan)
            replicas *= 2
        if not entry.plans:
            raise CompileError(
                f"{spec.key}: no feasible deployment at any width up to "
                f"{self.max_replicas} FPGAs"
            )
        return entry

    def _build_plan(self, spec: ModelSpec, replicas: int) -> DeploymentPlan | None:
        if replicas > 1:
            if spec.hidden % replicas != 0:
                return None
            programs = build_scaleout_programs(
                spec.kind, spec.metadata_weights(), spec.timesteps, replicas
            )
        else:
            programs = [spec.program()]

        plan = DeploymentPlan(
            model_key=spec.key, replicas=replicas, programs=programs
        )
        bits_needed = spec.weight_bits(self.weight_bits)
        for device_type in self.compiler.devices:
            choice = demand_sized_instance(bits_needed, device_type, replicas)
            model = CycleModel(choice.config, self.timing)
            if not model.fits(programs[0]):
                continue
            image = self._compile_instance(spec, choice.config, device_type)
            if image is not None:
                plan.images[device_type] = image
        return plan if plan.images else None

    def _compile_instance(
        self, spec: ModelSpec, config: AcceleratorConfig, device_type: str
    ) -> ReplicaImage | None:
        device = self.compiler.devices[device_type]
        cache_key = (config.tiles, device_type)
        if cache_key not in self._design_cache:
            design = generate_accelerator(config)
            decomposed = decompose(design, CONTROL_MODULES)
            self._design_cache[cache_key] = decomposed
            self.designs_generated += 1
        decomposed = self._design_cache[cache_key]
        demand = decomposed.total_resources()
        try:
            image, _bitstream, _cached = self.compiler.compile_cluster(
                accelerator=f"bw-t{config.tiles}",
                cluster_index=0,
                cluster_signature=decomposed.data_root.signature,
                demand=demand,
                device=device,
            )
        except CompileError:
            return None
        return ReplicaImage(
            device_type=device_type,
            instance=config,
            virtual_blocks=image.virtual_blocks,
            frequency_hz=image.frequency_hz,
            artifact=image.artifact,
        )
