"""Communication/computation overlap for scale-out deployments (Fig. 11).

When one accelerator is scaled down into ``k`` replicas on ``k`` FPGAs
(Section 2.3), each timestep ends with every replica broadcasting its
hidden-state slice and begins (next iteration) with a combining receive.
After the reordering tool runs, every instruction scheduled *before* the
receive executes while the previous iteration's transfer is still in
flight — for LSTM/GRU that is the ``W x_t`` matrix work, exactly the
overlap the paper describes.

Steady-state per-step stall is therefore::

    stall = max(0, T_comm(added_latency) - T_overlap_window)

and the task latency is the replica's compute latency plus ``timesteps x
stall``.  With the reordering tool disabled the receive sits at the top of
the body, the window is empty, and the full transfer time is exposed — the
ablation benchmark measures that difference.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel.timing import CycleModel, TimingParameters, DEFAULT_TIMING, VirtualizationContext
from ..cluster.network import RingNetwork
from ..errors import ReproError
from ..isa.instructions import Op
from ..isa.program import Program


def _loop_body(program: Program) -> list:
    """Instructions of the (single) timestep loop body."""
    body: list = []
    depth = 0
    for inst in program.instructions:
        if inst.op is Op.LOOP:
            depth += 1
            continue
        if inst.op is Op.ENDLOOP:
            depth -= 1
            continue
        if depth > 0:
            body.append(inst)
    return body


def overlap_window_seconds(
    program: Program,
    cycle_model: CycleModel,
    resident_fraction: float | None = None,
) -> float:
    """Seconds of loop-body work scheduled before the combining receive.

    Instruction costs are evaluated at full weight residency regardless of
    the model's actual residency: when weights stream from DRAM, that excess
    occupies the same DRAM interface the synchronisation template module
    uses (Fig. 8b), so DRAM-streaming time cannot hide *network* time and is
    excluded from the window.  ``resident_fraction`` is accepted for API
    symmetry but ignored.
    """
    del resident_fraction  # see docstring: windows use pure compute time
    body = _loop_body(program)
    cycles = 0.0
    for inst in body:
        if inst.is_recv:
            break
        if inst.is_send:
            continue
        streaming, fixed = cycle_model.instruction_cycles(inst, 1.0)
        cycles += streaming + fixed
    else:
        return 0.0  # no receive => no exchange in this program
    return cycles / cycle_model.config.frequency_hz


@dataclass
class ScaleOutLatency:
    """Breakdown of a multi-FPGA task latency."""

    total_s: float
    compute_s: float
    stall_per_step_s: float
    comm_per_step_s: float
    overlap_window_s: float
    timesteps: int

    @property
    def fully_hidden(self) -> bool:
        """True when inter-FPGA communication is completely overlapped."""
        return self.stall_per_step_s <= 1e-12


def scaleout_latency(
    replica_program: Program,
    cycle_model: CycleModel,
    network: RingNetwork,
    members: list,
    added_latency_s: float = 0.0,
    virtualization: VirtualizationContext | None = None,
    params: TimingParameters = DEFAULT_TIMING,
) -> ScaleOutLatency:
    """End-to-end latency of one task on a k-FPGA scale-out deployment.

    ``replica_program`` must be a transformed replica program (with
    send/recv); all replicas are symmetric, so one replica's timeline is the
    task timeline.
    """
    meta = replica_program.metadata.get("scaleout")
    if meta is None:
        raise ReproError(
            f"{replica_program.name!r} is not a scale-out program (run "
            "insert_scaleout_communication first)"
        )
    timesteps = int(replica_program.metadata.get("timesteps", 1))
    slice_elements = int(meta["slice_length"])

    compute = cycle_model.latency(replica_program, virtualization=virtualization)
    window = overlap_window_seconds(
        replica_program, cycle_model, compute.resident_fraction
    )
    comm = network.exchange_time(members, slice_elements, added_latency_s)
    stall = max(0.0, comm - window)
    return ScaleOutLatency(
        total_s=compute.seconds + timesteps * stall,
        compute_s=compute.seconds,
        stall_per_step_s=stall,
        comm_per_step_s=comm,
        overlap_window_s=window,
        timesteps=timesteps,
    )
