"""Throughput accounting helpers for the system evaluation."""

from __future__ import annotations

from ..errors import ReproError


def aggregate_throughput(results: dict) -> dict:
    """Tasks/second per workload set from :class:`SimulationResult` values."""
    return {key: result.throughput for key, result in results.items()}


def speedup(candidate: float, baseline: float) -> float:
    """Throughput ratio candidate/baseline (the Fig. 12 bar heights)."""
    if baseline <= 0:
        raise ReproError("baseline throughput must be positive")
    return candidate / baseline


def geometric_mean(values) -> float:
    """Geometric mean (the conventional average for speedups)."""
    values = list(values)
    if not values:
        raise ReproError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ReproError("geometric mean requires positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values) -> float:
    """Plain average (the paper reports average throughput improvement)."""
    values = list(values)
    if not values:
        raise ReproError("mean of empty sequence")
    return sum(values) / len(values)
