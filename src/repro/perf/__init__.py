"""Performance models composed from the accelerator timing model, the
latency-insensitive interface costs and the ring network.

* :mod:`~repro.perf.latency`    — instance sizing and single-/multi-FPGA
  task latency.
* :mod:`~repro.perf.overlap`    — communication/computation overlap for
  scale-out deployments (the Fig. 11 model).
* :mod:`~repro.perf.throughput` — throughput accounting helpers.
* :mod:`~repro.perf.profiling`  — counter registry + wall-clock timers the
  runtime hot paths report into.
"""

from .latency import demand_sized_instance, single_fpga_latency, InstanceChoice
from .profiling import Profiler, PROFILER
from .overlap import (
    ScaleOutLatency,
    overlap_window_seconds,
    scaleout_latency,
)
from .throughput import aggregate_throughput, speedup

__all__ = [
    "InstanceChoice",
    "PROFILER",
    "Profiler",
    "ScaleOutLatency",
    "aggregate_throughput",
    "demand_sized_instance",
    "overlap_window_seconds",
    "scaleout_latency",
    "single_fpga_latency",
    "speedup",
]
