"""Instance sizing and single-FPGA task latency.

"Multiple accelerator instances with different number of MVM Tiles (the
SIMD units) are compiled" to match varying task demands (Section 4.2).  We
size instances storage-first: tile engines are added until the model's
weights are resident (each tile brings its own weight memory), clamped to
the device-matched maximum — the same pressure that makes large models
spill to multiple FPGAs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..accel.config import AcceleratorConfig, BW_K115, BW_V37
from ..accel.timing import (
    CycleModel,
    LatencyReport,
    TimingParameters,
    DEFAULT_TIMING,
    VirtualizationContext,
)
from ..errors import ReproError
from ..isa.program import Program

#: Base (device-matched, maximal) instances per device type.
BASE_INSTANCES = {"XCVU37P": BW_V37, "XCKU115": BW_K115}

#: Smallest instance worth building (control overhead dominates below).
MIN_TILES = 2

#: Weight reload path: fixed setup plus PCIe/DRAM streaming (weights ship
#: as float16 and are BFP-quantised on chip).
WEIGHT_LOAD_FIXED_S = 0.002
WEIGHT_LOAD_BYTES_PER_S = 12e9
WEIGHT_BYTES_PER_PARAM = 2.0


def weight_load_seconds(parameter_count: int) -> float:
    """Time to swap one model's weights onto an accelerator."""
    return (
        WEIGHT_LOAD_FIXED_S
        + parameter_count * WEIGHT_BYTES_PER_PARAM / WEIGHT_LOAD_BYTES_PER_S
    )


@dataclass(frozen=True)
class InstanceChoice:
    """A sized accelerator instance for one model on one device type."""

    config: AcceleratorConfig
    device_type: str
    resident_fraction: float


def demand_sized_instance(
    weight_bits_needed: int,
    device_type: str = "XCVU37P",
    replicas: int = 1,
) -> InstanceChoice:
    """Size an instance for a model of ``weight_bits_needed`` total weights.

    ``replicas`` divides the weights (scale-down deployments slice the
    matrices row-wise).  Tiles are clamped to the device-matched maximum;
    when even the maximum cannot hold the slice, the instance is returned
    at maximum size with ``resident_fraction < 1`` (the timing model's fit
    rule decides deployability).
    """
    try:
        base = BASE_INSTANCES[device_type]
    except KeyError:
        raise ReproError(f"unknown device type {device_type!r}") from None
    per_replica_bits = weight_bits_needed / max(1, replicas)
    per_tile_bits = base.memory.usable_bits_per_tile
    wanted = math.ceil(per_replica_bits / per_tile_bits)
    tiles = max(MIN_TILES, min(base.tiles, wanted))
    # Small instances keep a healthy MFU width: the vector units are cheap
    # (the parameterised design scales them independently of tile count),
    # and without this the elementwise gate math dominates small models.
    mfu_lanes = max(base.mfu_lanes_per_tile, math.ceil(32 / tiles))
    config = replace(
        base.with_tiles(tiles, name=f"{base.name}-t{tiles}"),
        mfu_lanes_per_tile=mfu_lanes,
    )
    resident = min(1.0, tiles * per_tile_bits / per_replica_bits)
    return InstanceChoice(
        config=config, device_type=device_type, resident_fraction=resident
    )


def single_fpga_latency(
    program: Program,
    instance: AcceleratorConfig,
    virtualization: VirtualizationContext | None = None,
    frequency_hz: float | None = None,
    params: TimingParameters = DEFAULT_TIMING,
) -> LatencyReport:
    """Task latency on one FPGA (optionally through the HS abstraction).

    ``frequency_hz`` overrides the instance clock with the achieved clock of
    the compiled image (device- and floorplan-dependent).
    """
    config = instance
    if frequency_hz is not None:
        config = instance.with_frequency(frequency_hz)
    model = CycleModel(config, params)
    return model.latency(program, virtualization=virtualization)
