"""Lightweight runtime profiling: a counter registry plus wall-clock timers.

The hot-path instrumentation the allocator/DES overhaul is measured by.
Counters are plain integer bumps in a process-wide registry (cheap enough
to stay enabled in production runs); timers are context managers that
accumulate wall-clock per stage.  ``ClusterSimulator`` and
``SystemController`` increment a shared default registry so a benchmark
driver can snapshot placement-attempt and event counts across a whole
experiment (see :mod:`repro.experiments.bench_fig12`).
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager


class Profiler:
    """A named-counter registry with wall-clock stage timers."""

    def __init__(self):
        self.counters: dict[str, int] = defaultdict(int)
        self.timings: dict[str, float] = defaultdict(float)

    # -- counters ------------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- timers --------------------------------------------------------------

    @contextmanager
    def timer(self, name: str):
        """Accumulate the wall-clock of the enclosed block under ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.timings[name] += time.perf_counter() - start

    def elapsed(self, name: str) -> float:
        return self.timings.get(name, 0.0)

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        self.counters.clear()
        self.timings.clear()

    def snapshot(self) -> dict:
        """A JSON-serialisable view of every counter and timer."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timings_s": dict(sorted(self.timings.items())),
        }


#: Process-wide default registry the runtime increments into.
PROFILER = Profiler()
