"""Fault injection and automatic failure recovery (the reliability layer).

A production cluster serving heavy traffic must survive board failures,
partial-reconfiguration faults and operator drains — events the paper's
runtime (Section 2.3) never sees in a four-board lab deployment but which
dominate operations at fleet scale.  This package supplies both halves of
that story:

* :mod:`~repro.faults.injector` — a :class:`FaultInjector` that turns a
  per-board MTBF/MTTR model (deterministic, seeded) into first-class
  discrete-event failures and repairs via
  :meth:`repro.cluster.simulator.ClusterSimulator.schedule_external`,
  plus targeted ``fail_board`` injection for tests;
* :mod:`~repro.faults.recovery` — a :class:`RecoveryManager` that rebuilds
  deployments lost to a failure from their last periodic
  :class:`~repro.migration.checkpoint.AcceleratorCheckpoint`, falling back
  to the paper's scale-down optimisation when no same-width placement
  exists and retrying with bounded exponential backoff when the cluster is
  momentarily full.

Board health itself (``HEALTHY``/``DEGRADED``/``FAILED``) lives on
:class:`~repro.vital.virtual_block.PhysicalFPGA` and is surfaced through
the controller's :class:`~repro.runtime.controller.PlacementIndex`, so
unhealthy boards drop out of every placement query without the policies
knowing about faults.

Everything here is off by default (``SystemController(recovery_enabled=
False)`` and no injector armed), so existing schedules — including the
Fig. 12 goldens — stay bit-identical.
"""

from ..vital.virtual_block import BoardHealth
from .injector import FaultInjector, FaultModelParameters
from .recovery import RecoveryAbandoned, RecoveryManager, RecoveryParameters

__all__ = [
    "BoardHealth",
    "FaultInjector",
    "FaultModelParameters",
    "RecoveryAbandoned",
    "RecoveryManager",
    "RecoveryParameters",
]
