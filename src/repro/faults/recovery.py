"""Automatic failure recovery: rebuild deployments lost to board faults.

When a board fails its resident replica configurations are gone.  The
recovery manager rebuilds every affected deployment from its last periodic
:class:`~repro.migration.checkpoint.AcceleratorCheckpoint`:

1. tear the broken deployment down (releasing whatever blocks survive);
2. re-place the *same* deployment plan on healthy boards and stream the
   checkpoint back in — restore cost is destination reconfiguration plus
   the checkpoint's architectural state over the host PCIe link;
3. when no same-width placement exists, fall back to the paper's
   scale-down optimisation: any other width in the mapping database, paid
   for with a cold weight reload (a checkpoint taken at one replica width
   does not restore onto another);
4. when nothing fits at all, retry with bounded exponential backoff —
   capacity usually returns within an MTTR.

Checkpoint cadence is arithmetic (see
:meth:`~repro.runtime.deployment.Deployment.last_checkpoint_s`): a
checkpoint every ``checkpoint_interval_s`` starting at the deployment's
``checkpoint_origin_s``, so lost work is computable without per-deployment
DES events.  Busy, migrating and mid-restore deployments are not yanked:
the failure marks them ``pending_recovery`` and the controller/engine runs
the recovery at their next state transition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perf.latency import weight_load_seconds
from ..perf.profiling import PROFILER
from ..runtime.deployment import Deployment, DeploymentState
from ..units import ms
from ..workloads.deepbench import model_by_key


@dataclass(frozen=True)
class RecoveryParameters:
    """Policy knobs for checkpoint cadence and redeploy backoff."""

    #: Periodic checkpoint interval; work since the last tick is lost on
    #: failure.  Shorter intervals lose less work but a real system pays
    #: per-checkpoint drain time — the bench sweeps this trade-off.
    checkpoint_interval_s: float = ms(50.0)
    #: First redeploy retry delay; doubles per attempt.
    retry_base_s: float = ms(2.0)
    #: Ceiling on the backoff delay.
    retry_cap_s: float = ms(64.0)
    #: Attempts before the deployment is abandoned (it can still be
    #: re-created by the next task for its model, but the failure is
    #: counted).
    max_retries: int = 8

    def backoff_s(self, attempt: int) -> float:
        """The capped backoff delay scheduled before retry ``attempt``."""
        return min(self.retry_cap_s, self.retry_base_s * (2 ** attempt))


@dataclass(frozen=True)
class RecoveryAbandoned:
    """Structured event: a deployment could not be rebuilt.

    Emitted through :meth:`~repro.runtime.controller.SystemController.
    emit_event` when the recovery manager gives up — after the final
    backoff retry, or immediately in synchronous mode (no DES to schedule
    retries on).  The model stays servable: its next task re-deploys from
    the catalog; what is lost is the warm deployment and its checkpoint.
    """

    model_key: str
    replicas: int
    attempts: int
    at_s: float
    reason: str


class RecoveryManager:
    """Re-places deployments broken by board failures (one per controller)."""

    def __init__(self, controller, params: RecoveryParameters | None = None):
        self.controller = controller
        self.params = params or RecoveryParameters()
        self.restores_started = 0

    # -- failure intake ------------------------------------------------------

    def on_board_failure(self, board, now: float) -> None:
        """A board just went FAILED: account and recover its residents.

        Lost work (time since the last periodic checkpoint) is charged at
        failure time for every affected deployment, whatever its state.
        Idle deployments recover immediately; busy/migrating/restoring ones
        are flagged and picked up at their next state transition.
        """
        controller = self.controller
        # Reverse residency index: O(residents on the board), not O(fleet)
        # — at 1000 boards the old full-fleet scan dominated every storm.
        affected = controller.deployments_on(board.fpga_id)
        for deployment in affected:
            controller.stats.deployments_failed += 1
            PROFILER.incr("faults.deployments_failed")
            lost = now - deployment.last_checkpoint_s(
                now, self.params.checkpoint_interval_s
            )
            controller.stats.lost_work_s += lost
            PROFILER.incr("faults.lost_work_us", int(lost * 1e6))
            if deployment.state is DeploymentState.IDLE:
                self.recover(deployment, now)
            else:
                deployment.pending_recovery = True

    def recover(self, deployment: Deployment, now: float) -> None:
        """Tear the broken deployment down and rebuild it elsewhere."""
        deployment.pending_recovery = False
        self.controller.discard(deployment)
        self._replace(
            deployment.model_key, deployment.plan, now, attempt=0,
            tenant=deployment.tenant,
        )

    # -- re-placement --------------------------------------------------------

    def _replace(
        self, model_key: str, plan, now: float, attempt: int, tenant: str = ""
    ) -> None:
        controller = self.controller
        if controller._any_plan_could_fit(model_key):
            # Same width first: the checkpoint restores exactly onto it.
            assignment = controller._find_placement(plan)
            if assignment is not None:
                self._restore(plan, assignment, now, scale_down=False,
                              tenant=tenant)
                return
            # Scale-down fallback: any other width from the same mapping
            # database.  A cross-width restore restarts from weights, so
            # it is charged as a cold start, not a checkpoint restore.
            for candidate in controller.catalog.entry_by_key(
                model_key
            ).sorted_plans():
                if candidate.replicas == plan.replicas:
                    continue
                assignment = controller._find_placement(candidate)
                if assignment is not None:
                    self._restore(candidate, assignment, now, scale_down=True,
                                  tenant=tenant)
                    return
        self._schedule_retry(model_key, plan, now, attempt, tenant=tenant)

    def _restore(
        self, plan, assignment: list, now: float, scale_down: bool,
        tenant: str = "",
    ) -> None:
        controller = self.controller
        # A rebuilt deployment stays charged to its original tenant — a
        # restore must not silently launder quota attribution through the
        # (empty) default context.
        prior = controller.tenant_context
        controller.tenant_context = tenant
        try:
            deployment, _ = controller._instantiate(plan, assignment, now)
        finally:
            controller.tenant_context = prior
        cost = self._restore_cost(deployment, from_checkpoint=not scale_down)
        self.restores_started += 1
        PROFILER.incr("faults.restores_started")
        simulator = controller._simulator
        if simulator is None:
            # Synchronous mode (no DES bound): complete immediately.
            self._complete_recovery(deployment, now, scale_down)
            return
        deployment.state = DeploymentState.RECOVERING

        def complete(fire_now, deployment=deployment, scale_down=scale_down):
            self._complete_recovery(deployment, fire_now, scale_down)

        simulator.schedule_external(cost, complete)

    def _restore_cost(self, deployment: Deployment, from_checkpoint: bool) -> float:
        """Time to bring the replacement deployment into service.

        Checkpoint restores pay destination reconfiguration plus the
        checkpoint's architectural state streamed over the host PCIe link
        (checkpoints live in host memory, not on the dead board).  Cold
        restarts (scale-down fallback) pay reconfiguration plus a full
        weight reload instead.
        """
        controller = self.controller
        reconfig = sum(
            placement.virtual_blocks for placement in deployment.placements
        ) * controller.reconfig_s_per_block
        if not from_checkpoint:
            return reconfig + weight_load_seconds(
                model_by_key(deployment.model_key).parameter_count
            )
        engine = controller.migration
        state_bytes = sum(
            engine.state_bytes(deployment, index)
            for index in range(len(deployment.placements))
        )
        link = controller.cluster.host_link
        return reconfig + link.latency_s + state_bytes * 8.0 / link.bandwidth_bps

    def _complete_recovery(
        self, deployment: Deployment, now: float, scale_down: bool
    ) -> None:
        controller = self.controller
        if deployment.deployment_id not in controller.deployments:
            return  # torn down while restoring (eviction or a lost race)
        if deployment.pending_recovery:
            # A board under the restore target failed mid-flight: the
            # freshly configured blocks are gone too, so go around again.
            self.recover(deployment, now)
            return
        deployment.state = DeploymentState.IDLE
        deployment.last_used_s = now
        # A completed restore is a fresh checkpoint: restart the cadence.
        deployment.checkpoint_origin_s = now
        deployment.recoveries += 1
        controller.stats.recoveries += 1
        PROFILER.incr("faults.recoveries")
        if scale_down:
            controller.stats.scale_down_recoveries += 1
            PROFILER.incr("faults.scale_down_recoveries")

    # -- backoff -------------------------------------------------------------

    def _schedule_retry(
        self, model_key: str, plan, now: float, attempt: int, tenant: str = ""
    ) -> None:
        controller = self.controller
        if attempt >= self.params.max_retries or controller._simulator is None:
            controller.stats.recovery_failures += 1
            PROFILER.incr("faults.recovery_failures")
            reason = (
                "retries-exhausted"
                if attempt >= self.params.max_retries
                else "no-simulator"
            )
            controller.emit_event(
                RecoveryAbandoned(
                    model_key=model_key,
                    replicas=plan.replicas,
                    attempts=attempt,
                    at_s=now,
                    reason=reason,
                )
            )
            return
        delay = self.params.backoff_s(attempt)
        controller.stats.recovery_retries += 1
        controller.stats.recovery_backoff_s += delay
        PROFILER.incr("faults.recovery_retries")

        def retry(
            fire_now, model_key=model_key, plan=plan, attempt=attempt,
            tenant=tenant,
        ):
            self._replace(model_key, plan, fire_now, attempt + 1, tenant=tenant)

        controller._simulator.schedule_external(delay, retry)

    # The capped schedule, surfaced: attempt -> delay (docs and tests ask
    # the manager, not the arithmetic, so the cap stays a single source).
    def backoff_schedule(self) -> list[float]:
        """Every backoff delay this manager would schedule, in order."""
        return [
            self.params.backoff_s(attempt)
            for attempt in range(self.params.max_retries)
        ]
