"""Seeded fault injection: board failures and repairs as DES events.

The injector turns a per-board MTBF/MTTR model into first-class events on
the :class:`~repro.cluster.simulator.ClusterSimulator`: each board draws an
alternating exponential up/down timeline from one seeded
:class:`random.Random`, and every transition is scheduled through
``schedule_external`` so failures and repairs bump the resource version and
re-dispatch the queue exactly like task starts and finishes do.  Boards are
visited in sorted id order and all draws come from the single seeded
stream, so a (seed, mtbf, mttr, horizon) tuple always produces the same
timeline — chaos runs are reproducible bit for bit.

Targeted injection (:meth:`FaultInjector.fail_board`) schedules one
failure (and optionally its repair) at an exact instant, for tests and the
``inject-faults`` CLI.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import SimulationError
from ..perf.profiling import PROFILER
from ..vital.virtual_block import BoardHealth


@dataclass(frozen=True)
class FaultModelParameters:
    """Per-board failure process: exponential time-to-fail and time-to-repair."""

    #: Mean time between failures per board (seconds of simulated time).
    mtbf_s: float = 1.0
    #: Mean time to repair per failure.
    mttr_s: float = 0.05
    #: RNG seed; the whole timeline is a pure function of this.
    seed: int = 1
    #: Fraction of faults that degrade (drain) instead of failing hard:
    #: degraded boards keep serving residents but take no new placements.
    degraded_fraction: float = 0.0


class FaultInjector:
    """Schedules a reproducible failure/repair timeline on one simulator."""

    def __init__(self, simulator, controller, params: FaultModelParameters | None = None):
        self.simulator = simulator
        self.controller = controller
        self.params = params or FaultModelParameters()
        self.failures_injected = 0
        self.repairs_applied = 0
        self.events_scheduled = 0
        self._down_since: dict[str, float] = {}
        self._downtime_s = 0.0

    # -- scheduling ----------------------------------------------------------

    def arm(self, horizon_s: float) -> int:
        """Draw and schedule the full timeline up to ``horizon_s``.

        Returns the number of events scheduled.  Failures are only drawn
        before the horizon; each failure's repair is scheduled even when it
        lands past the horizon, so every down board eventually returns to
        service (the run's makespan may extend slightly).
        """
        params = self.params
        if params.mtbf_s <= 0 or params.mttr_s <= 0:
            raise SimulationError(
                f"MTBF and MTTR must be positive "
                f"(got {params.mtbf_s}, {params.mttr_s})"
            )
        rng = random.Random(params.seed)
        scheduled = 0
        for fpga_id in sorted(self.controller.cluster.boards):
            at = rng.expovariate(1.0 / params.mtbf_s)
            while at < horizon_s:
                down_for = rng.expovariate(1.0 / params.mttr_s)
                degraded = rng.random() < params.degraded_fraction
                self._schedule_failure(fpga_id, at, degraded)
                self._schedule_repair(fpga_id, at + down_for)
                scheduled += 2
                at += down_for + rng.expovariate(1.0 / params.mtbf_s)
        self.events_scheduled += scheduled
        return scheduled

    def fail_board(
        self,
        fpga_id: str,
        at: float,
        repair_after: float | None = None,
        degraded: bool = False,
    ) -> None:
        """Targeted injection: fail one board at ``at``, optionally
        repairing it ``repair_after`` seconds later."""
        self.controller.cluster.board(fpga_id)  # validate the id up front
        self._schedule_failure(fpga_id, at, degraded)
        self.events_scheduled += 1
        if repair_after is not None:
            self._schedule_repair(fpga_id, at + repair_after)
            self.events_scheduled += 1

    def _schedule_failure(self, fpga_id: str, at: float, degraded: bool) -> None:
        delay = at - self.simulator.queue.now
        self.simulator.schedule_external(
            delay,
            lambda now, f=fpga_id, d=degraded: self._fail(f, d, now),
        )

    def _schedule_repair(self, fpga_id: str, at: float) -> None:
        delay = at - self.simulator.queue.now
        self.simulator.schedule_external(
            delay, lambda now, f=fpga_id: self._repair(f, now)
        )

    # -- event bodies --------------------------------------------------------

    def _fail(self, fpga_id: str, degraded: bool, now: float) -> None:
        board = self.controller.cluster.board(fpga_id)
        if board.health is not BoardHealth.HEALTHY:
            return  # overlapping targeted + scheduled faults: already down
        if degraded:
            self.controller.on_board_degraded(board, now)
        else:
            self.controller.on_board_failure(board, now)
        self.failures_injected += 1
        PROFILER.incr("faults.injected")
        self._down_since[fpga_id] = now

    def _repair(self, fpga_id: str, now: float) -> None:
        board = self.controller.cluster.board(fpga_id)
        if board.health is BoardHealth.HEALTHY:
            return  # already repaired (overlapping schedules)
        self.controller.on_board_repair(board, now)
        self.repairs_applied += 1
        PROFILER.incr("faults.repaired")
        began = self._down_since.pop(fpga_id, now)
        self._downtime_s += now - began

    # -- metrics -------------------------------------------------------------

    def availability(self, horizon_s: float) -> float:
        """Fraction of board-time the cluster was placeable over the run.

        Downtime counts every non-HEALTHY interval (DEGRADED boards serve
        residents but are unavailable for placement); boards still down at
        the horizon are charged up to it.
        """
        if horizon_s <= 0 or not self.controller.cluster.boards:
            return 1.0
        down = self._downtime_s + sum(
            horizon_s - began
            for began in self._down_since.values()
            if began < horizon_s
        )
        total = len(self.controller.cluster.boards) * horizon_s
        return max(0.0, 1.0 - down / total)
