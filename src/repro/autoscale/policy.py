"""Autoscaling policy knobs.

Everything the :class:`~repro.autoscale.autoscaler.Autoscaler` decides is
parameterised here, mirroring :class:`~repro.serving.policy.
ServingParameters`.  The two watermarks form a hysteresis band on queue
depth — scale-up fires at or above the high mark, scale-down is only
*considered* at or below the low mark — and each direction carries its own
cooldown, so a steady arrival rate whose queue depth straddles one
threshold cannot make the scaler flap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..units import ms


@dataclass(frozen=True)
class AutoscaleParameters:
    """Policy knobs for elastic replica autoscaling."""

    #: Decision cadence: the autoscaler evaluates every model once per
    #: tick, each tick a first-class DES event.
    interval_s: float = ms(5.0)
    #: Replica-unit floor per model (a deployment contributes its plan's
    #: replica count).  Scale-down never goes below this.
    min_replicas: int = 1
    #: Replica-unit ceiling per model.  Scale-up never goes above this.
    max_replicas: int = 4
    #: Queue depth at or above which a model is under-provisioned.
    high_watermark: int = 6
    #: Queue depth at or below which scale-down may be considered.  Must
    #: be strictly below ``high_watermark`` (the hysteresis band).
    low_watermark: int = 1
    #: EWMA smoothing factor for the per-model arrival-rate estimate
    #: (per-tick instantaneous rate blended at this weight).
    rate_alpha: float = 0.3
    #: Minimum time between scale-ups of one model.
    up_cooldown_s: float = ms(25.0)
    #: Minimum time between scale-downs of one model — and after a
    #: scale-up, so a grow is never immediately undone.
    down_cooldown_s: float = ms(100.0)
    #: Scale-down requires the model's busy-deployment fraction at or
    #: below this (capacity in use is capacity the trough still needs).
    down_busy_fraction: float = 0.5
    #: Scale-down requires the EWMA arrival rate to fit within this
    #: utilisation of the capacity that would *remain* after the action.
    down_target_util: float = 0.6
    #: Recent (per-tick window) SLO attainment below this floor counts as
    #: scale-up pressure even before the queue reaches the high watermark.
    slo_floor: float = 0.9
    #: Scale-ups are suppressed for this long after the fault-recovery
    #: machinery performs a scale-down-fallback restore (or any board
    #: failure): the cluster just shrank because capacity *vanished*, and
    #: re-growing before the repair lands would flap against recovery.
    fault_suppress_s: float = ms(150.0)
    #: Whether scale-up may switch an idle deployment to a wider plan
    #: (more replicas, lower service time) before adding a deployment.
    widen_enabled: bool = True

    def __post_init__(self):
        if self.interval_s <= 0:
            raise ReproError("autoscale interval must be positive")
        if self.min_replicas < 1:
            raise ReproError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ReproError("max_replicas must be >= min_replicas")
        if self.low_watermark >= self.high_watermark:
            raise ReproError(
                "watermarks must satisfy low < high (the hysteresis band)"
            )
        if self.low_watermark < 0:
            raise ReproError("low_watermark must be >= 0")
        if not 0.0 < self.rate_alpha <= 1.0:
            raise ReproError("rate_alpha must be in (0, 1]")
        if not 0.0 <= self.down_busy_fraction <= 1.0:
            raise ReproError("down_busy_fraction must be in [0, 1]")
        if not 0.0 < self.down_target_util <= 1.0:
            raise ReproError("down_target_util must be in (0, 1]")
        if self.up_cooldown_s < 0 or self.down_cooldown_s < 0:
            raise ReproError("cooldowns must be >= 0")
