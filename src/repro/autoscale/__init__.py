"""Elastic replica autoscaling over the serving frontend.

Off by default: nothing here runs unless an :class:`Autoscaler` is
constructed around a :class:`~repro.serving.frontend.ServingFrontend`
and armed on a simulator, so the Fig. 12 golden path is untouched.
"""

from .accounting import ReplicaLedger
from .autoscaler import Autoscaler, AutoscaleStats, ScaleEvent
from .policy import AutoscaleParameters

__all__ = [
    "Autoscaler",
    "AutoscaleParameters",
    "AutoscaleStats",
    "ReplicaLedger",
    "ScaleEvent",
]
