"""Replica-second accounting: the cost side of the autoscaling trade.

A :class:`ReplicaLedger` integrates resident capacity over simulated time,
exactly: the controller notifies it at every deployment instantiation and
discard, so the integral is piecewise-exact rather than tick-sampled.  Two
measures are kept per model:

* **replica-seconds** — each deployment contributes its plan's replica
  count for its lifetime (the fleet-size metric the bench gates on);
* **block-seconds** — each deployment contributes its block footprint
  (:meth:`~repro.runtime.controller.SystemController.plan_footprint`),
  the finer-grained rent a real cloud would bill.

Deployments still resident when a run ends are charged up to the
evaluation instant passed to :meth:`ReplicaLedger.totals` — callers
compare arms at one common horizon so an early-finishing run is not
undercharged.
"""

from __future__ import annotations


class ReplicaLedger:
    """Exact integral of resident replicas (and blocks) over time."""

    def __init__(self):
        #: deployment_id -> (model_key, replicas, blocks, opened_s).
        self._open: dict[str, tuple] = {}
        #: model_key -> accumulated replica-seconds of closed deployments.
        self._replica_s: dict[str, float] = {}
        #: model_key -> accumulated block-seconds of closed deployments.
        self._block_s: dict[str, float] = {}
        self.deployments_opened = 0
        self.deployments_closed = 0

    # -- controller notifications ---------------------------------------------

    def on_instantiate(self, deployment, now: float) -> None:
        plan = deployment.plan
        blocks = plan.replicas * min(
            image.virtual_blocks for image in plan.images.values()
        )
        self._open[deployment.deployment_id] = (
            deployment.model_key, plan.replicas, blocks, now
        )
        self.deployments_opened += 1

    def on_discard(self, deployment, now: float) -> None:
        entry = self._open.pop(deployment.deployment_id, None)
        if entry is None:
            return  # instantiated before the ledger was attached
        model_key, replicas, blocks, opened_s = entry
        lived = max(0.0, now - opened_s)
        self._replica_s[model_key] = (
            self._replica_s.get(model_key, 0.0) + replicas * lived
        )
        self._block_s[model_key] = (
            self._block_s.get(model_key, 0.0) + blocks * lived
        )
        self.deployments_closed += 1

    # -- queries ----------------------------------------------------------------

    def open_replicas(self, model_key: str | None = None) -> int:
        """Replica units currently resident (one model, or the fleet)."""
        return sum(
            replicas
            for key, replicas, _, _ in self._open.values()
            if model_key is None or key == model_key
        )

    def totals(self, at_s: float) -> dict:
        """Per-model and aggregate charge up to ``at_s`` (non-destructive:
        still-open deployments are charged to ``at_s`` without closing)."""
        replica_s = dict(self._replica_s)
        block_s = dict(self._block_s)
        for model_key, replicas, blocks, opened_s in self._open.values():
            lived = max(0.0, at_s - opened_s)
            replica_s[model_key] = replica_s.get(model_key, 0.0) + replicas * lived
            block_s[model_key] = block_s.get(model_key, 0.0) + blocks * lived
        return {
            "replica_seconds": sum(replica_s.values()),
            "block_seconds": sum(block_s.values()),
            "replica_seconds_by_model": {
                key: replica_s[key] for key in sorted(replica_s)
            },
            "block_seconds_by_model": {
                key: block_s[key] for key in sorted(block_s)
            },
        }
