"""Replica-second accounting: the cost side of the autoscaling trade.

A :class:`ReplicaLedger` integrates resident capacity over simulated time,
exactly: the controller notifies it at every deployment instantiation and
discard, so the integral is piecewise-exact rather than tick-sampled.  Two
measures are kept per model:

* **replica-seconds** — each deployment contributes its plan's replica
  count for its lifetime (the fleet-size metric the bench gates on);
* **block-seconds** — each deployment contributes its block footprint
  (:meth:`~repro.runtime.controller.SystemController.plan_footprint`),
  the finer-grained rent a real cloud would bill.

Deployments still resident when a run ends are charged up to the
evaluation instant passed to :meth:`ReplicaLedger.totals` — callers
compare arms at one common horizon so an early-finishing run is not
undercharged.

The ledger also carries the **tenant axis** (multi-tenancy layer): every
entry is keyed by the deployment's owning tenant, instantaneous per-tenant
open blocks/replicas are maintained incrementally, and the *peak* of each
is recorded — ``peak_open_blocks[tenant] <= quota`` is exactly the "zero
quota violations" check the tenancy bench gates on, with no sampling gap.
"""

from __future__ import annotations


class ReplicaLedger:
    """Exact integral of resident replicas (and blocks) over time."""

    def __init__(self):
        #: deployment_id -> (model_key, replicas, blocks, opened_s, tenant).
        self._open: dict[str, tuple] = {}
        #: model_key -> accumulated replica-seconds of closed deployments.
        self._replica_s: dict[str, float] = {}
        #: model_key -> accumulated block-seconds of closed deployments.
        self._block_s: dict[str, float] = {}
        #: tenant -> accumulated replica-seconds of closed deployments.
        self._replica_s_by_tenant: dict[str, float] = {}
        #: tenant -> accumulated block-seconds of closed deployments.
        self._block_s_by_tenant: dict[str, float] = {}
        #: tenant -> blocks currently resident (incremental, exact).
        self._open_blocks_by_tenant: dict[str, int] = {}
        #: tenant -> replica units currently resident.
        self._open_replicas_by_tenant: dict[str, int] = {}
        #: tenant -> historical maximum of the instantaneous open blocks.
        self.peak_open_blocks: dict[str, int] = {}
        #: tenant -> historical maximum of the instantaneous open replicas.
        self.peak_open_replicas: dict[str, int] = {}
        self.deployments_opened = 0
        self.deployments_closed = 0

    # -- controller notifications ---------------------------------------------

    def on_instantiate(self, deployment, now: float) -> None:
        plan = deployment.plan
        blocks = plan.replicas * min(
            image.virtual_blocks for image in plan.images.values()
        )
        tenant = getattr(deployment, "tenant", "")
        self._open[deployment.deployment_id] = (
            deployment.model_key, plan.replicas, blocks, now, tenant
        )
        open_blocks = self._open_blocks_by_tenant.get(tenant, 0) + blocks
        self._open_blocks_by_tenant[tenant] = open_blocks
        open_replicas = (
            self._open_replicas_by_tenant.get(tenant, 0) + plan.replicas
        )
        self._open_replicas_by_tenant[tenant] = open_replicas
        if open_blocks > self.peak_open_blocks.get(tenant, 0):
            self.peak_open_blocks[tenant] = open_blocks
        if open_replicas > self.peak_open_replicas.get(tenant, 0):
            self.peak_open_replicas[tenant] = open_replicas
        self.deployments_opened += 1

    def on_discard(self, deployment, now: float) -> None:
        entry = self._open.pop(deployment.deployment_id, None)
        if entry is None:
            return  # instantiated before the ledger was attached
        model_key, replicas, blocks, opened_s, tenant = entry
        lived = max(0.0, now - opened_s)
        self._replica_s[model_key] = (
            self._replica_s.get(model_key, 0.0) + replicas * lived
        )
        self._block_s[model_key] = (
            self._block_s.get(model_key, 0.0) + blocks * lived
        )
        self._replica_s_by_tenant[tenant] = (
            self._replica_s_by_tenant.get(tenant, 0.0) + replicas * lived
        )
        self._block_s_by_tenant[tenant] = (
            self._block_s_by_tenant.get(tenant, 0.0) + blocks * lived
        )
        self._open_blocks_by_tenant[tenant] -= blocks
        self._open_replicas_by_tenant[tenant] -= replicas
        self.deployments_closed += 1

    # -- queries ----------------------------------------------------------------

    def open_replicas(
        self, model_key: str | None = None, tenant: str | None = None
    ) -> int:
        """Replica units currently resident, filtered by model and/or
        tenant (``None`` = all)."""
        if model_key is None and tenant is not None:
            return self._open_replicas_by_tenant.get(tenant, 0)
        return sum(
            replicas
            for key, replicas, _, _, owner in self._open.values()
            if (model_key is None or key == model_key)
            and (tenant is None or owner == tenant)
        )

    def open_blocks(
        self, tenant: str | None = None, model_key: str | None = None
    ) -> int:
        """Virtual blocks currently resident, filtered by tenant and/or
        model.  The tenant-only form is O(1) — the quota guard sits on the
        placement hot path."""
        if model_key is None and tenant is not None:
            return self._open_blocks_by_tenant.get(tenant, 0)
        return sum(
            blocks
            for key, _, blocks, _, owner in self._open.values()
            if (model_key is None or key == model_key)
            and (tenant is None or owner == tenant)
        )

    def totals(self, at_s: float) -> dict:
        """Per-model, per-tenant and aggregate charge up to ``at_s``
        (non-destructive: still-open deployments are charged to ``at_s``
        without closing)."""
        replica_s = dict(self._replica_s)
        block_s = dict(self._block_s)
        tenant_replica_s = dict(self._replica_s_by_tenant)
        tenant_block_s = dict(self._block_s_by_tenant)
        for model_key, replicas, blocks, opened_s, tenant in self._open.values():
            lived = max(0.0, at_s - opened_s)
            replica_s[model_key] = replica_s.get(model_key, 0.0) + replicas * lived
            block_s[model_key] = block_s.get(model_key, 0.0) + blocks * lived
            tenant_replica_s[tenant] = (
                tenant_replica_s.get(tenant, 0.0) + replicas * lived
            )
            tenant_block_s[tenant] = (
                tenant_block_s.get(tenant, 0.0) + blocks * lived
            )
        return {
            "replica_seconds": sum(replica_s.values()),
            "block_seconds": sum(block_s.values()),
            "replica_seconds_by_model": {
                key: replica_s[key] for key in sorted(replica_s)
            },
            "block_seconds_by_model": {
                key: block_s[key] for key in sorted(block_s)
            },
            "replica_seconds_by_tenant": {
                key: tenant_replica_s[key] for key in sorted(tenant_replica_s)
            },
            "block_seconds_by_tenant": {
                key: tenant_block_s[key] for key in sorted(tenant_block_s)
            },
        }
