"""The per-model elastic autoscaler (the paper's scale-out knob made dynamic).

The paper picks a replica count once, at deployment time.  The
:class:`Autoscaler` closes the loop at run time: it consumes the signals
the system already produces — :class:`~repro.serving.frontend.
ServingFrontend` queue depth, a per-model arrival-rate EWMA, recent SLO
attainment, per-deployment busy state — and drives each model's replica
units between ``min_replicas`` and ``max_replicas``:

* **Scale-up** first tries to *widen* an idle deployment to the next
  wider catalog plan via :meth:`~repro.runtime.controller.
  SystemController.place_plan` (the brownout hand-off pattern in reverse:
  discard, place wider, re-place the original width on failure), and
  falls back to *adding* a second deployment of the narrowest plan.
* **Scale-down** never evicts hot state blindly: it only acts on an
  *idle* deployment (idleness is the drain — in-flight work cannot be
  lost), and either *retires* it behind a drain + checkpoint-to-host
  cost, or *narrows* it to a smaller plan, holding old and new
  concurrently so the model never has a coverage gap.

Decisions run as first-class DES events (``schedule_external`` ticks), so
they interleave with serving traffic, faults, and migrations at exact
simulated times.  The two watermarks are hysteretic and each direction
has its own cooldown, so steady load cannot make the scaler flap; a
fault-recovery scale-down restore (or any board failure) suppresses
scale-up for ``fault_suppress_s`` — the fleet just shrank because
capacity *vanished*, and growing into the hole would fight the repair.

Nothing here runs unless an ``Autoscaler`` is constructed and armed, so
the Fig. 12 golden path is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError
from ..perf.profiling import PROFILER
from ..runtime.deployment import DeploymentState
from .policy import AutoscaleParameters


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling decision, emitted onto the controller's event ring."""

    at_s: float
    model_key: str
    #: ``widen`` | ``add`` | ``retire`` | ``narrow``.
    action: str
    units_before: int
    units_after: int
    reason: str


@dataclass
class AutoscaleStats:
    """Counters for one autoscaler lifetime."""

    ticks: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    #: Scale-ups that widened an idle deployment in place.
    widenings: int = 0
    #: Scale-ups that added a deployment.
    additions: int = 0
    #: Scale-downs that retired a whole deployment.
    retirements: int = 0
    #: Scale-downs that narrowed a deployment's plan.
    narrowings: int = 0
    #: Scale-up decisions suppressed by the fault-coordination window.
    suppressed: int = 0
    #: Scale-ups wanted but not placeable right now.
    blocked_by_capacity: int = 0
    #: Peak concurrent replica units observed, per model.
    peak_units: dict = field(default_factory=dict)


class Autoscaler:
    """Elastic replica scaling over one :class:`ServingFrontend`."""

    def __init__(self, frontend, params: AutoscaleParameters | None = None):
        self.frontend = frontend
        self.controller = frontend.controller
        self.params = params or AutoscaleParameters()
        self.stats = AutoscaleStats()
        self._simulator = None
        self._horizon_s = 0.0
        #: model -> arrival-rate EWMA (requests/s).
        self._rate: dict[str, float] = {}
        #: model -> arrivals observed since the last tick.
        self._arrivals: dict[str, int] = {}
        self._last_up: dict[str, float] = {}
        self._last_down: dict[str, float] = {}
        self._last_tick_s = 0.0
        #: Scale-up suppressed until this instant (fault coordination).
        self._suppress_until = -1.0
        stats = self.controller.stats
        self._seen_scale_down_recoveries = stats.scale_down_recoveries
        self._seen_boards_failed = stats.boards_failed
        self._seen_completed = frontend.stats.completed
        self._seen_slo_hits = frontend.stats.slo_hits
        frontend.attach_autoscaler(self)
        # Single-owner elasticity: the base system's reactive
        # queue-pressure expansion defers to the autoscaler — two
        # uncoordinated growth loops over-provision and then fight each
        # other's scale-downs.
        if hasattr(frontend.system, "expansion_enabled"):
            frontend.system.expansion_enabled = False

    # -- simulator adoption ----------------------------------------------------

    def bind_simulator(self, simulator) -> None:
        self._simulator = simulator

    def arm(self, horizon_s: float) -> None:
        """Schedule decision ticks as DES events out to ``horizon_s``.

        Ticks self-perpetuate past the horizon while the frontend still
        holds queued requests (the backlog drain deserves scale decisions
        too) and stop once both the horizon has passed and the queues are
        empty, so the event queue always terminates.
        """
        if self._simulator is None:
            raise ReproError("autoscaler needs a bound simulator to arm")
        self._horizon_s = horizon_s
        self._simulator.schedule_external(self.params.interval_s, self._tick)

    def _tick(self, now: float) -> None:
        self.evaluate(now)
        if now + self.params.interval_s <= self._horizon_s or (
            self.frontend.queue_depth() > 0
        ):
            self._simulator.schedule_external(self.params.interval_s, self._tick)

    # -- signal intake ---------------------------------------------------------

    def observe_arrival(self, model_key: str, now: float) -> None:
        """Called by the frontend at every offered request."""
        self._arrivals[model_key] = self._arrivals.get(model_key, 0) + 1

    def rate(self, model_key: str) -> float:
        """The current arrival-rate EWMA for one model (requests/s)."""
        return self._rate.get(model_key, 0.0)

    def replica_units(self, model_key: str) -> int:
        """Resident replica units of one model: each deployment contributes
        its plan's replica count, whatever its state — a deployment mid
        reconfiguration already holds (or still holds) its blocks."""
        return sum(
            d.plan.replicas for d in self.controller.deployments_of(model_key)
        )

    def _recent_slo(self) -> float:
        """SLO attainment over completions since the last tick (1.0 when
        nothing completed — no evidence is not failure evidence)."""
        stats = self.frontend.stats
        completed = stats.completed - self._seen_completed
        hits = stats.slo_hits - self._seen_slo_hits
        self._seen_completed = stats.completed
        self._seen_slo_hits = stats.slo_hits
        return hits / completed if completed else 1.0

    def _check_fault_suppression(self, now: float) -> None:
        """Watch the controller's fault counters; any growth opens the
        scale-up suppression window."""
        stats = self.controller.stats
        if (
            stats.scale_down_recoveries > self._seen_scale_down_recoveries
            or stats.boards_failed > self._seen_boards_failed
        ):
            self._suppress_until = now + self.params.fault_suppress_s
        self._seen_scale_down_recoveries = stats.scale_down_recoveries
        self._seen_boards_failed = stats.boards_failed

    # -- the decision tick -----------------------------------------------------

    def evaluate(self, now: float) -> None:
        """One decision pass over every model with any signal history.

        Callable directly (tests, synchronous mode) or via the armed DES
        tick.  At most one scaling action per model per tick — the
        cooldowns would gate a second anyway, and one-step moves keep the
        control loop damped.
        """
        self.stats.ticks += 1
        PROFILER.incr("autoscale.ticks")
        self._check_fault_suppression(now)
        recent_slo = self._recent_slo()
        interval = max(now - self._last_tick_s, 1e-12)
        self._last_tick_s = now
        models = sorted(
            set(self._rate)
            | set(self._arrivals)
            | set(self.controller.models_resident())
        )
        for model_key in models:
            inst = self._arrivals.pop(model_key, 0) / interval
            alpha = self.params.rate_alpha
            self._rate[model_key] = (
                alpha * inst + (1.0 - alpha) * self._rate.get(model_key, 0.0)
            )
            units = self.replica_units(model_key)
            if units > self.stats.peak_units.get(model_key, 0):
                self.stats.peak_units[model_key] = units
            depth = self.frontend.queue_depth(model_key)
            if self._should_scale_up(model_key, depth, recent_slo, units, now):
                self._scale_up(model_key, units, depth, now)
            elif self._should_scale_down(model_key, depth, units, now):
                self._scale_down(model_key, units, depth, now)

    # -- scale-up --------------------------------------------------------------

    def _should_scale_up(
        self, model_key: str, depth: int, recent_slo: float, units: int, now: float
    ) -> bool:
        pressured = depth >= self.params.high_watermark or (
            depth > 0 and recent_slo < self.params.slo_floor
        )
        if not pressured or units >= self.params.max_replicas:
            return False
        if now < self._suppress_until:
            self.stats.suppressed += 1
            PROFILER.incr("autoscale.suppressed")
            return False
        last = self._last_up.get(model_key)
        return last is None or now - last >= self.params.up_cooldown_s

    def _scale_up(self, model_key: str, units: int, depth: int, now: float) -> None:
        reason = f"depth={depth} rate={self._rate.get(model_key, 0.0):.0f}/s"
        if self.params.widen_enabled and self._try_widen(
            model_key, units, now, reason
        ):
            return
        self._try_add(model_key, units, now, reason)

    def _plans(self, model_key: str) -> list:
        return self.controller.catalog.entry_by_key(model_key).sorted_plans()

    def _try_widen(
        self, model_key: str, units: int, now: float, reason: str
    ) -> bool:
        """Switch an idle deployment to the next wider catalog plan."""
        controller = self.controller
        deployment = controller.find_idle_deployment(model_key)
        if deployment is None:
            return False
        current = deployment.plan.replicas
        wider = [
            plan
            for plan in self._plans(model_key)
            if plan.replicas > current
            and units - current + plan.replicas <= self.params.max_replicas
        ]
        if not wider:
            return False
        target = min(wider, key=lambda plan: plan.replicas)
        swapped = self._swap_plan(deployment, target, now)
        if swapped is None:
            return False
        self.stats.scale_ups += 1
        self.stats.widenings += 1
        self._last_up[model_key] = now
        PROFILER.incr("autoscale.widenings")
        self._emit(
            now, model_key, "widen", units, units - current + target.replicas,
            reason,
        )
        return True

    def _try_add(
        self, model_key: str, units: int, now: float, reason: str
    ) -> None:
        """Place one more deployment of the narrowest plan that fits the
        unit budget (brownout's narrow-first preference: grow in the
        smallest increments the catalog offers)."""
        controller = self.controller
        candidates = [
            plan
            for plan in self._plans(model_key)
            if units + plan.replicas <= self.params.max_replicas
        ]
        if not candidates:
            return
        target = min(candidates, key=controller.plan_footprint)
        placed = controller.place_plan(target, now)
        if placed is None:
            self.stats.blocked_by_capacity += 1
            PROFILER.incr("autoscale.blocked")
            return
        new_deployment, reconfig = placed
        self._hold_until_ready(new_deployment, reconfig)
        self.stats.scale_ups += 1
        self.stats.additions += 1
        self._last_up[model_key] = now
        PROFILER.incr("autoscale.additions")
        self._emit(
            now, model_key, "add", units, units + target.replicas, reason
        )

    # -- scale-down ------------------------------------------------------------

    def _should_scale_down(
        self, model_key: str, depth: int, units: int, now: float
    ) -> bool:
        params = self.params
        if depth > params.low_watermark or units <= params.min_replicas:
            return False
        for last in (self._last_down.get(model_key), self._last_up.get(model_key)):
            if last is not None and now - last < params.down_cooldown_s:
                return False
        deployments = self.controller.deployments_of(model_key)
        if not deployments:
            return False
        busy = sum(
            1 for d in deployments if d.state is not DeploymentState.IDLE
        )
        return busy / len(deployments) <= params.down_busy_fraction

    def _fits_after(self, model_key: str, removed_units: int) -> bool:
        """Would the EWMA arrival rate still fit ``down_target_util`` of
        the serving capacity remaining after removing ``removed_units``
        replica units?  Capacity is estimated from each deployment's
        cached service time (1/service_s requests/s), scaled by the
        surviving unit fraction — conservative and cheap."""
        deployments = self.controller.deployments_of(model_key)
        capacity = sum(
            1.0 / d.service_s for d in deployments if d.service_s > 0
        )
        units = sum(d.plan.replicas for d in deployments)
        if units <= 0 or capacity <= 0:
            return False
        remaining = capacity * (units - removed_units) / units
        return self._rate.get(model_key, 0.0) <= (
            self.params.down_target_util * remaining
        )

    def _scale_down(self, model_key: str, units: int, depth: int, now: float) -> None:
        """Retire the LRU idle deployment, or narrow it when it is the
        model's only one.  Idleness is the drain: nothing is in flight on
        the victim, and narrowing holds old and new concurrently, so no
        request is ever lost to a scale-down."""
        controller = self.controller
        deployments = controller.deployments_of(model_key)
        idle = [d for d in deployments if d.is_idle]
        if not idle:
            return
        victim = min(idle, key=lambda d: d.last_used_s)
        reason = f"depth={depth} rate={self._rate.get(model_key, 0.0):.0f}/s"
        if (
            len(deployments) > 1
            and units - victim.plan.replicas >= self.params.min_replicas
        ):
            if self._fits_after(model_key, victim.plan.replicas):
                self._retire(victim, units, now, reason)
            return
        narrower = [
            plan
            for plan in self._plans(model_key)
            if plan.replicas < victim.plan.replicas
            and units - victim.plan.replicas + plan.replicas
            >= self.params.min_replicas
        ]
        if not narrower:
            return
        target = max(narrower, key=lambda plan: plan.replicas)
        if not self._fits_after(
            model_key, victim.plan.replicas - target.replicas
        ):
            return
        self._narrow(victim, target, units, now, reason)

    def _retire(self, deployment, units: int, now: float, reason: str) -> None:
        """Drain + checkpoint-to-host, then discard.

        The deployment is idle (drained by definition); the charged cost
        is the migration drain window plus streaming its architectural
        state over the host link — the checkpoint is what lets a later
        scale-up restore warm state instead of cold-starting.
        """
        controller = self.controller
        model_key = deployment.model_key
        cost = self._checkpoint_cost(deployment)
        self.stats.scale_downs += 1
        self.stats.retirements += 1
        self._last_down[model_key] = now
        PROFILER.incr("autoscale.retirements")
        self._emit(
            now, model_key, "retire", units,
            units - deployment.plan.replicas, reason,
        )
        if self._simulator is None:
            controller.discard(deployment)
            return
        deployment.state = DeploymentState.MIGRATING

        def complete(fire_now, d=deployment):
            if d.deployment_id in controller.deployments:
                # pending_recovery is moot: the deployment is leaving.
                d.pending_recovery = False
                controller.discard(d)

        self._simulator.schedule_external(cost, complete)

    def _narrow(
        self, deployment, target, units: int, now: float, reason: str
    ) -> None:
        """Checkpoint + migrate the model's only deployment to a narrower
        plan, holding both widths so coverage never drops to zero."""
        controller = self.controller
        model_key = deployment.model_key
        placed = controller.place_plan(target, now)
        if placed is None:
            return  # no room for the narrow copy right now; try next tick
        new_deployment, reconfig = placed
        cost = reconfig + self._checkpoint_cost(deployment)
        self.stats.scale_downs += 1
        self.stats.narrowings += 1
        self._last_down[model_key] = now
        PROFILER.incr("autoscale.narrowings")
        self._emit(
            now, model_key, "narrow", units,
            units - deployment.plan.replicas + target.replicas, reason,
        )
        if self._simulator is None:
            controller.discard(deployment)
            return
        deployment.state = DeploymentState.MIGRATING
        new_deployment.state = DeploymentState.RECOVERING

        def complete(fire_now, old=deployment, new=new_deployment):
            if old.deployment_id in controller.deployments:
                old.pending_recovery = False
                controller.discard(old)
            if new.deployment_id not in controller.deployments:
                return
            if new.pending_recovery:
                if controller.recovery_enabled:
                    controller.recovery.recover(new, fire_now)
                else:
                    controller.discard(new)
                return
            new.state = DeploymentState.IDLE
            new.last_used_s = fire_now
            new.checkpoint_origin_s = fire_now

        self._simulator.schedule_external(cost, complete)

    def _checkpoint_cost(self, deployment) -> float:
        """Drain plus architectural state streamed over the host link
        (mirrors the recovery manager's checkpoint-restore cost model)."""
        controller = self.controller
        engine = controller.migration
        state_bytes = sum(
            engine.state_bytes(deployment, index)
            for index in range(len(deployment.placements))
        )
        link = controller.cluster.host_link
        return (
            engine.params.drain_s
            + link.latency_s
            + state_bytes * 8.0 / link.bandwidth_bps
        )

    # -- shared mechanics ------------------------------------------------------

    def _swap_plan(self, deployment, target_plan, now: float):
        """Discard-first width switch with fallback (the brownout
        ``_switch_plan`` hand-off): the old deployment's blocks fund the
        new placement; on failure the original width goes back into the
        space just freed."""
        controller = self.controller
        original_plan = deployment.plan
        controller.discard(deployment)
        placed = controller.place_plan(target_plan, now)
        if placed is None:
            fallback = controller.place_plan(original_plan, now)
            if fallback is not None:
                self._hold_until_ready(*fallback)
            self.stats.blocked_by_capacity += 1
            PROFILER.incr("autoscale.blocked")
            return None
        self._hold_until_ready(*placed)
        return placed

    def _hold_until_ready(self, deployment, reconfig_s: float) -> None:
        """A freshly placed deployment is unusable until its blocks are
        configured; with a DES bound that wait is a first-class event."""
        if self._simulator is None:
            return
        controller = self.controller
        deployment.state = DeploymentState.RECOVERING

        def complete(fire_now, d=deployment):
            if d.deployment_id not in controller.deployments:
                return
            if d.pending_recovery:
                if controller.recovery_enabled:
                    controller.recovery.recover(d, fire_now)
                else:
                    controller.discard(d)
                return
            d.state = DeploymentState.IDLE
            d.last_used_s = fire_now
            d.checkpoint_origin_s = fire_now

        self._simulator.schedule_external(reconfig_s, complete)

    def _emit(
        self,
        now: float,
        model_key: str,
        action: str,
        units_before: int,
        units_after: int,
        reason: str,
    ) -> None:
        self.controller.emit_event(
            ScaleEvent(
                at_s=now,
                model_key=model_key,
                action=action,
                units_before=units_before,
                units_after=units_after,
                reason=reason,
            )
        )
