"""Resource-algebra tests, including hypothesis properties on the vector
space structure that the whole mapping stack relies on."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.resources import RESOURCE_KINDS, ResourceVector, total


def vec(luts=0, ffs=0, bram=0, uram=0, dsps=0):
    return ResourceVector(luts, ffs, bram, uram, dsps)


nonneg = st.floats(min_value=0.0, max_value=1e7, allow_nan=False)
vectors = st.builds(ResourceVector, nonneg, nonneg, nonneg, nonneg, nonneg)


class TestConstruction:
    def test_zero_is_all_zero(self):
        assert all(component == 0 for component in ResourceVector.zero())

    def test_from_dict_roundtrip(self):
        original = vec(1, 2, 3, 4, 5)
        assert ResourceVector.from_dict(original.as_dict()) == original

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TypeError):
            ResourceVector.from_dict({"luts": 1, "wires": 2})

    def test_kind_order_matches_iteration(self):
        v = vec(1, 2, 3, 4, 5)
        assert list(v) == [v.as_dict()[k] for k in RESOURCE_KINDS]


class TestArithmetic:
    def test_addition_componentwise(self):
        assert vec(1, 2) + vec(3, 4) == vec(4, 6)

    def test_subtraction(self):
        assert vec(5, 5) - vec(2, 1) == vec(3, 4)

    def test_scalar_multiplication(self):
        assert vec(2, 4) * 0.5 == vec(1, 2)

    def test_rmul(self):
        assert 3 * vec(1, 1) == vec(3, 3)

    def test_add_non_vector_rejected(self):
        with pytest.raises(TypeError):
            vec(1) + 3  # type: ignore[operator]


class TestContainment:
    def test_le_true_when_fits(self):
        assert vec(1, 1, 1, 1, 1) <= vec(2, 2, 2, 2, 2)

    def test_le_false_on_any_exceeding_component(self):
        assert not (vec(3, 1) <= vec(2, 2))

    def test_fits_in_with_slack(self):
        demand = vec(95)
        capacity = vec(100)
        assert demand.fits_in(capacity, slack=0.0)
        assert not demand.fits_in(capacity, slack=0.10)

    def test_is_nonnegative(self):
        assert vec(0, 0).is_nonnegative()
        assert not (vec(1) - vec(2)).is_nonnegative()


class TestMaxRatio:
    def test_binding_resource(self):
        demand = vec(luts=50, dsps=90)
        capacity = vec(luts=100, dsps=100)
        assert demand.max_ratio(capacity) == pytest.approx(0.9)

    def test_zero_demand_is_zero(self):
        assert vec().max_ratio(vec(luts=100)) == 0.0

    def test_impossible_demand_is_inf(self):
        assert vec(uram=5).max_ratio(vec(luts=100)) == math.inf

    def test_utilisation_reports_nan_for_zero_capacity(self):
        report = vec(luts=10).utilisation(vec(luts=100))
        assert report["luts"] == pytest.approx(0.1)
        assert math.isnan(report["uram_bits"])


class TestHelpers:
    def test_total_sums(self):
        assert total([vec(1), vec(2), vec(3)]) == vec(6)

    def test_total_empty_is_zero(self):
        assert total([]) == ResourceVector.zero()

    def test_ceil(self):
        assert vec(1.2, 2.0).ceil() == vec(2, 2)

    def test_describe_contains_all_kinds(self):
        text = vec(1000, 2000, 3e6, 0, 42).describe()
        for tag in ("LUT=", "FF=", "BRAM=", "URAM=", "DSP="):
            assert tag in text


# -- hypothesis properties -----------------------------------------------------


@given(vectors, vectors)
def test_addition_commutes(a, b):
    assert a + b == b + a


@given(vectors, vectors, vectors)
def test_addition_associates(a, b, c):
    left = (a + b) + c
    right = a + (b + c)
    for x, y in zip(left, right):
        assert x == pytest.approx(y)


@given(vectors)
def test_zero_is_identity(a):
    assert a + ResourceVector.zero() == a


@given(vectors, vectors)
def test_le_implies_max_ratio_at_most_one(a, b):
    if a <= b:
        assert a.max_ratio(b) <= 1.0 + 1e-9


@given(vectors, st.floats(min_value=0.0, max_value=100.0))
def test_scaling_preserves_containment(a, factor):
    scaled = a * factor
    if factor <= 1.0:
        assert scaled <= a or a == ResourceVector.zero() or any(
            component == 0 for component in a
        ) or scaled <= a
    # scaling by >= 1 never shrinks any component
    if factor >= 1.0:
        assert a <= scaled


@given(vectors)
def test_self_utilisation_is_one_or_nan(a):
    for kind, value in a.utilisation(a).items():
        component = a.as_dict()[kind]
        if component > 0:
            assert value == pytest.approx(1.0)
        else:
            assert math.isnan(value)
