"""Parser/emitter tests, including the round-trip property on generated
accelerator designs."""

import pytest

from repro.accel import BW_V37, generate_accelerator
from repro.errors import RTLParseError
from repro.rtl import emit_design, emit_module, parse_design
from repro.rtl.ir import Direction


SIMPLE = """
// a comment
module leaf (a, y);
  input [7:0] a;
  output [7:0] y;
  assign y = a;
endmodule

module top (a, y);
  input [7:0] a;
  output [7:0] y;
  wire [7:0] mid;
  leaf u0 (.a(a), .y(mid));
  leaf u1 (.a(mid), .y(y));
endmodule
"""


class TestParser:
    def test_parses_modules(self):
        design = parse_design(SIMPLE)
        assert set(design.modules) == {"leaf", "top"}

    def test_last_module_is_top(self):
        assert parse_design(SIMPLE).top == "top"

    def test_port_widths(self):
        design = parse_design(SIMPLE)
        assert design.modules["leaf"].ports["a"].width == 8

    def test_instances_and_connections(self):
        design = parse_design(SIMPLE)
        top = design.modules["top"]
        assert top.instances["u0"].connections == {"a": "a", "y": "mid"}

    def test_assign(self):
        design = parse_design(SIMPLE)
        leaf = design.modules["leaf"]
        assert leaf.assigns[0].target == "y"

    def test_ansi_header(self):
        design = parse_design(
            "module m (input [3:0] a, output y);\nendmodule\n"
        )
        module = design.modules["m"]
        assert module.ports["a"].width == 4
        assert module.ports["y"].direction is Direction.OUTPUT

    def test_parameters(self):
        design = parse_design(
            'module m (y);\n output y;\n'
            ' BRAM36 #(.DEPTH(512), .KIND("uram")) bank (.dout(y));\n'
            "endmodule\n"
        )
        inst = design.modules["m"].instances["bank"]
        assert inst.parameters == {"DEPTH": 512, "KIND": "uram"}

    def test_attributes(self):
        design = parse_design(
            '(* role = "control" *)\nmodule m (a);\n input a;\nendmodule\n'
        )
        assert design.modules["m"].attributes["role"] == "control"

    def test_block_comments_skipped(self):
        design = parse_design("/* header\n spans lines */ module m ();\nendmodule")
        assert "m" in design.modules

    def test_multiple_decls_one_line(self):
        design = parse_design("module m (a, b);\n input a, b;\nendmodule")
        assert set(design.modules["m"].ports) == {"a", "b"}

    def test_rejects_garbage(self):
        with pytest.raises(RTLParseError):
            parse_design("always @(posedge clk) begin end")

    def test_rejects_header_port_without_decl(self):
        with pytest.raises(RTLParseError):
            parse_design("module m (ghost);\nendmodule")

    def test_rejects_unterminated_module(self):
        with pytest.raises(RTLParseError):
            parse_design("module m (a);\n input a;\n")

    def test_rejects_empty_source(self):
        with pytest.raises(RTLParseError):
            parse_design("// nothing here\n")

    def test_error_carries_line_number(self):
        try:
            parse_design("module m (a);\n input a;\n %bad\nendmodule")
        except RTLParseError as err:
            assert "line 3" in str(err)
        else:  # pragma: no cover
            pytest.fail("expected RTLParseError")


class TestEmitter:
    def test_emit_module_contains_ports(self, mini_design):
        text = emit_module(mini_design.modules["lane"])
        assert "module lane" in text
        assert "input [63:0] vin;" in text

    def test_emit_design_top_last(self, mini_design):
        text = emit_design(mini_design)
        assert text.rstrip().endswith("endmodule")
        last_module = text.rstrip().rsplit("module ", 1)[1]
        assert last_module.startswith("top")


class TestRoundTrip:
    def test_simple_roundtrip_stable(self):
        design = parse_design(SIMPLE)
        once = emit_design(design)
        twice = emit_design(parse_design(once))
        assert once == twice

    def test_mini_design_roundtrip(self, mini_design):
        text = emit_design(mini_design)
        parsed = parse_design(text, name=mini_design.name)
        assert set(parsed.modules) == set(mini_design.modules)
        assert parsed.top == mini_design.top
        for name, module in mini_design.modules.items():
            other = parsed.modules[name]
            assert set(other.ports) == set(module.ports)
            assert set(other.instances) == set(module.instances)

    def test_generated_accelerator_roundtrip(self):
        design = generate_accelerator(BW_V37.with_tiles(3, name="rt-3t"))
        text = emit_design(design)
        parsed = parse_design(text)
        assert set(parsed.modules) == set(design.modules)
        top = parsed.modules["top"]
        assert len(top.instances) == len(design.modules["top"].instances)
