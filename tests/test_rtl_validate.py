"""Design-validation tests."""

import pytest

from repro.errors import RTLValidationError, UnknownModuleError
from repro.rtl import validate_design
from repro.rtl.ir import Design, Direction, Module


def _design_with_top() -> tuple:
    design = Design("d")
    top = Module("top")
    top.add_port("clk", Direction.INPUT)
    design.add_module(top)
    design.top = "top"
    return design, top


class TestHardErrors:
    def test_clean_design_passes(self):
        design = Design("clean")
        top = Module("top")
        top.add_port("clk", Direction.INPUT)
        top.add_port("d", Direction.INPUT)
        top.add_port("q", Direction.OUTPUT)
        top.add_instance("u0", "DFF", {"clk": "clk", "d": "d", "q": "q"})
        design.add_module(top)
        design.top = "top"
        assert validate_design(design) == []

    def test_fixture_design_has_only_warnings(self, mini_design):
        # The miniature accelerator has intentionally-abstract outputs
        # (undriven warnings) but no hard errors.
        warnings = validate_design(mini_design)
        assert all(isinstance(w, str) for w in warnings)

    def test_unknown_module_instance(self):
        design, top = _design_with_top()
        top.add_instance("u0", "mystery")
        with pytest.raises(UnknownModuleError):
            validate_design(design)

    def test_connection_to_missing_port(self):
        design, top = _design_with_top()
        top.add_instance("u0", "DFF", {"nonexistent": "clk"})
        with pytest.raises(RTLValidationError):
            validate_design(design)

    def test_connection_to_undeclared_net(self):
        design, top = _design_with_top()
        top.add_instance("u0", "DFF", {"clk": "ghost"})
        with pytest.raises(RTLValidationError):
            validate_design(design)

    def test_width_mismatch(self):
        design, top = _design_with_top()
        top.add_net("wide", 8)
        top.add_instance("u0", "DFF", {"d": "wide"})
        with pytest.raises(RTLValidationError):
            validate_design(design)

    def test_assign_unknown_net(self):
        from repro.rtl.ir import Assign

        design, top = _design_with_top()
        top.assigns.append(Assign("ghost", "clk"))
        with pytest.raises(RTLValidationError):
            validate_design(design)

    def test_cyclic_hierarchy_rejected(self):
        design = Design("d")
        a = Module("a")
        a.add_instance("u", "b")
        b = Module("b")
        b.add_instance("u", "a")
        design.add_module(a)
        design.add_module(b)
        design.top = "a"
        with pytest.raises(RTLValidationError, match="cyclic"):
            validate_design(design)

    def test_self_instantiation_rejected(self):
        design = Design("d")
        a = Module("a")
        a.add_instance("u", "a")
        design.add_module(a)
        design.top = "a"
        with pytest.raises(RTLValidationError, match="cyclic"):
            validate_design(design)

    def test_dangling_net_hard_when_disallowed(self):
        design, top = _design_with_top()
        top.add_net("floating")
        with pytest.raises(RTLValidationError, match="dangling"):
            validate_design(design, allow_dangling=False)


class TestWarnings:
    def test_dangling_net_warns(self):
        design, top = _design_with_top()
        top.add_net("floating")
        warnings = validate_design(design)
        assert any("dangling" in w for w in warnings)

    def test_multiple_drivers_warn(self):
        design, top = _design_with_top()
        top.add_net("n")
        top.add_instance("u0", "DFF", {"clk": "clk", "q": "n"})
        top.add_instance("u1", "DFF", {"clk": "clk", "q": "n"})
        warnings = validate_design(design)
        assert any("2 drivers" in w for w in warnings)

    def test_undriven_output_warns(self):
        design, top = _design_with_top()
        top.add_port("y", Direction.OUTPUT)
        top.add_instance("u0", "DFF", {"clk": "clk"})
        warnings = validate_design(design)
        assert any("undriven" in w for w in warnings)
