"""Cluster-substrate tests: event queue, ring network, topology and the
discrete-event simulator."""

import pytest

from repro.cluster import (
    ClusterSimulator,
    EventQueue,
    FPGACluster,
    NetworkParameters,
    RingNetwork,
    Task,
    paper_cluster,
)
from repro.cluster.topology import homogeneous_cluster
from repro.errors import SimulationError
from repro.units import us
from repro.vital import XCKU115, XCVU37P, PhysicalFPGA


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, fired.append, "late")
        queue.schedule(1.0, fired.append, "early")
        queue.run()
        assert fired == ["early", "late"]

    def test_ties_break_by_insertion(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, fired.append, "first")
        queue.schedule(1.0, fired.append, "second")
        queue.run()
        assert fired == ["first", "second"]

    def test_schedule_in_relative(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: queue.schedule_in(0.5, fired.append, "x"))
        queue.run()
        assert queue.now == pytest.approx(1.5)

    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run()
        with pytest.raises(SimulationError):
            queue.schedule(0.5, lambda: None)

    def test_run_until(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, fired.append, "a")
        queue.schedule(5.0, fired.append, "b")
        queue.run(until=2.0)
        assert fired == ["a"]
        assert queue.now == 2.0

    def test_runaway_detected(self):
        queue = EventQueue()

        def rearm():
            queue.schedule_in(0.001, rearm)

        queue.schedule(0.0, rearm)
        with pytest.raises(SimulationError, match="runaway"):
            queue.run(max_events=100)


class TestRingNetwork:
    def _ring(self, nodes=4, **kwargs):
        ids = [f"n{i}" for i in range(nodes)]
        return RingNetwork(ids, NetworkParameters(**kwargs))

    def test_needs_two_nodes(self):
        with pytest.raises(SimulationError):
            RingNetwork(["solo"])

    def test_hops_shortest_direction(self):
        ring = self._ring(4)
        assert ring.hops("n0", "n1") == 1
        assert ring.hops("n0", "n3") == 1  # wraps around
        assert ring.hops("n0", "n2") == 2

    def test_unknown_node(self):
        with pytest.raises(SimulationError):
            self._ring().hops("n0", "ghost")

    def test_diameter(self):
        assert self._ring(4).diameter() == 2
        assert self._ring(5).diameter() == 2

    def test_transfer_time_same_node_serialisation_only(self):
        """Loopback transfers pay one serialisation pass, no link costs.

        A zero-byte loopback is genuinely free, a non-trivial one costs
        exactly the FIFO streaming time: no per-hop latency and no Fig. 11
        added latency, because the counter module sits on ring links the
        transfer never enters.
        """
        ring = self._ring()
        assert ring.transfer_time("n0", "n0", 0) == 0.0
        expected = 8.0 * 1000 / ring.params.bandwidth_bps
        assert ring.transfer_time("n0", "n0", 1000) == pytest.approx(expected)
        # The added-latency knob must not leak into the loopback path.
        with_knob = ring.transfer_time("n0", "n0", 1000, added_latency_s=us(5.0))
        assert with_knob == pytest.approx(expected)
        # Strictly cheaper than the equivalent one-hop transfer.
        assert with_knob < ring.transfer_time("n0", "n1", 1000)

    def test_transfer_time_same_node_validates_nodes(self):
        """src == dst must not bypass node-membership validation."""
        with pytest.raises(SimulationError):
            self._ring().transfer_time("ghost", "ghost", 1000)

    def test_transfer_time_scales_with_bytes_and_hops(self):
        ring = self._ring(4)
        one = ring.transfer_time("n0", "n1", 1024)
        two_hops = ring.transfer_time("n0", "n2", 1024)
        bigger = ring.transfer_time("n0", "n1", 4096)
        assert two_hops > one
        assert bigger > one

    def test_added_latency_knob(self):
        """The Fig. 11 counter+FIFO module: a pure additive delay."""
        ring = self._ring()
        base = ring.exchange_time(["n0", "n1"], 512)
        delayed = ring.exchange_time(["n0", "n1"], 512, added_latency_s=us(0.6))
        assert delayed - base == pytest.approx(us(0.6))

    def test_exchange_single_member_free(self):
        assert self._ring().exchange_time(["n0"], 512) == 0.0

    def test_exchange_worst_pair_dominates(self):
        ring = self._ring(6)
        near = ring.exchange_time(["n0", "n1"], 256)
        far = ring.exchange_time(["n0", "n3"], 256)
        assert far > near


class TestTopology:
    def test_paper_cluster_composition(self):
        cluster = paper_cluster()
        assert len(cluster.boards) == 4
        assert len(cluster.boards_of_type("XCVU37P")) == 3
        assert len(cluster.boards_of_type("XCKU115")) == 1
        assert cluster.device_types() == ["XCVU37P", "XCKU115"]

    def test_total_free_blocks(self):
        free = paper_cluster().total_free_blocks()
        assert free == {"XCVU37P": 48, "XCKU115": 10}

    def test_reset_releases_everything(self):
        cluster = paper_cluster()
        cluster.board("vu37p-0").allocate("d", 5)
        cluster.reset()
        assert cluster.board("vu37p-0").free_blocks == 16

    def test_duplicate_ids_rejected(self):
        boards = [PhysicalFPGA("same", XCVU37P), PhysicalFPGA("same", XCKU115)]
        with pytest.raises(SimulationError):
            FPGACluster(boards)

    def test_unknown_board(self):
        with pytest.raises(SimulationError):
            paper_cluster().board("nope")

    def test_homogeneous_helper(self):
        cluster = homogeneous_cluster(XCKU115, 3)
        assert len(cluster.boards) == 3
        assert cluster.device_types() == ["XCKU115"]


class _OneSlotScheduler:
    """Test double: one task at a time, fixed service."""

    def __init__(self, service=1.0):
        self.service = service
        self.busy = False
        self.started = []

    def try_start(self, task, now):
        if self.busy:
            return None
        self.busy = True
        self.started.append(task.task_id)
        return self.service

    def on_finish(self, task, now):
        self.busy = False


class _ResidencyScheduler:
    """One-slot test double with the optional ``has_fast_path`` method:
    one model is 'resident' (hot) and starts without reconfiguration."""

    def __init__(self, hot="hot"):
        self.hot = hot
        self.busy = False
        self.order = []

    def has_fast_path(self, task):
        return task.model_key == self.hot

    def try_start(self, task, now):
        if self.busy:
            return None
        self.busy = True
        self.order.append(task.model_key)
        return 0.01

    def on_finish(self, task, now):
        self.busy = False


class _TimeGatedScheduler:
    """Declines every task until it has aged past a fixed gate, and
    exposes the optional ``retry_hint`` so the simulator can skip the
    provably fruitless attempts in between."""

    def __init__(self, gate_s=0.1):
        self.gate_s = gate_s
        self.attempts = 0
        self.hints = 0

    def try_start(self, task, now):
        self.attempts += 1
        if now - task.arrival_s < self.gate_s:
            return None
        return 0.001

    def on_finish(self, task, now):
        pass

    def retry_hint(self, task, now):
        self.hints += 1
        return task.arrival_s + self.gate_s


class _UnhintedTimeGatedScheduler(_TimeGatedScheduler):
    """Same gate, no hint (the simulator treats ``None`` as absent)."""

    retry_hint = None


class TestOptionalSchedulerProtocol:
    """The simulator must work with and without the optional
    ``has_fast_path`` / ``retry_hint`` methods (discovered via getattr)."""

    def test_fast_path_tasks_served_first(self):
        scheduler = _ResidencyScheduler(hot="hot")
        tasks = [
            Task(task_id=0, model_key="hot", arrival_s=0.0, size_class="S"),
            Task(task_id=1, model_key="cold", arrival_s=0.0, size_class="S"),
            Task(task_id=2, model_key="hot", arrival_s=0.0, size_class="S"),
        ]
        result = ClusterSimulator(scheduler, "t").run(tasks)
        assert len(result.completed) == 3
        # The first hot task takes the slot; cold and hot queue behind it.
        # FIFO would then serve cold first — the locality pass reorders the
        # scan so the resident model's queued work drains first.
        assert scheduler.order == ["hot", "hot", "cold"]

    def test_retry_hint_gates_attempts(self):
        scheduler = _TimeGatedScheduler(gate_s=0.1)
        task = Task(task_id=0, model_key="m", arrival_s=0.0, size_class="S")
        result = ClusterSimulator(scheduler, "t").run([task])
        assert len(result.completed) == 1
        # One declined attempt sets the watermark; the hint then suppresses
        # every retry poll until the clock reaches the gate.
        assert scheduler.hints == 1
        assert scheduler.attempts == 2

    def test_no_hint_falls_back_to_exhaustive_retry(self):
        scheduler = _UnhintedTimeGatedScheduler(gate_s=0.1)
        task = Task(task_id=0, model_key="m", arrival_s=0.0, size_class="S")
        result = ClusterSimulator(scheduler, "t").run([task])
        assert len(result.completed) == 1
        assert scheduler.hints == 0
        # Without a hint the simulator re-attempts on every retry poll:
        # many more try_start calls for the identical schedule.
        assert scheduler.attempts > 10


class TestClusterSimulator:
    def _tasks(self, count, gap=0.0):
        return [
            Task(task_id=i, model_key="m", arrival_s=i * gap, size_class="S")
            for i in range(count)
        ]

    def test_serialises_on_one_slot(self):
        scheduler = _OneSlotScheduler(service=1.0)
        result = ClusterSimulator(scheduler, "test").run(self._tasks(3))
        assert len(result.completed) == 3
        assert result.makespan_s == pytest.approx(3.0)
        assert result.throughput == pytest.approx(1.0)

    def test_latency_accounts_queueing(self):
        scheduler = _OneSlotScheduler(service=1.0)
        result = ClusterSimulator(scheduler, "test").run(self._tasks(2))
        by_id = {t.task_id: t for t in result.completed}
        assert by_id[0].latency_s == pytest.approx(1.0)
        assert by_id[1].latency_s == pytest.approx(2.0)

    def test_no_tasks_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSimulator(_OneSlotScheduler(), "t").run([])

    def test_negative_service_rejected(self):
        class Bad:
            def try_start(self, task, now):
                return -1.0

            def on_finish(self, task, now):
                pass

        with pytest.raises(SimulationError, match="negative"):
            ClusterSimulator(Bad(), "t").run(self._tasks(1))

    def test_never_placeable_detected(self):
        class Never:
            def try_start(self, task, now):
                return None

            def on_finish(self, task, now):  # pragma: no cover
                pass

        with pytest.raises(SimulationError):
            ClusterSimulator(Never(), "t").run(self._tasks(1))

    def test_per_class_counts(self):
        scheduler = _OneSlotScheduler(service=0.1)
        tasks = self._tasks(4)
        for task in tasks[:2]:
            task.size_class = "L"
        result = ClusterSimulator(scheduler, "t").run(tasks)
        assert result.per_class_counts() == {"L": 2, "S": 2}
