"""Serving-edge tests (:mod:`repro.serving`).

Covers the policy primitives (token bucket, parameters, backoff), the
admission path (bounded queues, tail vs head drop), deadline expiry at
dequeue, the placement retry budget and abandonment, the per-board
circuit-breaker state machine (unit and DES-integrated), brownout
plan-switching, the new arrival processes, and the recovery-backoff
surfacing added alongside the frontend.
"""

import pytest

from repro.cluster import ClusterSimulator, Task, paper_cluster
from repro.errors import ReproError
from repro.faults import FaultInjector, RecoveryAbandoned
from repro.runtime import Catalog, build_system
from repro.serving import (
    BreakerState,
    CircuitBreaker,
    Request,
    RequestOutcome,
    ServingFrontend,
    ServingParameters,
    SheddingPolicy,
    TokenBucket,
)
from repro.vital import BoardHealth, VitalCompiler
from repro.workloads import diurnal_arrivals, mmpp_arrivals


@pytest.fixture(scope="module")
def catalog():
    return Catalog(VitalCompiler())


def _frontend(catalog, recovery=True, **param_overrides):
    cluster = paper_cluster()
    system = build_system("proposed", cluster, catalog, recovery=recovery)
    params = ServingParameters(**param_overrides)
    return cluster, system, ServingFrontend(system, params)


def _requests(count, model_key="gru-h512-t1", gap_s=0.001, deadline_s=0.0):
    return [
        Request(
            task_id=index,
            model_key=model_key,
            arrival_s=index * gap_s,
            size_class="S",
            deadline_s=deadline_s,
        )
        for index in range(count)
    ]


class TestTokenBucket:
    def test_burst_then_starvation(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=2.0)
        bucket.try_take(0.0)
        bucket.try_take(0.0)
        assert not bucket.try_take(0.05)  # 0.5 tokens accrued
        assert bucket.try_take(0.1)  # 1.0 token accrued

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=3.0)
        assert bucket.tokens == 3.0
        bucket.try_take(10.0)
        assert bucket.tokens == 2.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ReproError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ReproError):
            TokenBucket(1.0, -1.0)


class TestServingParameters:
    def test_defaults_validate(self):
        ServingParameters()

    def test_bad_knobs_rejected(self):
        with pytest.raises(ReproError):
            ServingParameters(max_queue_depth=0)
        with pytest.raises(ReproError):
            ServingParameters(retry_jitter=1.0)
        with pytest.raises(ReproError):
            ServingParameters(
                brownout_low_watermark=0.9, brownout_high_watermark=0.8
            )

    def test_backoff_doubles_and_caps(self):
        params = ServingParameters(retry_base_s=0.002, retry_cap_s=0.006)
        assert params.backoff_s(1) == 0.002
        assert params.backoff_s(2) == 0.004
        assert params.backoff_s(3) == 0.006  # capped
        assert params.backoff_s(9) == 0.006


class TestAdmission:
    def test_tail_drop_sheds_arrivals_past_the_bound(self, catalog):
        _, _, frontend = _frontend(catalog, max_queue_depth=3)
        tasks = _requests(5)
        admitted = [frontend.admit(task, 0.0) for task in tasks]
        assert admitted == [True, True, True, False, False]
        assert frontend.stats.offered == 5
        assert frontend.stats.admitted == 3
        assert frontend.stats.shed == 2
        for task in tasks[3:]:
            assert (
                frontend.record_for(task.task_id).outcome
                is RequestOutcome.SHED
            )

    def test_head_drop_condemns_the_oldest(self, catalog):
        _, _, frontend = _frontend(
            catalog, max_queue_depth=2, shedding=SheddingPolicy.HEAD_DROP
        )
        tasks = _requests(3)
        assert all(frontend.admit(task, 0.0) for task in tasks)
        # The arrival was admitted; the oldest queued request paid for it.
        assert frontend.stats.admitted == 3
        assert frontend.stats.shed == 1
        assert (
            frontend.record_for(tasks[0].task_id).outcome
            is RequestOutcome.SHED
        )
        assert (
            frontend.record_for(tasks[2].task_id).outcome
            is RequestOutcome.PENDING
        )

    def test_token_bucket_gates_admission(self, catalog):
        _, _, frontend = _frontend(
            catalog, admission_rate_per_s=10.0, admission_burst=2.0
        )
        tasks = _requests(4)
        admitted = [frontend.admit(task, 0.0) for task in tasks]
        assert admitted == [True, True, False, False]
        assert frontend.stats.shed == 2

    def test_shed_requests_surface_in_controller_stats(self, catalog):
        _, system, frontend = _frontend(catalog, max_queue_depth=1)
        for task in _requests(3):
            frontend.admit(task, 0.0)
        assert system.controller.stats.requests_shed == 2


class TestDeadlines:
    def test_expired_request_never_occupies_a_board(self, catalog):
        cluster, system, frontend = _frontend(
            catalog, breaker_enabled=False, retry_budget=100,
            retry_base_s=0.05, retry_jitter=0.0,
        )
        for board in cluster.boards.values():
            board.set_health(BoardHealth.FAILED)
        simulator = ClusterSimulator(frontend, "expiry")
        tasks = _requests(4, deadline_s=0.005)
        result = simulator.run(tasks)
        assert not result.completed
        assert len(result.dropped) == 4
        assert frontend.stats.expired == 4
        assert all(task.start_s < 0 for task in result.dropped)
        for task in tasks:
            record = frontend.record_for(task.task_id)
            assert record.outcome is RequestOutcome.EXPIRED
            assert not record.started
        assert system.controller.stats.requests_expired == 4

    def test_expiry_is_an_exact_event_not_a_poll(self, catalog):
        cluster, _, frontend = _frontend(catalog, breaker_enabled=False)
        for board in cluster.boards.values():
            board.set_health(BoardHealth.FAILED)
        simulator = ClusterSimulator(frontend, "expiry-exact")
        deadline = 0.040
        result = simulator.run(_requests(1, deadline_s=deadline))
        # The run ends at the deadline wake, not at an idle-retry guess.
        assert result.makespan_s == pytest.approx(deadline)

    def test_default_deadline_granted_to_plain_tasks(self, catalog):
        _, _, frontend = _frontend(catalog, default_deadline_s=0.3)
        task = Task(task_id=0, model_key="gru-h512-t1", arrival_s=1.0,
                    size_class="S")
        frontend.admit(task, 1.0)
        assert frontend.record_for(0).deadline_s == pytest.approx(1.3)


class TestRetryBudget:
    def test_placement_failures_consume_the_budget(self, catalog):
        cluster, system, frontend = _frontend(
            catalog, breaker_enabled=False, retry_budget=2,
            default_deadline_s=30.0, retry_jitter=0.0,
        )
        for board in cluster.boards.values():
            board.set_health(BoardHealth.FAILED)
        simulator = ClusterSimulator(frontend, "abandon")
        tasks = _requests(1)
        result = simulator.run(tasks)
        assert not result.completed
        record = frontend.record_for(0)
        assert record.outcome is RequestOutcome.ABANDONED
        assert record.attempts == 3  # budget of 2 + the final straw
        assert frontend.stats.placement_retries == 2
        assert frontend.stats.abandoned == 1
        assert system.controller.stats.requests_abandoned == 1

    def test_waiting_for_busy_deployment_costs_nothing(self, catalog):
        _, _, frontend = _frontend(catalog, default_deadline_s=30.0)
        simulator = ClusterSimulator(frontend, "busy-wait")
        # Far more same-model requests than replicas: the later ones wait
        # behind busy deployments, which is queueing, not failure.
        result = simulator.run(_requests(8, gap_s=0.0))
        assert len(result.completed) == 8
        assert frontend.stats.abandoned == 0
        for task_id in range(8):
            assert frontend.record_for(task_id).attempts == 0

    def test_backoff_is_jittered_and_bounded(self, catalog):
        params = ServingParameters(retry_jitter=0.5, retry_base_s=0.002)
        _, _, frontend = _frontend(
            catalog, retry_jitter=0.5, retry_base_s=0.002
        )
        base = params.backoff_s(1)
        record_delays = []
        for _ in range(20):
            jitter = params.retry_jitter
            draw = frontend._rng.random()
            record_delays.append(base * (1 - jitter + 2 * jitter * draw))
        assert all(
            0.5 * base <= delay <= 1.5 * base for delay in record_delays
        )
        assert len(set(record_delays)) > 1


class TestCircuitBreakerUnit:
    def test_opens_at_threshold_mass(self):
        breaker = CircuitBreaker("b0", ServingParameters())
        assert not breaker.record_failure(0.0)  # mass 1.0 < 2.0
        assert breaker.record_failure(0.1)  # mass 2.0 -> OPEN
        assert breaker.state is BreakerState.OPEN

    def test_window_forgets_old_failures(self):
        breaker = CircuitBreaker(
            "b0", ServingParameters(breaker_window_s=0.5)
        )
        breaker.record_failure(0.0)
        assert not breaker.record_failure(1.0)  # first sample expired
        assert breaker.state is BreakerState.CLOSED

    def test_slow_completions_weigh_half(self):
        breaker = CircuitBreaker("b0", ServingParameters())
        for _ in range(3):
            assert not breaker.record_slow(0.1)
        assert breaker.record_slow(0.1)  # 4 * 0.5 = 2.0 -> OPEN

    def test_half_open_probe_closes_after_budget(self):
        params = ServingParameters(breaker_probe_budget=2)
        breaker = CircuitBreaker("b0", params)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.half_open()
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.record_success(0.3)
        assert breaker.record_success(0.4)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_opens == 0

    def test_failed_probe_reopens_with_doubled_cooldown(self):
        breaker = CircuitBreaker(
            "b0", ServingParameters(breaker_cooldown_s=0.2)
        )
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        first_cooldown = breaker.cooldown_s()
        breaker.half_open()
        assert breaker.record_failure(0.5)  # failed probe: straight open
        assert breaker.state is BreakerState.OPEN
        assert breaker.cooldown_s() == pytest.approx(2 * first_cooldown)

    def test_cooldown_growth_is_capped(self):
        breaker = CircuitBreaker(
            "b0", ServingParameters(breaker_cooldown_s=0.2)
        )
        for _ in range(10):
            breaker.record_failure(0.0)
            breaker.record_failure(0.0)
            breaker.half_open()
        assert breaker.cooldown_s() == pytest.approx(0.2 * 8)


class TestCircuitBreakerIntegration:
    def test_repeated_board_failures_open_and_drain(self, catalog):
        cluster, system, frontend = _frontend(
            catalog, breaker_threshold=2.0, breaker_window_s=5.0,
            breaker_cooldown_s=10.0, default_deadline_s=30.0,
        )
        simulator = ClusterSimulator(frontend, "breaker-drain")
        injector = FaultInjector(simulator, system.controller)
        # Two hard failures on one board inside the window: breaker opens
        # on the second and holds the board drained past its repair.
        injector.fail_board("vu37p-0", at=0.001, repair_after=0.002)
        injector.fail_board("vu37p-0", at=0.02, repair_after=0.002)
        result = simulator.run(_requests(6, gap_s=0.01))
        assert len(result.completed) == 6
        breaker = frontend.breaker("vu37p-0")
        assert frontend.stats.breaker_opens == 1
        assert breaker.state in (BreakerState.OPEN, BreakerState.HALF_OPEN)

    def test_all_breakers_open_fast_rejects(self, catalog):
        cluster, _, frontend = _frontend(catalog)
        for breaker in frontend._breakers.values():
            breaker.record_failure(0.0)
            breaker.record_failure(0.0)
            assert breaker.state is BreakerState.OPEN
        task = _requests(1)[0]
        frontend.admit(task, 0.0)
        assert frontend.try_start(task, 0.0) is None
        assert frontend.stats.breaker_rejections == 1

    def test_breaker_only_repairs_its_own_drain(self, catalog):
        cluster, system, frontend = _frontend(
            catalog, breaker_threshold=1.0, breaker_cooldown_s=0.01
        )
        board = cluster.board("vu37p-0")
        # The injector (not the breaker) holds the board FAILED: the
        # half-open probe must not flip it back to HEALTHY while the
        # injector's repair is still pending.
        simulator = ClusterSimulator(frontend, "no-repair")
        injector = FaultInjector(simulator, system.controller)
        injector.fail_board("vu37p-0", at=0.001, repair_after=5.0)
        observed = []
        simulator.schedule_external(
            2.0, lambda now: observed.append(board.health)
        )
        simulator.run(_requests(3, gap_s=0.002, deadline_s=0.1))
        assert observed == [BoardHealth.FAILED]
        # After the injector's own repair the board is healthy again.
        assert board.health is BoardHealth.HEALTHY


class TestBrownout:
    def test_prefer_narrow_reorders_plan_choice(self, catalog):
        _, system, _ = _frontend(catalog)
        controller = system.controller
        controller.prefer_narrow = True
        deployment, _ = controller.deploy("lstm-h512-t25", now=0.0)
        narrow = min(
            catalog.entry_by_key("lstm-h512-t25").sorted_plans(),
            key=controller.plan_footprint,
        )
        assert (
            controller.plan_footprint(deployment.plan)
            == controller.plan_footprint(narrow)
        )

    def test_switch_plan_shrinks_an_idle_deployment(self, catalog):
        _, system, frontend = _frontend(catalog)
        controller = system.controller
        plans = catalog.entry_by_key("gru-h512-t1").sorted_plans()
        wide = max(plans, key=controller.plan_footprint)
        narrow = min(plans, key=controller.plan_footprint)
        deployment, _ = controller.place_plan(wide, now=0.0)
        frontend._switch_plan(deployment, narrow, now=0.0)
        assert frontend.stats.brownout_switches == 1
        replacement = controller.find_idle_deployment("gru-h512-t1")
        assert (
            controller.plan_footprint(replacement.plan)
            == controller.plan_footprint(narrow)
        )
        assert controller.index.check_consistent()

    def test_watermark_hysteresis(self, catalog):
        cluster, system, frontend = _frontend(
            catalog, brownout_high_watermark=0.5, brownout_low_watermark=0.3
        )
        controller = system.controller
        total = sum(len(board.blocks) for board in cluster.boards.values())
        # Fill 60% of the cluster with a blocker: enters brownout.
        blocked = int(0.6 * total)
        remaining = blocked
        for board in cluster.boards.values():
            take = min(remaining, board.free_blocks)
            if take:
                board.allocate("blocker", take)
            remaining -= take
        frontend._update_brownout(0.0)
        assert frontend.brownout
        assert controller.prefer_narrow
        # Drain it: exits at the low watermark.
        for board in cluster.boards.values():
            if "blocker" in board.owners():
                board.release("blocker")
        frontend._update_brownout(1.0)
        assert not frontend.brownout
        assert not controller.prefer_narrow
        assert frontend.stats.brownout_entries == 1
        assert frontend.stats.brownout_exits == 1


class TestArrivalProcesses:
    def test_mmpp_is_deterministic_and_ordered(self):
        first = mmpp_arrivals(200, 100.0, seed=3)
        second = mmpp_arrivals(200, 100.0, seed=3)
        assert first == second
        assert all(b > a for a, b in zip(first, first[1:]))
        assert mmpp_arrivals(200, 100.0, seed=4) != first

    def test_mmpp_preserves_mean_rate(self):
        arrivals = mmpp_arrivals(8000, 100.0, seed=1)
        observed = len(arrivals) / arrivals[-1]
        assert observed == pytest.approx(100.0, rel=0.1)

    def test_mmpp_is_burstier_than_poisson(self):
        arrivals = mmpp_arrivals(4000, 100.0, seed=2, burst_ratio=8.0)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        # Poisson gaps have CV^2 = 1; an MMPP is over-dispersed.
        assert var / mean**2 > 1.2

    def test_diurnal_is_deterministic_and_rate_preserving(self):
        first = diurnal_arrivals(4000, 100.0, seed=5)
        assert first == diurnal_arrivals(4000, 100.0, seed=5)
        assert all(b > a for a, b in zip(first, first[1:]))
        observed = len(first) / first[-1]
        assert observed == pytest.approx(100.0, rel=0.1)

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            mmpp_arrivals(10, 100.0, burst_ratio=0.5)
        with pytest.raises(ReproError):
            diurnal_arrivals(10, 100.0, amplitude=1.5)
        with pytest.raises(ReproError):
            mmpp_arrivals(0, 100.0)


class TestRecoveryBackoffSurfacing:
    def test_abandonment_emits_structured_event(self, catalog):
        cluster = paper_cluster()
        system = build_system("proposed", cluster, catalog, recovery=True)
        controller = system.controller
        cluster.board("ku115-0").allocate("blocker", 10)
        cluster.board("vu37p-1").allocate("blocker", 14)
        cluster.board("vu37p-2").allocate("blocker", 14)
        controller.deploy("lstm-h512-t25", now=0.0)
        controller.on_board_failure(cluster.board("vu37p-0"), now=0.01)
        # Synchronous path: no simulator, so the retry is abandoned
        # immediately and the structured event records why.
        events = [
            event
            for event in controller.events
            if isinstance(event, RecoveryAbandoned)
        ]
        assert len(events) == 1
        assert events[0].model_key == "lstm-h512-t25"
        assert events[0].reason == "no-simulator"
        assert events[0].at_s == pytest.approx(0.01)

    def test_backoff_schedule_is_capped_and_surfaced(self, catalog):
        cluster = paper_cluster()
        system = build_system("proposed", cluster, catalog, recovery=True)
        manager = system.controller.recovery
        schedule = manager.backoff_schedule()
        assert len(schedule) == manager.params.max_retries
        assert schedule[0] == manager.params.retry_base_s
        assert schedule[-1] == manager.params.retry_cap_s
        assert all(b >= a for a, b in zip(schedule, schedule[1:]))

    def test_event_buffer_is_bounded(self, catalog):
        cluster = paper_cluster()
        system = build_system("proposed", cluster, catalog)
        controller = system.controller
        controller.max_events = 10
        for index in range(25):
            controller.emit_event(index)
        assert len(controller.events) == 10
        assert controller.events == list(range(15, 25))


class TestOffByDefault:
    def test_no_frontend_means_no_serving_counters(self, catalog):
        cluster = paper_cluster()
        system = build_system("proposed", cluster, catalog)
        simulator = ClusterSimulator(system, "plain")
        tasks = [
            Task(task_id=index, model_key="gru-h512-t1",
                 arrival_s=index * 0.001, size_class="S")
            for index in range(5)
        ]
        result = simulator.run(tasks)
        assert len(result.completed) == 5
        assert result.dropped == []
        stats = system.controller.stats
        assert stats.requests_shed == 0
        assert stats.requests_expired == 0
        assert stats.requests_abandoned == 0
        assert stats.breaker_rejections == 0
        assert stats.brownout_switches == 0
