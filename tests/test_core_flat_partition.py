"""Tests for the pattern-oblivious partitioner and its comparison with the
pattern-guided tool (the search-space-pruning claim of Section 2.2.2)."""

import pytest

from repro.core.flat_partition import (
    compare_partitioners,
    flat_bipartition,
    leaf_connectivity_graph,
    pipelines_cut,
)
from repro.core.softblock import data_block, leaf_block, pipeline_block
from repro.errors import PartitionError
from repro.resources import ResourceVector


def _leaf(name, in_bits=8, out_bits=8):
    return leaf_block(
        name,
        resources=ResourceVector(luts=10.0),
        in_bits=in_bits,
        out_bits=out_bits,
    )


def _lane(index, stages=3, internal_bits=64):
    children = []
    for stage in range(stages):
        children.append(
            _leaf(f"lane{index}s{stage}", in_bits=internal_bits,
                  out_bits=internal_bits)
        )
    lane = pipeline_block(f"lane{index}", children)
    lane.in_bits = 16
    lane.out_bits = 8
    for child in children[:-1]:
        child.out_bits = internal_bits
    return lane


def _simd_tree(lanes=4, stages=3):
    tree = data_block("root", [_lane(i, stages) for i in range(lanes)])
    tree.in_bits = 16 * lanes
    tree.out_bits = 8 * lanes
    return tree


class TestLeafGraph:
    def test_pipeline_edges_present(self):
        tree = _simd_tree(lanes=2)
        graph = leaf_connectivity_graph(tree)
        # 2 lanes x 3 leaves + io node.
        assert graph.number_of_nodes() == 7
        # per lane: 2 internal edges; plus io edges to head and tail.
        lane_edges = [
            (a, b) for a, b, d in graph.edges(data=True)
            if a != "io" and b != "io"
        ]
        assert len(lane_edges) == 4

    def test_io_node_carries_scatter_gather(self):
        graph = leaf_connectivity_graph(_simd_tree(lanes=2))
        io_edges = [d["bits"] for _, _, d in graph.edges("io", data=True)]
        assert len(io_edges) == 4  # head + tail per lane
        # Weights come from the head/tail leaves' declared interfaces.
        assert sum(io_edges) == 2 * (64 + 64)

    def test_data_children_unconnected(self):
        graph = leaf_connectivity_graph(_simd_tree(lanes=3))
        lane_heads = [f"lane{i}s0" for i in range(3)]
        leaves = {
            data["block"].name: node
            for node, data in graph.nodes(data=True)
            if data["block"] is not None
        }
        for i in range(3):
            for j in range(i + 1, 3):
                assert not graph.has_edge(
                    leaves[f"lane{i}s0"], leaves[f"lane{j}s0"]
                )


class TestFlatBipartition:
    def test_balanced(self):
        result = flat_bipartition(_simd_tree(lanes=4))
        assert result.balance == pytest.approx(0.5, abs=0.1)

    def test_rejects_single_leaf(self):
        with pytest.raises(PartitionError):
            flat_bipartition(_leaf("only"))

    def test_deterministic_by_seed(self):
        tree = _simd_tree(lanes=4)
        a = flat_bipartition(tree, seed=1)
        b = flat_bipartition(tree, seed=1)
        assert a.left_leaf_ids == b.left_leaf_ids


class TestPipelinesCut:
    def test_zero_when_lanes_intact(self):
        tree = _simd_tree(lanes=4)
        lanes = tree.children
        left = {leaf.block_id for lane in lanes[:2] for leaf in lane.leaves()}
        assert pipelines_cut(tree, left) == 0

    def test_counts_sliced_lanes(self):
        tree = _simd_tree(lanes=2)
        lane0 = tree.children[0]
        left = {lane0.leaves()[0].block_id}  # strand one stage of lane 0
        assert pipelines_cut(tree, left) == 1

    def test_top_level_pipeline_not_a_lane(self):
        # A pipeline NOT under a data node may be cut freely (that is the
        # min-bandwidth cut the guided partitioner itself performs).
        tree = pipeline_block("p", [_leaf("a"), _leaf("b")])
        assert pipelines_cut(tree, {tree.leaves()[0].block_id}) == 0


class TestComparison:
    def test_guided_never_cuts_lanes_flat_may(self):
        """On an odd lane count the balanced flat bisection must slice a
        lane; the guided split never does."""
        tree = _simd_tree(lanes=5, stages=4)
        record = compare_partitioners(tree)
        assert record["guided_pipelines_cut"] == 0
        assert record["flat_pipelines_cut"] >= 1

    def test_guided_faster_on_real_accelerator(self, small_accel_decomposed):
        record = compare_partitioners(small_accel_decomposed.data_root)
        assert record["guided_elapsed_s"] < record["flat_elapsed_s"]

    def test_cut_quality_on_even_lanes(self):
        """With even lanes both tools find the data-boundary cut."""
        tree = _simd_tree(lanes=4)
        record = compare_partitioners(tree)
        assert record["guided_cut_bits"] <= record["flat_cut_bits"] * 1.05
