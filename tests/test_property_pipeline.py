"""Hypothesis properties over the whole offline pipeline: random
accelerator-shaped designs go through generate -> decompose (both flows) ->
partition -> compile, and the structural invariants hold at every stage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PatternKind, decompose, decompose_top_down, partition
from repro.resources import ResourceVector
from repro.rtl import design_resources, validate_design
from repro.rtl.builder import DesignBuilder
from repro.vital import VitalCompiler


def build_lane_design(lanes: int, stages: int, widths) -> "Design":
    """A control block plus ``lanes`` identical ``stages``-deep pipelines.

    ``widths[i]`` is the bit width between stage i and i+1 (len = stages-1).
    """
    db = DesignBuilder(f"gen-{lanes}x{stages}")

    m = db.module("ctl")
    m.inputs("clk", ("cfg", 32)).outputs(("ctl_out", 8))
    m.instance("r", "DFF", clk="clk")
    m.build()

    boundary = [64] + list(widths) + [16]
    for stage in range(stages):
        m = db.module(f"stage{stage}")
        m.inputs("clk", ("din", boundary[stage]))
        m.outputs(("dout", boundary[stage + 1]))
        m.net("t", 16)
        m.instance("mul", "FP16_MUL", clk="clk", y="t")
        m.instance("add", "FP16_ADD", clk="clk", a="t")
        m.build()

    m = db.module("lane")
    m.inputs("clk", ("din", 64)).outputs(("dout", 16))
    previous = "din"
    for stage in range(stages):
        out_net = "dout" if stage == stages - 1 else f"w{stage}"
        if out_net != "dout":
            m.net(out_net, boundary[stage + 1])
        m.instance(
            f"s{stage}", f"stage{stage}",
            clk="clk", din=previous, dout=out_net,
        )
        previous = out_net
    m.build()

    m = db.module("top")
    m.inputs("clk", ("cfg", 32), ("vec", 64))
    m.outputs(("res", 16))
    m.net("ctl_net", 8)
    m.instance("c", "ctl", clk="clk", cfg="cfg", ctl_out="ctl_net")
    for lane in range(lanes):
        m.net(f"r{lane}", 16)
        m.instance(f"lane{lane}", "lane", clk="clk", din="vec", dout=f"r{lane}")
    m.build()
    db.top("top")
    return db.build()


design_params = st.tuples(
    st.integers(min_value=2, max_value=6),  # lanes
    st.integers(min_value=2, max_value=5),  # stages
)


@settings(max_examples=25, deadline=None)
@given(design_params, st.data())
def test_decompose_extracts_declared_structure(params, data):
    lanes, stages = params
    widths = [
        data.draw(st.sampled_from([8, 24, 48, 96]))
        for _ in range(stages - 1)
    ]
    design = build_lane_design(lanes, stages, widths)
    validate_design(design)
    result = decompose(design, control_modules={"ctl"})

    # Root is DATA over exactly `lanes` lanes, each a `stages` pipeline.
    assert result.data_root.kind is PatternKind.DATA
    assert len(result.data_root.children) == lanes
    for lane in result.data_root.children:
        assert lane.kind is PatternKind.PIPELINE
        assert len(lane.children) == stages
        # Inter-stage bandwidths match the declared widths.
        recorded = [child.out_bits for child in lane.children[:-1]]
        assert recorded == widths

    # Resource conservation.
    assert list(result.total_resources()) == pytest.approx(
        list(design_resources(design))
    )


@settings(max_examples=15, deadline=None)
@given(design_params)
def test_both_flows_agree(params):
    lanes, stages = params
    design = build_lane_design(lanes, stages, [32] * (stages - 1))
    bottom_up = decompose(design, control_modules={"ctl"})
    top_down = decompose_top_down(design, control_modules={"ctl"})
    assert bottom_up.data_root.kind is top_down.data_root.kind
    assert len(bottom_up.data_root.children) == len(top_down.data_root.children)
    assert sorted(
        leaf.module_name for leaf in bottom_up.data_root.leaves()
    ) == sorted(leaf.module_name for leaf in top_down.data_root.leaves())


@settings(max_examples=15, deadline=None)
@given(design_params, st.integers(min_value=0, max_value=3))
def test_partition_frontiers_always_cover(params, iterations):
    lanes, stages = params
    design = build_lane_design(lanes, stages, [32] * (stages - 1))
    result = decompose(design, control_modules={"ctl"})
    tree = partition(result, iterations=iterations)
    total = result.data_root.resources()
    for frontier in tree.frontiers():
        covered = ResourceVector.zero()
        for node in frontier:
            covered = covered + node.cluster.resources()
        assert list(covered) == pytest.approx(list(total))


@settings(max_examples=8, deadline=None)
@given(design_params)
def test_compile_every_frontier_deployable_somewhere(params):
    lanes, stages = params
    design = build_lane_design(lanes, stages, [32] * (stages - 1))
    result = decompose(design, control_modules={"ctl"})
    tree = partition(result, iterations=2)
    compiled = VitalCompiler().compile_accelerator(result, tree)
    assert compiled.mapping.options
    for option in compiled.mapping.options:
        assert option.is_deployable()
        blocks = [
            image.virtual_blocks
            for cluster in option.cluster_indices
            for image in option.images[cluster].values()
        ]
        assert all(count >= 1 for count in blocks)
