"""Program container and validation tests."""

import pytest

from repro.errors import ProgramValidationError
from repro.isa.instructions import (
    SYNC_ADDRESS,
    Instruction,
    Op,
    endloop,
    halt,
    loop,
    mv_mul,
    v_fill,
    v_rd,
    vv_add,
)
from repro.isa.program import ISALimits, Program


def _simple_program():
    program = Program(name="p")
    program.extend(
        [
            v_fill(0, 1.0, 8),
            loop(3),
            vv_add(1, 0, 0, 8),
            endloop(),
            halt(),
        ]
    )
    return program


class TestContainer:
    def test_len_iter_getitem(self):
        program = _simple_program()
        assert len(program) == 5
        assert program[0].op is Op.V_FILL
        assert [i.op for i in program][-1] is Op.HALT

    def test_count_op(self):
        assert _simple_program().count_op(Op.VV_ADD) == 1

    def test_dynamic_instruction_count_weights_loops(self):
        # fill + 3x add + halt = 5 dynamic issues
        assert _simple_program().dynamic_instruction_count() == 5

    def test_nested_loops_multiply(self):
        program = Program()
        program.extend(
            [loop(2), loop(3), vv_add(0, 0, 0, 1), endloop(), endloop()]
        )
        assert program.dynamic_instruction_count() == 6

    def test_body_slices(self):
        slices = _simple_program().body_slices()
        assert (2, 3, 3) in slices  # loop body: instruction index 2, 3 trips
        assert slices[-1] == (0, 5, 1)  # top level

    def test_sync_instructions(self):
        program = Program()
        program.append(v_rd(0, SYNC_ADDRESS, 8))
        program.append(v_rd(1, 0x10, 8))
        assert len(program.sync_instructions()) == 1


class TestValidation:
    def test_valid_program_passes(self):
        _simple_program().validate()

    def test_bad_register_rejected(self):
        program = Program()
        program.append(v_fill(200, 0.0, 8))
        with pytest.raises(ProgramValidationError, match="out of range"):
            program.validate(ISALimits(vector_registers=64))

    def test_matrix_register_range(self):
        program = Program()
        program.append(mv_mul(0, 99, 0, 8))
        with pytest.raises(ProgramValidationError, match="m99"):
            program.validate(ISALimits(matrix_registers=64))

    def test_overlong_vector_rejected(self):
        program = Program()
        program.append(v_fill(0, 0.0, 5000))
        with pytest.raises(ProgramValidationError, match="native maximum"):
            program.validate(ISALimits(max_vector_length=4096))

    def test_unbalanced_loop_rejected(self):
        program = Program()
        program.append(loop(2))
        with pytest.raises(ProgramValidationError, match="unterminated"):
            program.validate()

    def test_stray_endloop_rejected(self):
        program = Program()
        program.append(endloop())
        with pytest.raises(ProgramValidationError, match="endloop"):
            program.validate()

    def test_zero_trip_loop_rejected(self):
        program = Program()
        program.extend([loop(0), endloop()])
        with pytest.raises(ProgramValidationError, match="loop count"):
            program.validate()

    def test_negative_address_rejected(self):
        program = Program()
        program.append(Instruction(Op.V_RD, dst=0, addr=-5, length=4))
        with pytest.raises(ProgramValidationError, match="negative"):
            program.validate()

    def test_sync_requires_permission(self):
        program = Program()
        program.append(v_rd(0, SYNC_ADDRESS, 8))
        program.validate(allow_sync=True)
        with pytest.raises(ProgramValidationError, match="sync"):
            program.validate(allow_sync=False)

    def test_near_sync_window_ordinary_access_rejected(self):
        program = Program()
        program.append(
            Instruction(Op.M_RD, dst=0, addr=SYNC_ADDRESS + 4, length=2, imm=2.0)
        )
        with pytest.raises(ProgramValidationError, match="sync window"):
            program.validate()


class TestRender:
    def test_render_roundtrip_through_assembler(self):
        from repro.isa.assembler import assemble

        program = _simple_program()
        text = program.render()
        again = assemble(text)
        assert [i.op for i in again] == [i.op for i in program]

    def test_render_indents_loop_bodies(self):
        text = _simple_program().render()
        assert "\n  vv_add" in text
